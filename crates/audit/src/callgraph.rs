//! Workspace call graph for the panic-reachability rule (R6).
//!
//! Nodes are the non-test functions of the *reachability domain* —
//! `crates/{split,simnet,telemetry,data}/src/` — built from the parser's
//! per-file output. `tensor` and `nn` are a deliberate, documented
//! boundary: their panic-on-misuse contracts (shape checks) are validated
//! at the call site by construction, guarded separately by R1 and the
//! bitwise-equivalence tests, and chasing edges into the kernel crates
//! would drown the rule in indexing-heavy numeric code.
//!
//! Call-site resolution is name-based and intentionally conservative:
//!
//! - `self.m()` and `Type::m()` / `Self::m()` resolve precisely via the
//!   impl type recorded by the parser;
//! - `module::f()` also matches free functions in the file `module.rs`;
//! - bare `expr.m()` resolves to every domain method named `m`, except
//!   names on [`STD_METHOD_NAMES`] — std-trait/container vocabulary that
//!   would otherwise create bogus edges (`Vec::push` → `Ring::push`);
//! - free `f()` prefers same-file functions, falling back to every free
//!   domain function named `f`.
//!
//! Reachability is a BFS from the entry functions with parent pointers,
//! so every finding can report its full entry-point → panic chain.

use crate::parser::{CallKind, FnInfo, PanicSite, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names that belong to std containers/iterators/traits; a bare
/// `expr.name()` with one of these names is never resolved to a domain
/// method (precise `self.`/`Type::` calls still are).
pub const STD_METHOD_NAMES: [&str; 60] = [
    "abs",
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "find",
    "first",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "pop",
    "position",
    "push",
    "remove",
    "retain",
    "rev",
    "sort",
    "sort_by",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_string",
    "to_vec",
    "trim",
];

/// One node of the call graph.
#[derive(Debug)]
pub struct Node {
    /// Repo-relative path of the file the function lives in.
    pub path: String,
    /// Function name.
    pub name: String,
    /// Impl self type for methods.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Call sites (copied from the parser).
    calls: Vec<crate::parser::CallSite>,
    /// Panic sites (copied from the parser).
    pub panics: Vec<PanicSite>,
}

/// One hop of a reachability chain, for finding messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// File of the function.
    pub path: String,
    /// Line of the function.
    pub line: usize,
    /// Display name (`Type::method` or `function`).
    pub name: String,
}

/// The workspace call graph over the reachability domain.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes.
    pub nodes: Vec<Node>,
    /// Free functions by name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by (self type, name).
    method_by_qual: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by bare name.
    method_by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from parsed files (path, parse result). Test
    /// functions are excluded — they may panic freely.
    pub fn build(files: &[(String, ParsedFile)]) -> Self {
        let mut g = CallGraph::default();
        for (path, parsed) in files {
            for f in &parsed.functions {
                if f.is_test {
                    continue;
                }
                g.add(path, f);
            }
        }
        g
    }

    fn add(&mut self, path: &str, f: &FnInfo) {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            path: path.to_string(),
            name: f.name.clone(),
            qual: f.qual.clone(),
            line: f.line,
            calls: f.calls.clone(),
            panics: f.panics.clone(),
        });
        match &f.qual {
            Some(q) => {
                self.method_by_qual
                    .entry((q.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
                self.method_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(idx);
            }
            None => self
                .free_by_name
                .entry(f.name.clone())
                .or_default()
                .push(idx),
        }
    }

    /// Resolves the outgoing edges of node `from`.
    fn edges(&self, from: usize) -> Vec<usize> {
        let node = &self.nodes[from];
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for call in &node.calls {
            match &call.kind {
                CallKind::Free(name) => {
                    if let Some(cands) = self.free_by_name.get(name) {
                        let same_file: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&i| self.nodes[i].path == node.path)
                            .collect();
                        out.extend(if same_file.is_empty() {
                            cands.clone()
                        } else {
                            same_file
                        });
                    }
                }
                CallKind::Method { name, on_self } => {
                    if *on_self {
                        if let Some(q) = &node.qual {
                            if let Some(c) = self.method_by_qual.get(&(q.clone(), name.clone())) {
                                out.extend(c.iter().copied());
                            }
                        }
                    } else if !STD_METHOD_NAMES.contains(&name.as_str()) {
                        if let Some(c) = self.method_by_name.get(name) {
                            out.extend(c.iter().copied());
                        }
                    }
                }
                CallKind::Path(qual, name) => {
                    let qual = if qual == "Self" {
                        match &node.qual {
                            Some(q) => q.clone(),
                            None => continue,
                        }
                    } else {
                        qual.clone()
                    };
                    if let Some(c) = self.method_by_qual.get(&(qual.clone(), name.clone())) {
                        out.extend(c.iter().copied());
                    }
                    // `module::f()` where the module is a file of the
                    // same name: match free fns in `…/<qual>.rs`.
                    if let Some(cands) = self.free_by_name.get(name) {
                        let file = format!("/{qual}.rs");
                        out.extend(
                            cands
                                .iter()
                                .copied()
                                .filter(|&i| self.nodes[i].path.ends_with(&file)),
                        );
                    }
                }
            }
        }
        out.remove(&from);
        out.into_iter().collect()
    }

    /// BFS from `entries`; returns, for every reached node, the chain of
    /// node indices from its entry function to the node itself.
    pub fn reachable_with_chains(&self, entries: &[usize]) -> BTreeMap<usize, Vec<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e) {
                v.insert(None);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for m in self.edges(n) {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(m) {
                    v.insert(Some(n));
                    queue.push_back(m);
                }
            }
        }
        let mut out = BTreeMap::new();
        for &n in parent.keys() {
            let mut chain = vec![n];
            let mut cur = n;
            while let Some(Some(p)) = parent.get(&cur) {
                chain.push(*p);
                cur = *p;
            }
            chain.reverse();
            out.insert(n, chain);
        }
        out
    }

    /// Display name of a node: `Type::method` or a bare function name.
    pub fn display_name(&self, i: usize) -> String {
        let n = &self.nodes[i];
        match &n.qual {
            Some(q) => format!("{q}::{}", n.name),
            None => n.name.clone(),
        }
    }

    /// A [`ChainHop`] for node `i`.
    pub fn hop(&self, i: usize) -> ChainHop {
        ChainHop {
            path: self.nodes[i].path.clone(),
            line: self.nodes[i].line,
            name: self.display_name(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn fns_in_file(g: &CallGraph, path: &str) -> Vec<usize> {
        (0..g.nodes.len())
            .filter(|&i| g.nodes[i].path == path)
            .collect()
    }

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(p, src)| (p.to_string(), parse_file(&lex(src).tokens, &[])))
            .collect();
        CallGraph::build(&parsed)
    }

    #[test]
    fn cross_file_chain_is_reported() {
        let g = graph(&[
            (
                "crates/split/src/protocol.rs",
                "pub fn decode(b: &[u8]) { crate::server::poke(b); }",
            ),
            (
                "crates/split/src/server.rs",
                "pub fn poke(b: &[u8]) -> u8 { b[0] }",
            ),
        ]);
        let entries = fns_in_file(&g, "crates/split/src/protocol.rs");
        let reached = g.reachable_with_chains(&entries);
        let poke = (0..g.nodes.len())
            .find(|&i| g.nodes[i].name == "poke")
            .unwrap();
        let chain = reached.get(&poke).expect("poke reachable");
        assert_eq!(chain.len(), 2);
        assert_eq!(g.display_name(chain[0]), "decode");
    }

    #[test]
    fn std_method_names_do_not_create_edges() {
        let g = graph(&[
            (
                "crates/split/src/protocol.rs",
                "pub fn decode(v: &mut Vec<u8>) { v.push(1); }",
            ),
            (
                "crates/split/src/ring.rs",
                "impl Ring { pub fn push(&mut self) { panic!(\"boom\") } }",
            ),
        ]);
        let entries = fns_in_file(&g, "crates/split/src/protocol.rs");
        let reached = g.reachable_with_chains(&entries);
        assert_eq!(reached.len(), 1, "only the entry itself is reachable");
    }

    #[test]
    fn self_calls_resolve_precisely() {
        let g = graph(&[(
            "crates/split/src/a.rs",
            "impl A { pub fn go(&self) { self.helper() } fn helper(&self) { todo!() } }\n\
             impl B { pub fn helper(&self) {} }",
        )]);
        let go = (0..g.nodes.len())
            .find(|&i| g.nodes[i].name == "go")
            .unwrap();
        let e = g.edges(go);
        assert_eq!(e.len(), 1);
        assert_eq!(g.display_name(e[0]), "A::helper");
    }
}
