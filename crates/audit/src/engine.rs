//! The audit engine: runs every rule over a set of source files and
//! reconciles findings with inline suppression directives.
//!
//! The engine is pure — it takes `(path, text)` pairs and returns a report
//! — so the fixture tests can present known-bad snippets under virtual
//! in-scope paths without touching the real tree.

use crate::callgraph::{CallGraph, ChainHop};
use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::parser::{parse_file, PanicKind, ParsedFile};
use crate::rules::{
    in_r1_scope, in_r4_scope, in_r6_domain, in_r7_scope, in_r8_scope, in_r9_scope, is_r6_entry,
    suppression_budget, METRIC_FILE, METRIC_IDS, R1_BANNED_IDENTS, REPORT_FILE,
    RULE_BAD_SUPPRESSION, RULE_COUNTER, RULE_DETERMINISM, RULE_ENV_READ, RULE_FLOAT_REDUCTION,
    RULE_FORBID_UNSAFE, RULE_IDS, RULE_METRIC, RULE_PANIC_REACH, RULE_RNG_STREAM,
    RULE_SUPPRESSION_BUDGET, RULE_UNUSED_SUPPRESSION, TRACE_COUNTERS, TRACE_FILE,
};
use std::collections::{BTreeMap, BTreeSet};

/// One file to audit: a repo-relative `/`-separated path and its contents.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, e.g. `crates/split/src/guard.rs`.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`determinism`, `panic-reachability`, …).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// For R6: the call chain from the untrusted-input entry function to
    /// the function containing the panic site. Empty for other rules.
    pub chain: Vec<ChainHop>,
}

impl Finding {
    fn new(path: &str, line: usize, rule: &'static str, message: String) -> Self {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message,
            chain: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )?;
        if !self.chain.is_empty() {
            let rendered: Vec<String> = self
                .chain
                .iter()
                .map(|h| format!("{} ({}:{})", h.name, h.path, h.line))
                .collect();
            write!(f, "\n    via {}", rendered.join(" -> "))?;
        }
        Ok(())
    }
}

/// A suppression directive that silenced at least one finding.
#[derive(Debug, Clone)]
pub struct UsedSuppression {
    /// File the directive lives in.
    pub path: String,
    /// Line of the directive comment.
    pub line: usize,
    /// Rule it suppresses.
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    /// Findings it silenced.
    pub count: usize,
}

/// The audit result: surviving findings plus the suppression ledger.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Unsuppressed findings, sorted by path/line/rule. Non-empty means a
    /// nonzero exit.
    pub findings: Vec<Finding>,
    /// Suppressions that silenced at least one finding.
    pub suppressions: Vec<UsedSuppression>,
    /// Files the engine looked at.
    pub files_scanned: usize,
}

/// A parsed `// stsl-audit: allow(rule, reason = "…")` directive.
#[derive(Debug)]
struct Directive {
    path: String,
    line: usize,
    target_line: usize,
    rule: String,
    reason: String,
    used: usize,
}

/// Cross-file state for the counter-accounting rule.
#[derive(Debug, Default)]
struct CounterState {
    /// `TraceKind` variants with the line each is declared on.
    variants: Vec<(String, usize)>,
    /// Line of the `enum TraceKind` declaration.
    trace_enum_line: usize,
    /// Fields of `AsyncReport` and `CommReport` with declaration lines.
    counter_fields: BTreeMap<String, usize>,
    /// Line of the `struct AsyncReport` declaration.
    async_report_line: usize,
    /// Whether both input files were present.
    saw_trace: bool,
    saw_report: bool,
    /// `TraceKind::X` references seen in non-test code anywhere.
    emitted: BTreeSet<String>,
    /// Identifiers referenced in non-test code outside `report.rs`.
    used_idents: BTreeSet<String>,
}

/// Cross-file state for the metric-accounting rule (R5).
#[derive(Debug, Default)]
struct MetricState {
    /// `MetricId` variants with the line each is declared on.
    variants: Vec<(String, usize)>,
    /// Line of the `enum MetricId` declaration.
    enum_line: usize,
    /// Whether the registry file was present.
    saw_registry: bool,
    /// Raw registry source. Label checks read the text directly because
    /// the lexer deliberately drops string-literal contents.
    registry_text: String,
    /// `MetricId::X` references seen in non-test code outside the
    /// registry — proof somebody actually records the metric.
    recorded: BTreeSet<String>,
}

/// Runs the full rule set over `files` and reconciles suppressions.
pub fn audit(files: &[SourceFile]) -> AuditReport {
    let mut raw: Vec<Finding> = Vec::new();
    let mut directives: Vec<Directive> = Vec::new();
    let mut counters = CounterState::default();
    let mut metrics = MetricState::default();
    let mut parsed_domain: Vec<(String, ParsedFile)> = Vec::new();

    for file in files {
        let lexed = lex(&file.text);
        let excluded = excluded_spans(&lexed.tokens);
        let is_excluded = |line: usize| excluded.iter().any(|&(a, b)| line >= a && line <= b);
        let token_lines: BTreeSet<usize> = lexed.tokens.iter().map(|t| t.line).collect();

        parse_directives(
            file,
            &lexed.comments,
            &token_lines,
            &mut directives,
            &mut raw,
        );

        if in_r1_scope(&file.path) {
            scan_r1(file, &lexed.tokens, &is_excluded, &mut raw);
        }
        if in_r4_scope(&file.path) {
            scan_r4(file, &lexed.tokens, &mut raw);
        }
        if in_r7_scope(&file.path) {
            scan_r7(file, &lexed.tokens, &is_excluded, &mut raw);
        }
        if in_r8_scope(&file.path) {
            scan_r8(file, &lexed.tokens, &is_excluded, &mut raw);
        }
        if in_r9_scope(&file.path) {
            scan_r9(file, &lexed.tokens, &is_excluded, &mut raw);
        }
        if in_r6_domain(&file.path) {
            parsed_domain.push((file.path.clone(), parse_file(&lexed.tokens, &excluded)));
        }
        collect_counter_state(file, &lexed.tokens, &is_excluded, &mut counters);
        collect_metric_state(file, &lexed.tokens, &is_excluded, &mut metrics);
    }

    check_counters(&counters, &mut raw);
    check_metrics(&metrics, &mut raw);
    scan_r6(&parsed_domain, &mut raw);

    // Reconcile findings with directives.
    let mut findings = Vec::new();
    for f in raw {
        let slot = directives.iter_mut().find(|d| {
            d.path == f.path
                && d.target_line == f.line
                && d.rule == f.rule
                && f.rule != RULE_BAD_SUPPRESSION
                && f.rule != RULE_UNUSED_SUPPRESSION
        });
        match slot {
            Some(d) => d.used += 1,
            None => findings.push(f),
        }
    }
    for d in &directives {
        if d.used == 0 && RULE_IDS.contains(&d.rule.as_str()) {
            findings.push(Finding::new(
                &d.path,
                d.line,
                RULE_UNUSED_SUPPRESSION,
                format!(
                    "allow({}) suppressed nothing: no {} finding on target line {}; \
                     remove the directive or fix the target",
                    d.rule, d.rule, d.target_line
                ),
            ));
        }
    }
    // Per-rule suppression budgets: every allow() is a reviewed
    // exception, and the review happens when the budget in rules.rs is
    // raised — the directive past the budget is itself a finding.
    let mut by_rule: BTreeMap<&str, Vec<&Directive>> = BTreeMap::new();
    for d in directives.iter().filter(|d| d.used > 0) {
        by_rule.entry(d.rule.as_str()).or_default().push(d);
    }
    for (rule, ds) in &by_rule {
        let budget = suppression_budget(rule);
        if ds.len() > budget {
            let over = ds[budget];
            findings.push(Finding::new(
                &over.path,
                over.line,
                RULE_SUPPRESSION_BUDGET,
                format!(
                    "{} allow({rule}) directives exceed the per-rule budget of {budget}; \
                     fix the finding or raise the budget in rules.rs SUPPRESSION_BUDGETS \
                     under review",
                    ds.len()
                ),
            ));
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let suppressions = directives
        .into_iter()
        .filter(|d| d.used > 0)
        .map(|d| UsedSuppression {
            path: d.path,
            line: d.line,
            rule: d.rule,
            reason: d.reason,
            count: d.used,
        })
        .collect();

    AuditReport {
        findings,
        suppressions,
        files_scanned: files.len(),
    }
}

/// Parses suppression directives out of line comments. A directive on a
/// line that carries code applies to that line; a directive on a line of
/// its own applies to the next line that carries code.
fn parse_directives(
    file: &SourceFile,
    comments: &[Comment],
    token_lines: &BTreeSet<usize>,
    directives: &mut Vec<Directive>,
    findings: &mut Vec<Finding>,
) {
    for c in comments {
        // Doc comments (`///` or `//!`) only *document* the directive
        // syntax; a live directive must be a plain `//` comment.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(idx) = c.text.find("stsl-audit:") else {
            continue;
        };
        let rest = c.text[idx + "stsl-audit:".len()..].trim();
        let parsed = parse_allow(rest);
        match parsed {
            Some((rule, reason)) if RULE_IDS.contains(&rule.as_str()) => {
                let target_line = if token_lines.contains(&c.line) {
                    c.line
                } else {
                    token_lines
                        .range(c.line + 1..)
                        .next()
                        .copied()
                        .unwrap_or(c.line)
                };
                directives.push(Directive {
                    path: file.path.clone(),
                    line: c.line,
                    target_line,
                    rule,
                    reason,
                    used: 0,
                });
            }
            Some((rule, _)) => findings.push(Finding::new(
                &file.path,
                c.line,
                RULE_BAD_SUPPRESSION,
                format!("allow() names unknown rule `{rule}`"),
            )),
            None => findings.push(Finding::new(
                &file.path,
                c.line,
                RULE_BAD_SUPPRESSION,
                "malformed directive; expected \
                 `stsl-audit: allow(<rule>, reason = \"…\")`"
                    .to_string(),
            )),
        }
    }
}

/// Parses `allow(<rule>, reason = "<nonempty>")`. Returns `None` on any
/// syntax problem, including a missing or empty reason.
fn parse_allow(s: &str) -> Option<(String, String)> {
    let s = s.strip_prefix("allow(")?;
    let comma = s.find(',')?;
    let rule = s[..comma].trim().to_string();
    let rest = s[comma + 1..].trim();
    let rest = rest.strip_prefix("reason")?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let close = rest.find('"')?;
    let reason = rest[..close].trim().to_string();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some((rule, reason))
}

/// R1: bans host-clock, unseeded-RNG, raw-thread and hash-iteration
/// constructs in the deterministic crates.
fn scan_r1(
    file: &SourceFile,
    tokens: &[Tok],
    is_excluded: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if is_excluded(t.line) {
            continue;
        }
        if let Some(name) = t.ident() {
            for (banned, msg) in &R1_BANNED_IDENTS {
                if name == *banned {
                    findings.push(Finding::new(
                        &file.path,
                        t.line,
                        RULE_DETERMINISM,
                        (*msg).to_string(),
                    ));
                }
            }
            if name == "SystemTime" {
                findings.push(Finding::new(
                    &file.path,
                    t.line,
                    RULE_DETERMINISM,
                    "SystemTime reads the host clock; simulated time must come \
                              from the simnet virtual clock"
                        .to_string(),
                ));
            }
            if name == "Instant" && path_call(tokens, i, "now") {
                findings.push(Finding::new(
                    &file.path,
                    t.line,
                    RULE_DETERMINISM,
                    "Instant::now() reads the host clock; use the simnet virtual \
                              clock (informational wall-time goes through WallTimer)"
                        .to_string(),
                ));
            }
            if name == "thread" && path_call(tokens, i, "spawn") {
                findings.push(Finding::new(
                    &file.path,
                    t.line,
                    RULE_DETERMINISM,
                    "raw thread::spawn bypasses the deterministic scoped pool; \
                              thread only via stsl-parallel"
                        .to_string(),
                ));
            }
        }
    }
}

/// Whether tokens `i..` spell `<ident> :: <method>`.
fn path_call(tokens: &[Tok], i: usize, method: &str) -> bool {
    matches!(
        (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3)),
        (Some(a), Some(b), Some(c))
            if a.is_punct(':') && b.is_punct(':') && c.is_ident(method)
    )
}

/// R6: interprocedural panic-reachability. Builds the call graph over
/// the reachability domain, walks it from every non-test function in the
/// entry files, and flags each panic site in a reached function — with
/// the full entry-point → panic chain attached to the finding.
fn scan_r6(parsed: &[(String, ParsedFile)], findings: &mut Vec<Finding>) {
    let graph = CallGraph::build(parsed);
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| is_r6_entry(&graph.nodes[i].path))
        .collect();
    let reached = graph.reachable_with_chains(&entries);
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for (&n, chain) in &reached {
        let node = &graph.nodes[n];
        for p in &node.panics {
            if !seen.insert((node.path.clone(), p.line)) {
                continue;
            }
            let what = match &p.kind {
                PanicKind::UnwrapLike(m) => format!(
                    "`{m}()` can abort on untrusted input; propagate the typed \
                     error (DecodeError/CifarError/io::Error) instead"
                ),
                PanicKind::Macro(m) => format!(
                    "`{m}!` aborts the server; untrusted bytes must surface as a \
                     typed error"
                ),
                PanicKind::Index => "slice/array indexing can panic on out-of-range input; use \
                                     .get()/.split_first()/try_into()"
                    .to_string(),
            };
            let message = if chain.len() > 1 {
                format!(
                    "{what} (reachable from untrusted-input entry `{}`)",
                    graph.display_name(chain[0])
                )
            } else {
                what
            };
            let mut f = Finding::new(&node.path, p.line, RULE_PANIC_REACH, message);
            f.chain = chain.iter().map(|&i| graph.hop(i)).collect();
            findings.push(f);
        }
    }
}

/// R7: float-reduction discipline. Outside the sanctioned seam, flags
/// `.sum::<f32/f64>()`, bare `.sum()` with float evidence in the same
/// statement, `.fold(<float literal>, …)` and `+=`/`-=` accumulation
/// into a float-typed local — all of which fix an evaluation order the
/// bitwise-equivalence tests cannot see.
fn scan_r7(
    file: &SourceFile,
    tokens: &[Tok],
    is_excluded: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    const MSG: &str = "non-associative float reduction outside the sanctioned kernel seam; \
                       route it through crates/tensor/src/ops (or the aggregate.rs \
                       combiners) so the bitwise-equivalence tests pin its order";
    // Locals with float evidence: `let [mut] x: f32/f64` or `let [mut] x = <float>`.
    let mut float_locals: BTreeSet<&str> = BTreeSet::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if matches!(tokens.get(j), Some(t) if t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = tokens.get(j).and_then(|t| t.ident()) else {
            continue;
        };
        let mut k = j + 1;
        let mut is_float = false;
        let single_colon = matches!(tokens.get(k), Some(t) if t.is_punct(':'))
            && !matches!(tokens.get(k + 1), Some(t) if t.is_punct(':'));
        if single_colon {
            if let Some(ty) = tokens.get(k + 1).and_then(|t| t.ident()) {
                if ty == "f32" || ty == "f64" {
                    is_float = true;
                }
            }
            k += 2;
        }
        if matches!(tokens.get(k), Some(t) if t.is_punct('='))
            && tokens.get(k + 1).is_some_and(|t| t.float_text().is_some())
        {
            is_float = true;
        }
        if is_float {
            float_locals.insert(name);
        }
    }

    for (i, t) in tokens.iter().enumerate() {
        if is_excluded(t.line) {
            continue;
        }
        let prev_is = |k: usize, c: char| i >= k && tokens[i - k].is_punct(c);
        let next_is = |k: usize, c: char| matches!(tokens.get(i + k), Some(n) if n.is_punct(c));
        if let Some(name) = t.ident() {
            if name == "sum" && prev_is(1, '.') {
                let turbofish_float = next_is(1, ':')
                    && next_is(2, ':')
                    && next_is(3, '<')
                    && matches!(
                        tokens.get(i + 4).and_then(|t| t.ident()),
                        Some("f32") | Some("f64")
                    );
                let bare_float = next_is(1, '(') && statement_has_float(tokens, i);
                if turbofish_float || bare_float {
                    findings.push(Finding::new(
                        &file.path,
                        t.line,
                        RULE_FLOAT_REDUCTION,
                        MSG.to_string(),
                    ));
                }
            }
            if name == "fold"
                && prev_is(1, '.')
                && next_is(1, '(')
                && tokens.get(i + 2).is_some_and(|t| t.float_text().is_some())
            {
                findings.push(Finding::new(
                    &file.path,
                    t.line,
                    RULE_FLOAT_REDUCTION,
                    MSG.to_string(),
                ));
            }
            if float_locals.contains(name)
                && (next_is(1, '+') || next_is(1, '-'))
                && next_is(2, '=')
            {
                findings.push(Finding::new(
                    &file.path,
                    t.line,
                    RULE_FLOAT_REDUCTION,
                    MSG.to_string(),
                ));
            }
        }
    }
}

/// Whether the statement containing token `i` mentions `f32`/`f64` or a
/// float literal (evidence for flagging a bare `.sum()`).
fn statement_has_float(tokens: &[Tok], i: usize) -> bool {
    // `,` bounds too, so one float field of a struct literal does not
    // lend its evidence to an integer `.sum()` in a sibling field.
    let boundary =
        |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',');
    let start = (0..i)
        .rev()
        .find(|&j| boundary(&tokens[j]))
        .map_or(0, |j| j + 1);
    let end = (i..tokens.len())
        .find(|&j| boundary(&tokens[j]))
        .unwrap_or(tokens.len());
    tokens[start..end]
        .iter()
        .any(|t| t.is_ident("f32") || t.is_ident("f64") || t.float_text().is_some())
}

/// R8: RNG-stream discipline. In R1 scope (outside the RNG root file),
/// flags direct RNG construction, constant-literal seeds, and textual
/// reuse of the same seed expression (stream aliasing) within a file.
fn scan_r8(
    file: &SourceFile,
    tokens: &[Tok],
    is_excluded: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut first_seen: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_excluded(t.line) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let next_is = |c: char| matches!(tokens.get(i + 1), Some(n) if n.is_punct(c));
        if matches!(
            name,
            "from_entropy" | "seed_from_u64" | "from_seed" | "from_os_rng"
        ) && next_is('(')
        {
            findings.push(Finding::new(
                &file.path,
                t.line,
                RULE_RNG_STREAM,
                format!(
                    "`{name}` constructs an RNG outside the seeded root; every stream \
                     must come from rng_from_seed/derive_seed (crates/tensor/src/init.rs) \
                     so seeded replay covers it"
                ),
            ));
            continue;
        }
        if !matches!(name, "rng_from_seed" | "derive_seed") || !next_is('(') {
            continue;
        }
        let Some(canon) = canonical_args(tokens, i + 1) else {
            continue;
        };
        if name == "rng_from_seed"
            && tokens.get(i + 2).and_then(|t| t.num_text()).is_some()
            && matches!(tokens.get(i + 3), Some(t) if t.is_punct(')'))
        {
            findings.push(Finding::new(
                &file.path,
                t.line,
                RULE_RNG_STREAM,
                "a literal seed detaches this RNG from the run seed; derive it from \
                 the configured seed via derive_seed(parent, stream)"
                    .to_string(),
            ));
            continue;
        }
        match first_seen.get(&(name.to_string(), canon.clone())) {
            None => {
                first_seen.insert((name.to_string(), canon), t.line);
            }
            Some(&first) if first != t.line => {
                findings.push(Finding::new(
                    &file.path,
                    t.line,
                    RULE_RNG_STREAM,
                    format!(
                        "seed expression `{name}({canon})` is reused (first used on line \
                         {first}); two RNGs built from the same seed alias the same \
                         stream — give each its own derive_seed stream id"
                    ),
                ));
            }
            Some(_) => {}
        }
    }
}

/// Canonical text of a call's argument list starting at the `(` token:
/// identifiers, punctuation and numeric texts concatenated, with `self.`
/// receivers stripped so `self.config.seed` and `config.seed` compare
/// equal. Returns `None` on unbalanced input.
fn canonical_args(tokens: &[Tok], open: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut parts: Vec<String> = Vec::new();
    let mut i = open;
    loop {
        let t = tokens.get(i)?;
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => {
                depth += 1;
                if depth > 1 {
                    parts.push(if tokens[i].is_punct('(') { "(" } else { "[" }.into());
                }
            }
            TokKind::Punct(')') | TokKind::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
                parts.push(if t.is_punct(')') { ")" } else { "]" }.into());
            }
            TokKind::Ident(s) if s == "self" => {
                // Strip `self .` so method and free contexts compare equal.
                if matches!(tokens.get(i + 1), Some(n) if n.is_punct('.')) {
                    i += 1;
                }
            }
            TokKind::Ident(s) => parts.push(s.clone()),
            TokKind::Punct(c) => parts.push(c.to_string()),
            TokKind::Literal(_) => parts.push(t.num_text().unwrap_or("#").to_string()),
            TokKind::Lifetime => parts.push("'_".to_string()),
        }
        i += 1;
    }
    Some(parts.join(""))
}

/// R9: env-read discipline. `env::var`/`env::var_os` anywhere outside
/// the sanctioned config/backend-selection files forks behaviour on
/// state the experiment configs do not record.
fn scan_r9(
    file: &SourceFile,
    tokens: &[Tok],
    is_excluded: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if is_excluded(t.line) {
            continue;
        }
        if t.is_ident("env") && (path_call(tokens, i, "var") || path_call(tokens, i, "var_os")) {
            findings.push(Finding::new(
                &file.path,
                t.line,
                RULE_ENV_READ,
                "environment read outside the sanctioned config sites (rules.rs \
                 R9_ENV_FILES); take configuration as data so runs are reproducible \
                 from their recorded configs"
                    .to_string(),
            ));
        }
    }
}

/// R4: the crate root must declare `#![forbid(unsafe_code)]`.
fn scan_r4(file: &SourceFile, tokens: &[Tok], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 4 < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('!')
            && tokens[i + 2].is_punct('[')
            && tokens[i + 3].is_ident("forbid")
            && tokens[i + 4].is_punct('(')
        {
            let mut j = i + 5;
            while j < tokens.len() && !tokens[j].is_punct(')') {
                if tokens[j].is_ident("unsafe_code") {
                    return;
                }
                j += 1;
            }
        }
        i += 1;
    }
    let line = tokens.first().map_or(1, |t| t.line);
    findings.push(Finding::new(
        &file.path,
        line,
        RULE_FORBID_UNSAFE,
        "crate root must declare #![forbid(unsafe_code)]".to_string(),
    ));
}

/// Gathers the R3 inputs from one file.
fn collect_counter_state(
    file: &SourceFile,
    tokens: &[Tok],
    is_excluded: &dyn Fn(usize) -> bool,
    state: &mut CounterState,
) {
    if file.path == TRACE_FILE {
        if let Some((line, variants)) = parse_enum(tokens, "TraceKind") {
            state.saw_trace = true;
            state.trace_enum_line = line;
            state.variants = variants;
        }
    }
    if file.path == REPORT_FILE {
        let mut fields = BTreeMap::new();
        for name in ["AsyncReport", "CommReport", "FleetReport"] {
            if let Some((line, parsed)) = parse_struct_fields(tokens, name) {
                if name == "AsyncReport" {
                    state.saw_report = true;
                    state.async_report_line = line;
                }
                for (f, l) in parsed {
                    fields.entry(f).or_insert(l);
                }
            }
        }
        state.counter_fields = fields;
    }
    for (i, t) in tokens.iter().enumerate() {
        if is_excluded(t.line) {
            continue;
        }
        if t.is_ident("TraceKind") {
            if let (Some(a), Some(b), Some(c)) =
                (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3))
            {
                if a.is_punct(':') && b.is_punct(':') {
                    if let Some(v) = c.ident() {
                        state.emitted.insert(v.to_string());
                    }
                }
            }
        }
        if file.path != REPORT_FILE {
            if let Some(name) = t.ident() {
                state.used_idents.insert(name.to_string());
            }
        }
    }
}

/// Gathers the R5 inputs from one file.
fn collect_metric_state(
    file: &SourceFile,
    tokens: &[Tok],
    is_excluded: &dyn Fn(usize) -> bool,
    state: &mut MetricState,
) {
    if file.path == METRIC_FILE {
        if let Some((line, variants)) = parse_enum(tokens, "MetricId") {
            state.saw_registry = true;
            state.enum_line = line;
            state.variants = variants;
        }
        state.registry_text = file.text.clone();
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if is_excluded(t.line) {
            continue;
        }
        if t.is_ident("MetricId") {
            if let (Some(a), Some(b), Some(c)) =
                (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3))
            {
                if a.is_punct(':') && b.is_punct(':') {
                    if let Some(v) = c.ident() {
                        state.recorded.insert(v.to_string());
                    }
                }
            }
        }
    }
}

/// R5: every `MetricId` variant maps to a snapshot label, the label is
/// exported by the registry, and somebody records the metric in non-test
/// code. The label check reads the raw registry text because the lexer
/// drops string-literal contents.
fn check_metrics(state: &MetricState, findings: &mut Vec<Finding>) {
    if !state.saw_registry {
        return;
    }
    let mapping: BTreeMap<&str, &str> = METRIC_IDS.iter().copied().collect();
    for (variant, line) in &state.variants {
        let Some(label) = mapping.get(variant.as_str()) else {
            findings.push(Finding::new(
                METRIC_FILE,
                *line,
                RULE_METRIC,
                format!(
                    "MetricId::{variant} has no snapshot-label mapping; add it to \
                     stsl-audit rules.rs METRIC_IDS in the same PR"
                ),
            ));
            continue;
        };
        if !state.registry_text.contains(&format!("\"{label}\"")) {
            findings.push(Finding::new(
                METRIC_FILE,
                *line,
                RULE_METRIC,
                format!(
                    "MetricId::{variant}'s snapshot label \"{label}\" is not exported \
                     by the registry; every registered metric must appear in the \
                     exported snapshot"
                ),
            ));
            continue;
        }
        if !state.recorded.contains(variant) {
            findings.push(Finding::new(
                METRIC_FILE,
                *line,
                RULE_METRIC,
                format!("MetricId::{variant} is never recorded in non-test code"),
            ));
        }
    }
    // Stale table entries point at variants that no longer exist.
    let variant_names: BTreeSet<&str> = state.variants.iter().map(|(v, _)| v.as_str()).collect();
    for (variant, _) in &METRIC_IDS {
        if !variant_names.contains(variant) {
            findings.push(Finding::new(
                METRIC_FILE,
                state.enum_line,
                RULE_METRIC,
                format!(
                    "stsl-audit METRIC_IDS maps `{variant}`, which is not a MetricId \
                     variant; remove the stale table entry"
                ),
            ));
        }
    }
}

/// R3: every `TraceKind` variant maps to a report counter, and both sides
/// are live in non-test code.
fn check_counters(state: &CounterState, findings: &mut Vec<Finding>) {
    if !state.saw_trace || !state.saw_report {
        return;
    }
    let mapping: BTreeMap<&str, &str> = TRACE_COUNTERS.iter().copied().collect();
    for (variant, line) in &state.variants {
        let Some(counter) = mapping.get(variant.as_str()) else {
            findings.push(Finding::new(
                TRACE_FILE,
                *line,
                RULE_COUNTER,
                format!(
                    "TraceKind::{variant} has no counter mapping; add a report counter \
                     and map it in stsl-audit rules.rs TRACE_COUNTERS"
                ),
            ));
            continue;
        };
        match state.counter_fields.get(*counter) {
            None => findings.push(Finding::new(
                REPORT_FILE,
                state.async_report_line,
                RULE_COUNTER,
                format!(
                    "TraceKind::{variant} maps to counter `{counter}`, which is missing \
                     from AsyncReport/CommReport/FleetReport"
                ),
            )),
            Some(field_line) => {
                if !state.used_idents.contains(*counter) {
                    findings.push(Finding::new(
                        REPORT_FILE,
                        *field_line,
                        RULE_COUNTER,
                        format!(
                            "counter `{counter}` is declared but never referenced \
                             outside report.rs; TraceKind::{variant} is unaccounted"
                        ),
                    ));
                }
            }
        }
        if !state.emitted.contains(variant) {
            findings.push(Finding::new(
                TRACE_FILE,
                *line,
                RULE_COUNTER,
                format!("TraceKind::{variant} is never recorded in non-test code"),
            ));
        }
    }
    // Stale table entries point at variants that no longer exist.
    let variant_names: BTreeSet<&str> = state.variants.iter().map(|(v, _)| v.as_str()).collect();
    for (variant, _) in &TRACE_COUNTERS {
        if !variant_names.contains(variant) {
            findings.push(Finding::new(
                TRACE_FILE,
                state.trace_enum_line,
                RULE_COUNTER,
                format!(
                    "stsl-audit TRACE_COUNTERS maps `{variant}`, which is not a \
                     TraceKind variant; remove the stale table entry"
                ),
            ));
        }
    }
}

/// Finds `enum <name> {…}` and returns its line plus `(variant, line)`s.
fn parse_enum(tokens: &[Tok], name: &str) -> Option<(usize, Vec<(String, usize)>)> {
    let start = find_item(tokens, "enum", name)?;
    let open = (start..tokens.len()).find(|&i| tokens[i].is_punct('{'))?;
    let mut variants = Vec::new();
    let mut depth = 1usize;
    let mut expecting = true;
    let mut i = open + 1;
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        match &t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct(',') if depth == 1 => expecting = true,
            TokKind::Ident(v) if depth == 1 && expecting => {
                variants.push((v.clone(), t.line));
                expecting = false;
            }
            _ => {}
        }
        i += 1;
    }
    Some((tokens[start].line, variants))
}

/// Finds `struct <name> {…}` and returns its line plus `(field, line)`s.
fn parse_struct_fields(tokens: &[Tok], name: &str) -> Option<(usize, Vec<(String, usize)>)> {
    let start = find_item(tokens, "struct", name)?;
    let open = (start..tokens.len()).find(|&i| tokens[i].is_punct('{'))?;
    let mut fields = Vec::new();
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        match &t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Ident(f) if depth == 1 && f != "pub" => {
                // A field is `ident :` not followed by another `:` (which
                // would make it a path segment) and not preceded by one.
                let next_colon = matches!(tokens.get(i + 1), Some(n) if n.is_punct(':'));
                let double = matches!(tokens.get(i + 2), Some(n) if n.is_punct(':'));
                let prev_colon = i > 0 && tokens[i - 1].is_punct(':');
                if next_colon && !double && !prev_colon {
                    fields.push((f.clone(), t.line));
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((tokens[start].line, fields))
}

/// Index of the `kw` token of `kw name` (e.g. `struct AsyncReport`).
fn find_item(tokens: &[Tok], kw: &str, name: &str) -> Option<usize> {
    (0..tokens.len().saturating_sub(1))
        .find(|&i| tokens[i].is_ident(kw) && tokens[i + 1].is_ident(name))
}

/// Line spans covered by `#[cfg(test)]` / `#[test]` items — rule-exempt.
fn excluded_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && matches!(tokens.get(i + 1), Some(t) if t.is_punct('[')) {
            let attr_line = tokens[i].line;
            let (idents, mut j) = parse_bracketed(tokens, i + 1);
            let is_test = idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not");
            if !is_test {
                i = j;
                continue;
            }
            // Skip any further attributes on the same item.
            while j < tokens.len()
                && tokens[j].is_punct('#')
                && matches!(tokens.get(j + 1), Some(t) if t.is_punct('['))
            {
                j = parse_bracketed(tokens, j + 1).1;
            }
            // Consume the item: to `;` at depth 0 or the matching `}`.
            let mut depth = 0usize;
            let mut end_line = attr_line;
            while j < tokens.len() {
                let t = &tokens[j];
                end_line = t.line;
                match &t.kind {
                    TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => {
                        depth += 1;
                    }
                    TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 && t.is_punct('}') {
                            j += 1;
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((attr_line, end_line));
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Parses one `[…]` group starting at `open` (which must be `[`). Returns
/// the identifiers inside and the index just past the closing `]`.
fn parse_bracketed(tokens: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('[') | TokKind::Punct('(') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(']') | TokKind::Punct(')') | TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return (idents, i + 1);
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, i)
}
