//! A minimal Rust lexer: just enough tokenization to run lint rules
//! without a full parser.
//!
//! The workspace is offline (no `syn`), so the auditor scans a real token
//! stream instead of an AST. The lexer understands everything that could
//! make a naive substring search lie: line and nested block comments,
//! string/raw-string/byte-string/char literals, lifetimes, and numeric
//! literals. Comments are kept (with line numbers) because suppression
//! directives live in them; literals are dropped to a placeholder token so
//! a string containing `"unwrap("` can never trigger a rule.

/// What a token is, to the precision the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword; the text is preserved.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A literal, classified (see [`Lit`]). String/char contents are
    /// dropped so `"unwrap("` can never trigger a rule; numeric text is
    /// preserved because the flow rules (R7/R8) need it.
    Literal(Lit),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// Literal classification. Only numbers keep their text: R7 must tell a
/// float accumulator seed (`fold(0.0, …)`) from an integer one, and R8
/// compares seed-stream constants for aliasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lit {
    /// String / raw-string / byte-string literal; contents dropped.
    Str,
    /// Char or byte-char literal; contents dropped.
    Char,
    /// Integer literal with its raw text (`42`, `0xFF`, `5000`).
    Int(String),
    /// Float literal with its raw text (`0.0`, `1e-3`, `2f32`).
    Float(String),
}

/// Classifies a numeric literal's raw text. Radix prefixes are always
/// integers; otherwise a fraction dot, an `f32`/`f64` suffix or a bare
/// exponent (`1e9`) makes it a float.
fn classify_number(text: &str) -> Lit {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0b") || lower.starts_with("0o") {
        return Lit::Int(text.to_string());
    }
    let exp_only = lower.contains('e')
        && lower
            .chars()
            .all(|c| c.is_ascii_digit() || c == '_' || c == 'e');
    if lower.contains('.') || lower.ends_with("f32") || lower.ends_with("f64") || exp_only {
        Lit::Float(text.to_string())
    } else {
        Lit::Int(text.to_string())
    }
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class and (for identifiers) text.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is any literal.
    pub fn is_literal(&self) -> bool {
        matches!(self.kind, TokKind::Literal(_))
    }

    /// The raw text of a float literal, if this token is one.
    pub fn float_text(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Literal(Lit::Float(s)) => Some(s),
            _ => None,
        }
    }

    /// The raw text of a numeric (int or float) literal, if any.
    pub fn num_text(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Literal(Lit::Int(s)) | TokKind::Literal(Lit::Float(s)) => Some(s),
            _ => None,
        }
    }
}

/// One `//` comment with its 1-based line (suppressions live here).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Text after the `//` (including any further `/` or `!`).
    pub text: String,
}

/// Lexer output: the token stream plus all line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails: unterminated constructs simply consume
/// the rest of the input, which is the forgiving behaviour a linter wants.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;

    // Advances past `n` chars, counting newlines.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < bytes.len() {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    macro_rules! peek {
        ($k:expr) => {
            bytes.get(i + $k).copied()
        };
    }

    while i < bytes.len() {
        let c = bytes[i];

        if c == '\n' || c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (also doc comments /// and //!).
        if c == '/' && peek!(1) == Some('/') {
            let start_line = line;
            let mut text = String::new();
            bump!(2);
            while i < bytes.len() && bytes[i] != '\n' {
                text.push(bytes[i]);
                bump!(1);
            }
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && peek!(1) == Some('*') {
            bump!(2);
            let mut depth = 1usize;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '/' && peek!(1) == Some('*') {
                    depth += 1;
                    bump!(2);
                } else if bytes[i] == '*' && peek!(1) == Some('/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // String-ish literal prefixes: "…", r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if c == '"' {
            let start_line = line;
            bump!(1);
            consume_string_body(&bytes, &mut i, &mut line);
            out.tokens.push(Tok {
                kind: TokKind::Literal(Lit::Str),
                line: start_line,
            });
            continue;
        }
        if c == 'r' || c == 'b' {
            // Look ahead for a literal prefix before falling back to ident.
            let mut j = i + 1;
            if c == 'b' && peek!(1) == Some('r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // `r` / `br` prefixes mean a raw body (no escapes); a bare `b`
            // prefix is an escaped byte string.
            let raw = c == 'r' || peek!(1) == Some('r');
            if bytes.get(j) == Some(&'"') {
                let start_line = line;
                bump!(j + 1 - i); // prefix, hashes and opening quote
                if raw {
                    consume_raw_string_body(&bytes, &mut i, &mut line, hashes);
                } else {
                    consume_string_body(&bytes, &mut i, &mut line);
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal(Lit::Str),
                    line: start_line,
                });
                continue;
            }
            if c == 'b' && peek!(1) == Some('\'') {
                let start_line = line;
                bump!(2);
                consume_char_body(&bytes, &mut i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal(Lit::Char),
                    line: start_line,
                });
                continue;
            }
            // Not a literal prefix: fall through to the identifier path.
        }

        // Lifetime or char literal.
        if c == '\'' {
            let start_line = line;
            let is_lifetime = matches!(peek!(1), Some(n) if n.is_alphabetic() || n == '_')
                && peek!(2) != Some('\'');
            bump!(1);
            if is_lifetime {
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    bump!(1);
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    line: start_line,
                });
            } else {
                consume_char_body(&bytes, &mut i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal(Lit::Char),
                    line: start_line,
                });
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut text = String::new();
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                text.push(bytes[i]);
                bump!(1);
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident(text),
                line: start_line,
            });
            continue;
        }

        // Numeric literal. A `.` is consumed only when it begins a fraction
        // (`1.5`), never a range (`0..8`).
        if c.is_ascii_digit() {
            let start_line = line;
            let start = i;
            while i < bytes.len() {
                let d = bytes[i];
                let fraction_dot =
                    d == '.' && matches!(bytes.get(i + 1), Some(n) if n.is_ascii_digit());
                if d.is_alphanumeric() || d == '_' || fraction_dot {
                    bump!(1);
                } else {
                    break;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            out.tokens.push(Tok {
                kind: TokKind::Literal(classify_number(&text)),
                line: start_line,
            });
            continue;
        }

        out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        bump!(1);
    }
    out
}

fn consume_string_body(bytes: &[char], i: &mut usize, line: &mut usize) {
    while *i < bytes.len() {
        let c = bytes[*i];
        if c == '\n' {
            *line += 1;
        }
        if c == '\\' {
            *i += 1;
            if *i < bytes.len() {
                if bytes[*i] == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
            continue;
        }
        *i += 1;
        if c == '"' {
            return;
        }
    }
}

fn consume_raw_string_body(bytes: &[char], i: &mut usize, line: &mut usize, hashes: usize) {
    while *i < bytes.len() {
        let c = bytes[*i];
        if c == '\n' {
            *line += 1;
        }
        if c == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(*i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                *i += 1 + hashes;
                return;
            }
        }
        *i += 1;
    }
}

fn consume_char_body(bytes: &[char], i: &mut usize, line: &mut usize) {
    // Opening quote already consumed; read to the closing quote.
    while *i < bytes.len() {
        let c = bytes[*i];
        if c == '\n' {
            *line += 1;
        }
        if c == '\\' {
            *i += 1;
            if *i < bytes.len() {
                *i += 1;
            }
            continue;
        }
        *i += 1;
        if c == '\'' {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // unwrap( in a comment
            /* HashMap in a /* nested */ block */
            let s = "unwrap(Instant::now)";
            let r = r#"thread_rng"#;
            let b = b"panic!";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "unwrap"));
        assert!(!ids.iter().any(|s| s == "HashMap"));
        assert!(!ids.iter().any(|s| s == "thread_rng"));
        assert!(ids.iter().any(|s| s == "let"));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let a = 1;\n// stsl-audit: allow(x, reason = \"y\")\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("stsl-audit"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let literals = lexed.tokens.iter().filter(|t| t.is_literal()).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn raw_strings_with_hashes_end_only_at_the_matching_fence() {
        // `"#` inside an `r##"…"##` string is content, not a terminator:
        // ending early would leak `unwrap(` as real tokens.
        let src = "let s = r##\"quote \"# then unwrap( still inside\"##;\nlet after = 1;";
        let lexed = lex(src);
        let ids = lexed
            .tokens
            .iter()
            .filter_map(|t| t.ident())
            .collect::<Vec<_>>();
        assert!(!ids.contains(&"unwrap"), "{ids:?}");
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after token");
        assert_eq!(after.line, 2);
    }

    #[test]
    fn nested_block_comments_track_depth_and_lines() {
        // Rust block comments nest; a naive scan would close at the first
        // `*/` and leak `panic!` from the still-commented middle.
        let src = "/* one /* two\n/* three */ panic!(\"no\") */\nstill comment */ let x = 1;";
        let lexed = lex(src);
        let ids = lexed
            .tokens
            .iter()
            .filter_map(|t| t.ident())
            .collect::<Vec<_>>();
        assert!(!ids.contains(&"panic"), "{ids:?}");
        let x = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("x"))
            .expect("x token");
        assert_eq!(x.line, 3, "lines keep counting inside the comment");
    }

    #[test]
    fn escaped_char_literals_and_labels_are_not_confused_with_lifetimes() {
        let src = "fn f() { let a = '\\n'; let b = '\\''; let c = '\\\\'; \
                   'outer: loop { break 'outer; } }";
        let lexed = lex(src);
        let literals = lexed.tokens.iter().filter(|t| t.is_literal()).count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(literals, 3, "three escaped char literals");
        assert_eq!(lifetimes, 2, "the loop label at declaration and break");
    }

    #[test]
    fn ranges_are_not_swallowed_by_numbers() {
        let lexed = lex("for i in 0..8 { let x = 1.5; }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..8 keeps both range dots");
    }

    #[test]
    fn lines_track_through_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet b = 3;";
        let lexed = lex(src);
        let b_tok = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("b"))
            .expect("b token");
        assert_eq!(b_tok.line, 3);
    }
}
