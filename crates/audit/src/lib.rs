//! `stsl-audit` — the workspace invariant linter.
//!
//! The repo's headline guarantees (bitwise serial/parallel equivalence,
//! panic-free decode of hostile wire bytes, exact retransmit/drop
//! accounting) are dynamic properties that a single stray `HashMap`
//! iteration, `thread_rng()` or `unwrap()` silently re-breaks. This crate
//! enforces them *statically*: it lexes every `.rs` file in the workspace
//! (no `syn` — the build environment is offline, so the scanner is a
//! purpose-built token lexer), recovers functions and a workspace call
//! graph from the token stream (`parser`/`callgraph`), and applies the
//! rule set:
//!
//! - **R1 `determinism`** — no `HashMap`/`HashSet`, `Instant::now`,
//!   `SystemTime`, `thread_rng` or raw `thread::spawn` in the
//!   deterministic crates (`tensor`, `nn`, `split`, `simnet`,
//!   `telemetry`).
//! - **R3 `counter-accounting`** — every `TraceKind` variant maps to a
//!   live `AsyncReport`/`CommReport` counter and both sides are emitted.
//! - **R4 `forbid-unsafe`** — every crate root declares
//!   `#![forbid(unsafe_code)]`.
//! - **R5 `metric-accounting`** — every telemetry `MetricId` variant maps
//!   to a snapshot label the registry exports, and is recorded somewhere
//!   in non-test code.
//! - **R6 `panic-reachability`** — no `unwrap`/`expect`/panicking
//!   macro/unchecked indexing in any function transitively reachable
//!   from the untrusted-input entry points; findings carry the full
//!   entry-point → panic call chain. Supersedes the old file-scoped
//!   `no-panic` rule.
//! - **R7 `float-reduction`** — non-associative float reductions only in
//!   the sanctioned kernel seam (`tensor/src/ops/`, the `aggregate.rs`
//!   combiners).
//! - **R8 `rng-stream`** — every RNG derives from the seeded root
//!   (`rng_from_seed`/`derive_seed`), with no seed-expression reuse.
//! - **R9 `env-read`** — `env::var` only at the sanctioned
//!   config/backend-selection sites.
//!
//! Suppressions are inline comments the tool counts and reports, with a
//! per-rule budget enforced by the `suppression-budget` meta-rule:
//!
//! ```text
//! // stsl-audit: allow(determinism, reason = "wall-clock is informational")
//! ```
//!
//! Run it with `cargo run -p stsl-audit` (add `--format json` for the
//! SARIF-lite report CI consumes); exit code is nonzero on any
//! unsuppressed finding. See DESIGN.md §9 and §14 for the rule table,
//! the parser/call-graph architecture and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod callgraph;
mod engine;
mod lexer;
mod parser;
pub mod rules;

pub use callgraph::ChainHop;
pub use engine::{audit, AuditReport, Finding, SourceFile, UsedSuppression};

use std::io;
use std::path::{Path, PathBuf};

/// Collects the audited sources of the workspace rooted at `root`:
/// `src/**/*.rs` plus `crates/*/src/**/*.rs`, in deterministic (sorted)
/// order, with repo-relative `/`-separated paths.
///
/// `shims/` is deliberately excluded: the shims are API-compatible
/// stand-ins for external crates, not project code. Test fixtures under
/// `crates/audit/tests/` are never reached because only `src/` trees are
/// walked.
///
/// # Errors
///
/// Propagates filesystem errors (an unreadable tree should fail the audit
/// loudly, not pass it silently).
pub fn collect_workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        walk_rs(&src, root, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            let member_src = member.join("src");
            if member_src.is_dir() {
                walk_rs(&member_src, root, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                path: rel_str,
                text: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
