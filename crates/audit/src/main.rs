//! CLI entry point: audits the workspace this binary was built from.
//!
//! ```text
//! cargo run -p stsl-audit            # audit the workspace
//! cargo run -p stsl-audit -- <dir>   # audit another checkout
//! ```
//!
//! Exit status: 0 when every finding is suppressed (suppressions are
//! printed and counted), 1 on any unsuppressed finding, 2 on usage or
//! I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use stsl_audit::{audit, collect_workspace_sources, find_workspace_root};

fn main() -> ExitCode {
    let root = match root_dir() {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("stsl-audit: {msg}");
            return ExitCode::from(2);
        }
    };
    let files = match collect_workspace_sources(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!(
                "stsl-audit: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!("stsl-audit: no sources found under {}", root.display());
        return ExitCode::from(2);
    }

    let report = audit(&files);
    for f in &report.findings {
        println!("{f}");
    }
    if !report.suppressions.is_empty() {
        println!("suppressions in effect ({}):", report.suppressions.len());
        for s in &report.suppressions {
            println!(
                "  {}:{}: allow({}) x{} — {}",
                s.path, s.line, s.rule, s.count, s.reason
            );
        }
    }
    println!(
        "stsl-audit: {} file(s), {} finding(s), {} suppression(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressions.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The directory to audit: the CLI argument if given, else the workspace
/// that built this binary, else the current directory's workspace.
fn root_dir() -> Result<PathBuf, String> {
    let mut args = std::env::args_os().skip(1);
    if let Some(arg) = args.next() {
        let path = PathBuf::from(arg);
        if path.is_dir() {
            return Ok(path);
        }
        return Err(format!("not a directory: {}", path.display()));
    }
    let start = match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::current_dir().map_err(|e| e.to_string())?,
    };
    find_workspace_root(&start)
        .ok_or_else(|| "could not locate the workspace root (no Cargo.toml with crates/)".into())
}
