//! CLI entry point: audits the workspace this binary was built from.
//!
//! ```text
//! cargo run -p stsl-audit                     # audit the workspace
//! cargo run -p stsl-audit -- <dir>            # audit another checkout
//! cargo run -p stsl-audit -- --format json    # SARIF-lite for CI
//! ```
//!
//! Exit status: 0 when every finding is suppressed (suppressions are
//! printed and counted), 1 on any unsuppressed finding, 2 on usage or
//! I/O errors.
//!
//! The JSON output is SARIF-lite: the `version`/`runs[].tool`/
//! `runs[].results[]` skeleton of SARIF 2.1.0, with each result carrying
//! `ruleId`, `message.text`, one physical location and (for R6) a
//! `codeFlows`-style chain under `properties.chain`. It is hand-written
//! — the audit crate stays dependency-free — and consumed by the CI
//! `audit` step for inline annotations.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use stsl_audit::{audit, collect_workspace_sources, find_workspace_root, AuditReport};

fn main() -> ExitCode {
    let (root, format) = match parse_cli() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("stsl-audit: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = match root {
        Some(root) => root,
        None => match default_root() {
            Ok(root) => root,
            Err(msg) => {
                eprintln!("stsl-audit: {msg}");
                return ExitCode::from(2);
            }
        },
    };
    let files = match collect_workspace_sources(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!(
                "stsl-audit: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!("stsl-audit: no sources found under {}", root.display());
        return ExitCode::from(2);
    }

    let report = audit(&files);
    match format {
        Format::Text => print_text(&report),
        Format::Json => println!("{}", to_sarif_lite(&report)),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

enum Format {
    Text,
    Json,
}

/// Parses `[dir] [--format text|json]` in any order.
fn parse_cli() -> Result<(Option<PathBuf>, Format), String> {
    let mut root = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--format" {
            match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            }
        } else if let Some(v) = arg.strip_prefix("--format=") {
            match v {
                "json" => format = Format::Json,
                "text" => format = Format::Text,
                other => return Err(format!("--format expects `text` or `json`, got `{other}`")),
            }
        } else if root.is_none() {
            let path = PathBuf::from(&arg);
            if !path.is_dir() {
                return Err(format!("not a directory: {}", path.display()));
            }
            root = Some(path);
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    Ok((root, format))
}

fn print_text(report: &AuditReport) {
    for f in &report.findings {
        println!("{f}");
    }
    if !report.suppressions.is_empty() {
        println!("suppressions in effect ({}):", report.suppressions.len());
        for s in &report.suppressions {
            println!(
                "  {}:{}: allow({}) x{} — {}",
                s.path, s.line, s.rule, s.count, s.reason
            );
        }
    }
    println!(
        "stsl-audit: {} file(s), {} finding(s), {} suppression(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressions.len()
    );
}

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the report as SARIF-lite (hand-written; the audit crate is
/// dependency-free by design).
fn to_sarif_lite(report: &AuditReport) -> String {
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    let rules_json: Vec<String> = rules
        .iter()
        .map(|r| format!("{{\"id\":\"{}\"}}", esc(r)))
        .collect();

    let results: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let chain = if f.chain.is_empty() {
                String::new()
            } else {
                let hops: Vec<String> = f
                    .chain
                    .iter()
                    .map(|h| {
                        format!(
                            "{{\"function\":\"{}\",\"uri\":\"{}\",\"startLine\":{}}}",
                            esc(&h.name),
                            esc(&h.path),
                            h.line
                        )
                    })
                    .collect();
                format!(",\"properties\":{{\"chain\":[{}]}}", hops.join(","))
            };
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]{}}}",
                esc(f.rule),
                esc(&f.message),
                esc(&f.path),
                f.line,
                chain
            )
        })
        .collect();

    let suppressions: Vec<String> = report
        .suppressions
        .iter()
        .map(|s| {
            format!(
                "{{\"rule\":\"{}\",\"uri\":\"{}\",\"line\":{},\"count\":{},\"reason\":\"{}\"}}",
                esc(&s.rule),
                esc(&s.path),
                s.line,
                s.count,
                esc(&s.reason)
            )
        })
        .collect();

    format!(
        "{{\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"stsl-audit\",\
         \"rules\":[{}]}}}},\"results\":[{}],\"properties\":{{\"filesScanned\":{},\
         \"suppressions\":[{}]}}}}]}}",
        rules_json.join(","),
        results.join(","),
        report.files_scanned,
        suppressions.join(",")
    )
}

/// The directory to audit when no CLI argument names one: the workspace
/// that built this binary, else the current directory's workspace.
fn default_root() -> Result<PathBuf, String> {
    let start = match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::current_dir().map_err(|e| e.to_string())?,
    };
    find_workspace_root(&start)
        .ok_or_else(|| "could not locate the workspace root (no Cargo.toml with crates/)".into())
}
