//! A lightweight item/function parser over the token stream.
//!
//! The flow rules (R6 panic-reachability) need more structure than a flat
//! token scan: which function a token belongs to, what that function
//! calls, and where it can panic. This module recovers exactly that — no
//! types, no expressions — with a single pass over the lexer output:
//!
//! - `impl` blocks are tracked (including `impl Trait for Type`) so
//!   methods know their self type and `Self::`/`self.` calls resolve
//!   precisely;
//! - `fn` items are collected with their body token range, nested
//!   functions attributed to the innermost enclosing `fn`;
//! - call sites are classified as free calls, method calls (with an
//!   `on_self` flag) or path calls (`Type::method`);
//! - panic sites record `.unwrap()`/`.expect()`, panicking macros and
//!   index expressions.
//!
//! Functions whose first line falls inside a `#[cfg(test)]`/`#[test]`
//! span are marked `is_test` and skipped by the call-graph builder.

use crate::lexer::{Tok, TokKind};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — a free function call (or tuple-struct construction,
    /// which simply resolves to nothing).
    Free(String),
    /// `expr.name(…)`; `on_self` is true for the precise `self.name(…)`.
    Method {
        /// Method name.
        name: String,
        /// Whether the receiver is literally `self`.
        on_self: bool,
    },
    /// `Qual::name(…)` — `Qual` is a type, `Self`, or a module name.
    Path(String, String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee classification.
    pub kind: CallKind,
}

/// What kind of panic a site is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` or `.expect(…)`; the method name is preserved.
    UnwrapLike(String),
    /// A panicking macro (`panic!`, `assert!`, …); name preserved.
    Macro(String),
    /// `expr[…]` — unchecked slice/array indexing.
    Index,
}

/// One potential-panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Panic classification.
    pub kind: PanicKind,
    /// 1-based line of the site.
    pub line: usize,
}

/// One parsed function (or method).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// The `impl` self type when this is a method, else `None`.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function is test code (`#[test]` / `#[cfg(test)]`).
    pub is_test: bool,
    /// Token index range of the body (exclusive end), for per-fn scans.
    pub body: (usize, usize),
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panic sites in the body, in source order.
    pub panics: Vec<PanicSite>,
}

/// Parser output for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All functions in the file, in source order.
    pub functions: Vec<FnInfo>,
}

/// Macros that abort the process when invoked as `name!`.
pub const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 8] = [
    "if", "while", "for", "match", "return", "loop", "move", "in",
];

/// One entry of the scope stack: either an `impl` block or a function
/// body, with the brace depth at which its `{` opened.
#[derive(Debug)]
enum Scope {
    Impl(Option<String>),
    Fn(usize), // index into ParsedFile::functions
}

/// Parses one file's token stream. `excluded` is the line-span list from
/// the engine's `#[cfg(test)]`/`#[test]` detection.
pub fn parse_file(tokens: &[Tok], excluded: &[(usize, usize)]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let in_excluded = |line: usize| excluded.iter().any(|&(a, b)| line >= a && line <= b);

    // Scope stack entries paired with the brace depth of their body.
    let mut scopes: Vec<(Scope, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];

        if t.is_ident("impl") {
            if let Some((ty, body_open)) = parse_impl_header(tokens, i) {
                depth += 1;
                scopes.push((Scope::Impl(ty), depth));
                i = body_open + 1;
                continue;
            }
        }

        if t.is_ident("fn") {
            if let Some(name) = tokens.get(i + 1).and_then(|n| n.ident()) {
                let qual = scopes.iter().rev().find_map(|(s, _)| match s {
                    Scope::Impl(ty) => Some(ty.clone()),
                    Scope::Fn(_) => None,
                });
                match find_fn_body(tokens, i + 2) {
                    Some(body_open) => {
                        let idx = out.functions.len();
                        out.functions.push(FnInfo {
                            name: name.to_string(),
                            qual: qual.flatten(),
                            line: t.line,
                            is_test: in_excluded(t.line),
                            body: (body_open + 1, body_open + 1),
                            calls: Vec::new(),
                            panics: Vec::new(),
                        });
                        depth += 1;
                        scopes.push((Scope::Fn(idx), depth));
                        i = body_open + 1;
                        continue;
                    }
                    None => {
                        // Declaration without a body (trait method): skip
                        // past the `;` so its signature is not scanned.
                        let mut j = i + 2;
                        while j < tokens.len() && !tokens[j].is_punct(';') {
                            if tokens[j].is_punct('{') {
                                break;
                            }
                            j += 1;
                        }
                        i = j + 1;
                        continue;
                    }
                }
            }
        }

        match &t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                while scopes.last().is_some_and(|&(_, d)| d == depth) {
                    if let Some((Scope::Fn(idx), _)) = scopes.pop() {
                        out.functions[idx].body.1 = i;
                    }
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }

        // Attribute calls/panics to the innermost enclosing fn.
        let current_fn = scopes.iter().rev().find_map(|(s, _)| match s {
            Scope::Fn(idx) => Some(*idx),
            Scope::Impl(_) => None,
        });
        if let Some(idx) = current_fn {
            scan_site(tokens, i, &mut out.functions[idx]);
        }

        i += 1;
    }

    // Close any still-open bodies at EOF (unterminated input).
    for (s, _) in scopes {
        if let Scope::Fn(idx) = s {
            out.functions[idx].body.1 = tokens.len();
        }
    }
    out
}

/// Parses the header of an `impl` at token `i`. Returns the self-type
/// name (last path segment before generics) and the index of the body
/// `{`, or `None` when no body brace is found.
fn parse_impl_header(tokens: &[Tok], i: usize) -> Option<(Option<String>, usize)> {
    let mut j = i + 1;
    let mut angle = 0usize;
    let mut segs: Vec<String> = Vec::new();
    let mut after_for: Option<usize> = None;
    while j < tokens.len() {
        let t = &tokens[j];
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = angle.saturating_sub(1),
            TokKind::Punct('{') if angle == 0 => {
                let relevant = match after_for {
                    Some(k) => &segs[k..],
                    None => &segs[..],
                };
                let ty = relevant
                    .iter()
                    .rev()
                    .find(|s| !matches!(s.as_str(), "mut" | "dyn" | "where" | "Send" | "Sync"))
                    .cloned();
                return Some((ty, j));
            }
            TokKind::Punct(';') if angle == 0 => return None,
            TokKind::Ident(s) if angle == 0 => {
                if s == "for" {
                    after_for = Some(segs.len());
                } else {
                    segs.push(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Finds the `{` opening a fn body, scanning from just past the fn name.
/// Returns `None` for a body-less declaration (`fn f();`).
fn find_fn_body(tokens: &[Tok], from: usize) -> Option<usize> {
    let mut angle = 0usize;
    let mut j = from;
    while j < tokens.len() {
        let t = &tokens[j];
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = angle.saturating_sub(1),
            TokKind::Punct('{') if angle == 0 => return Some(j),
            TokKind::Punct(';') if angle == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Classifies the token at `i` as a call site and/or panic site of `f`.
fn scan_site(tokens: &[Tok], i: usize, f: &mut FnInfo) {
    let t = &tokens[i];
    let next_is = |c: char| matches!(tokens.get(i + 1), Some(n) if n.is_punct(c));
    let prev_is = |k: usize, c: char| i >= k && tokens[i - k].is_punct(c);

    if let Some(name) = t.ident() {
        // Panicking macro invocation.
        if PANIC_MACROS.contains(&name) && next_is('!') {
            f.panics.push(PanicSite {
                kind: PanicKind::Macro(name.to_string()),
                line: t.line,
            });
            return;
        }
        if next_is('!') {
            return; // non-panicking macro, not a call
        }
        if next_is('(') {
            if prev_is(1, '.') {
                if name == "unwrap" || name == "expect" {
                    f.panics.push(PanicSite {
                        kind: PanicKind::UnwrapLike(name.to_string()),
                        line: t.line,
                    });
                    return;
                }
                let on_self = i >= 2
                    && tokens[i - 2].is_ident("self")
                    && !(i >= 3 && tokens[i - 3].is_punct('.'));
                f.calls.push(CallSite {
                    kind: CallKind::Method {
                        name: name.to_string(),
                        on_self,
                    },
                });
                return;
            }
            if prev_is(1, ':') && prev_is(2, ':') && i >= 3 {
                if let Some(qual) = tokens[i - 3].ident() {
                    f.calls.push(CallSite {
                        kind: CallKind::Path(qual.to_string(), name.to_string()),
                    });
                    return;
                }
            }
            if !NON_CALL_KEYWORDS.contains(&name) {
                f.calls.push(CallSite {
                    kind: CallKind::Free(name.to_string()),
                });
            }
            return;
        }
        return;
    }

    // Index expression: `[` directly after an ident, `)` or `]`.
    if t.is_punct('[') && i > 0 {
        let prev = &tokens[i - 1];
        let indexing = matches!(prev.kind, TokKind::Ident(_))
            || prev.is_punct(')')
            || prev.is_punct(']')
            || prev.is_literal();
        if indexing {
            f.panics.push(PanicSite {
                kind: PanicKind::Index,
                line: t.line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src).tokens, &[])
    }

    #[test]
    fn free_fn_with_calls_and_panics() {
        let p = parse("fn a(x: &[u8]) -> u8 { helper(x); x[0] }\nfn helper(_x: &[u8]) {}");
        assert_eq!(p.functions.len(), 2);
        let a = &p.functions[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.qual, None);
        assert!(a
            .calls
            .iter()
            .any(|c| c.kind == CallKind::Free("helper".into())));
        assert!(a.panics.iter().any(|s| s.kind == PanicKind::Index));
    }

    #[test]
    fn impl_methods_get_their_self_type() {
        let p = parse(
            "impl Ring { fn push(&mut self) { self.grow(); Other::make(); } fn grow(&mut self) {} }",
        );
        assert_eq!(p.functions[0].qual.as_deref(), Some("Ring"));
        let push = &p.functions[0];
        assert!(push.calls.iter().any(|c| c.kind
            == CallKind::Method {
                name: "grow".into(),
                on_self: true
            }));
        assert!(push
            .calls
            .iter()
            .any(|c| c.kind == CallKind::Path("Other".into(), "make".into())));
    }

    #[test]
    fn trait_impl_resolves_to_the_implementing_type() {
        let p = parse("impl fmt::Display for Frame { fn fmt(&self) { self.check() } }");
        assert_eq!(p.functions[0].qual.as_deref(), Some("Frame"));
    }

    #[test]
    fn nested_fn_owns_its_own_panics() {
        let p = parse("fn outer() { fn inner(v: &[u8]) -> u8 { v[0] } inner(&[]); }");
        let outer = p.functions.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.functions.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.panics.is_empty());
        assert_eq!(inner.panics.len(), 1);
    }

    #[test]
    fn unwrap_and_macros_are_panic_sites_not_calls() {
        let p = parse("fn f(o: Option<u8>) -> u8 { assert!(true); o.unwrap() }");
        let f = &p.functions[0];
        assert_eq!(f.panics.len(), 2);
        assert!(f.calls.is_empty());
    }

    #[test]
    fn vec_macro_bracket_is_not_indexing() {
        let p = parse("fn f() { let _v = vec![0u8; 4]; }");
        assert!(p.functions[0].panics.is_empty());
    }

    #[test]
    fn generic_signatures_do_not_confuse_body_detection() {
        let p = parse(
            "fn f<T: Into<Vec<u8>>>(x: T) -> Result<(), ()> where T: Clone { drop(x); Ok(()) }",
        );
        assert_eq!(p.functions.len(), 1);
        assert!(p.functions[0]
            .calls
            .iter()
            .any(|c| c.kind == CallKind::Free("drop".into())));
    }

    #[test]
    fn test_spans_mark_functions_as_test() {
        let src = "fn real() {}\nfn later() {}";
        let p = parse_file(&lex(src).tokens, &[(2, 2)]);
        assert!(!p.functions[0].is_test);
        assert!(p.functions[1].is_test);
    }
}
