//! The rule set: identifiers, scopes and the trace/counter contract.
//!
//! Rules are numbered after the invariants they defend (see DESIGN.md §9):
//!
//! | id                   | invariant                                        |
//! |----------------------|--------------------------------------------------|
//! | `determinism`        | R1 — bitwise serial/parallel + seeded replay     |
//! | `no-panic`           | R2 — hostile wire/disk bytes never abort         |
//! | `counter-accounting` | R3 — every `TraceKind` has a live counter        |
//! | `forbid-unsafe`      | R4 — `#![forbid(unsafe_code)]` in every crate    |
//! | `metric-accounting`  | R5 — every `MetricId` is exported and recorded   |
//!
//! Two meta-rules police the suppression mechanism itself:
//! `bad-suppression` (malformed `allow` directive) and `unused-suppression`
//! (an `allow` that silenced nothing).

/// Rule id for R1 (determinism).
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule id for R2 (panic-freedom on untrusted input).
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule id for R3 (trace/counter accounting).
pub const RULE_COUNTER: &str = "counter-accounting";
/// Rule id for R4 (unsafe ban).
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// Rule id for R5 (telemetry metric accounting).
pub const RULE_METRIC: &str = "metric-accounting";
/// Meta-rule: a suppression directive that could not be parsed.
pub const RULE_BAD_SUPPRESSION: &str = "bad-suppression";
/// Meta-rule: a suppression directive that silenced no finding.
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";

/// All real (non-meta) rule ids, for directive validation.
pub const RULE_IDS: [&str; 5] = [
    RULE_DETERMINISM,
    RULE_NO_PANIC,
    RULE_COUNTER,
    RULE_FORBID_UNSAFE,
    RULE_METRIC,
];

/// Crates whose `src/` trees must be deterministic (R1): no host clock,
/// no unseeded RNG, no raw threads, no hash-order iteration. `stsl-parallel`
/// is deliberately absent — it is the sanctioned threading layer.
pub const R1_CRATE_DIRS: [&str; 5] = [
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/split/src/",
    "crates/simnet/src/",
    "crates/telemetry/src/",
];

/// Files that parse untrusted wire or on-disk bytes (R2): no `unwrap`,
/// `expect`, panicking macro or slice indexing outside test code.
pub const R2_FILES: [&str; 4] = [
    "crates/split/src/protocol.rs",
    "crates/split/src/guard.rs",
    "crates/split/src/checkpoint.rs",
    "crates/data/src/cifar.rs",
];

/// Where the `TraceKind` enum lives (R3 input).
pub const TRACE_FILE: &str = "crates/simnet/src/trace.rs";
/// Where the report structs with the counters live (R3 input).
pub const REPORT_FILE: &str = "crates/split/src/report.rs";

/// The accounting contract: every `TraceKind` variant and the report field
/// that must count it. A variant missing from this table, a mapped field
/// missing from `report.rs`, or either side never referenced in non-test
/// code is a `counter-accounting` finding — adding a trace kind forces the
/// author to add (and emit) its counter, or extend this table in the same
/// PR, where a reviewer sees both sides.
pub const TRACE_COUNTERS: [(&str, &str); 29] = [
    ("Arrival", "uplink_messages"),
    ("ServiceStart", "served_per_client"),
    ("GradientDelivered", "downlink_messages"),
    ("SchedulerDrop", "scheduler_drops"),
    ("NetworkDrop", "network_drops"),
    ("Retransmit", "retransmits"),
    ("RetryExhausted", "retry_exhausted"),
    ("ClientCrash", "crash_events"),
    ("ClientRecover", "recovery_events"),
    ("CheckpointSave", "checkpoint_saves"),
    ("CheckpointRestore", "checkpoint_restores"),
    ("PayloadCorrupted", "corrupted_payloads"),
    ("CorruptRejected", "corrupted_rejected"),
    ("AnomalyRejected", "anomalies_rejected"),
    ("Quarantine", "quarantines"),
    ("QuarantineRelease", "quarantine_releases"),
    ("QuarantineDrop", "quarantine_drops"),
    ("Rollback", "rollbacks"),
    ("SnapshotEmit", "snapshots_emitted"),
    ("JournalDrop", "journal_dropped"),
    ("ClientJoin", "clients_joined"),
    ("ClientLeave", "clients_departed"),
    ("ClientRejoin", "rejoins"),
    ("IngressShed", "batches_shed"),
    ("BreakerTrip", "breaker_trips"),
    ("DeadlinePartialApply", "deadline_partial_applies"),
    ("AttackInjected", "attacks_injected"),
    ("RobustApply", "robust_applies"),
    ("RobustOutlier", "robust_outliers"),
];

/// Where the `MetricId` enum and the snapshot exporter live (R5 input).
pub const METRIC_FILE: &str = "crates/telemetry/src/registry.rs";

/// The metric-accounting contract (R5): every `MetricId` variant and the
/// snapshot label it must export under. A variant missing from this table,
/// a label absent from the registry source (i.e. dropped from `as_str` and
/// therefore from every exported snapshot), or a variant never recorded in
/// non-test code outside the registry is a `metric-accounting` finding —
/// the same emission/liveness discipline R3 applies to trace counters.
pub const METRIC_IDS: [(&str, &str); 9] = [
    ("UplinkLatency", "uplink_latency_us"),
    ("DownlinkLatency", "downlink_latency_us"),
    ("QueueDepth", "queue_depth"),
    ("GradientStaleness", "gradient_staleness_us"),
    ("ServiceTime", "service_time_us"),
    ("MembershipSize", "membership_size"),
    ("ShedRate", "shed_rate"),
    ("RejectedUpdateRate", "rejected_update_rate"),
    ("TrimFraction", "trim_fraction"),
];

/// Identifiers banned outright in R1 scope, with the finding message.
pub const R1_BANNED_IDENTS: [(&str, &str); 4] = [
    (
        "HashMap",
        "HashMap iteration order is nondeterministic; use BTreeMap or an index-keyed Vec",
    ),
    (
        "HashSet",
        "HashSet iteration order is nondeterministic; use BTreeSet or a sorted Vec",
    ),
    (
        "thread_rng",
        "thread_rng() is unseeded; derive an StdRng from the run seed (init::rng_from_seed)",
    ),
    (
        "is_x86_feature_detected",
        "runtime CPU sniffing forks numeric behavior by host; select kernels via the \
         Backend seam (STSL_BACKEND / with_backend) and let the compiler target baseline \
         features",
    ),
];

/// Panicking macros banned in R2 scope (invoked as `name!`).
pub const R2_BANNED_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Whether `path` (repo-relative, `/`-separated) is in R1 scope.
pub fn in_r1_scope(path: &str) -> bool {
    R1_CRATE_DIRS.iter().any(|d| path.starts_with(d))
}

/// Whether `path` is one of the R2 untrusted-input files.
pub fn in_r2_scope(path: &str) -> bool {
    R2_FILES.contains(&path)
}

/// Whether `path` is a crate root that must carry the unsafe ban (R4):
/// every workspace crate under `crates/` plus the facade crate.
pub fn in_r4_scope(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_expected_paths() {
        assert!(in_r1_scope("crates/split/src/async_trainer.rs"));
        assert!(in_r1_scope("crates/tensor/src/ops/gemm.rs"));
        assert!(!in_r1_scope("crates/parallel/src/lib.rs"));
        assert!(!in_r1_scope("crates/audit/src/engine.rs"));

        assert!(in_r2_scope("crates/split/src/guard.rs"));
        assert!(!in_r2_scope("crates/split/src/server.rs"));

        assert!(in_r4_scope("src/lib.rs"));
        assert!(in_r4_scope("crates/audit/src/lib.rs"));
        assert!(!in_r4_scope("crates/split/src/guard.rs"));
        assert!(!in_r4_scope("shims/rand/src/lib.rs"));
    }

    #[test]
    fn counter_table_is_duplicate_free() {
        for (i, (v, _)) in TRACE_COUNTERS.iter().enumerate() {
            for (w, _) in &TRACE_COUNTERS[i + 1..] {
                assert_ne!(v, w, "duplicate variant mapping");
            }
        }
    }

    #[test]
    fn metric_table_is_duplicate_free() {
        for (i, (v, l)) in METRIC_IDS.iter().enumerate() {
            for (w, m) in &METRIC_IDS[i + 1..] {
                assert_ne!(v, w, "duplicate metric variant mapping");
                assert_ne!(l, m, "duplicate snapshot label");
            }
        }
    }
}
