//! The rule set: identifiers, scopes and the trace/counter contract.
//!
//! Rules are numbered after the invariants they defend (DESIGN.md §9/§14):
//!
//! | id                   | invariant                                        |
//! |----------------------|--------------------------------------------------|
//! | `determinism`        | R1 — bitwise serial/parallel + seeded replay     |
//! | `counter-accounting` | R3 — every `TraceKind` has a live counter        |
//! | `forbid-unsafe`      | R4 — `#![forbid(unsafe_code)]` in every crate    |
//! | `metric-accounting`  | R5 — every `MetricId` is exported and recorded   |
//! | `panic-reachability` | R6 — nothing reachable from untrusted input aborts |
//! | `float-reduction`    | R7 — float reductions only in the kernel seam    |
//! | `rng-stream`         | R8 — RNGs derive from the seeded root, no aliasing |
//! | `env-read`           | R9 — env reads only at the sanctioned config sites |
//!
//! R6 supersedes the old per-file `no-panic` (R2): instead of a
//! hardcoded file list, the call graph decides what untrusted input can
//! reach. Three meta-rules police the suppression mechanism itself:
//! `bad-suppression` (malformed `allow`), `unused-suppression` (an
//! `allow` that silenced nothing) and `suppression-budget` (more
//! suppressions of one rule than its reviewed budget).

/// Rule id for R1 (determinism).
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule id for R3 (trace/counter accounting).
pub const RULE_COUNTER: &str = "counter-accounting";
/// Rule id for R4 (unsafe ban).
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// Rule id for R5 (telemetry metric accounting).
pub const RULE_METRIC: &str = "metric-accounting";
/// Rule id for R6 (interprocedural panic-freedom on untrusted input).
/// Supersedes the old file-scoped `no-panic` rule.
pub const RULE_PANIC_REACH: &str = "panic-reachability";
/// Rule id for R7 (float-reduction discipline).
pub const RULE_FLOAT_REDUCTION: &str = "float-reduction";
/// Rule id for R8 (RNG-stream discipline).
pub const RULE_RNG_STREAM: &str = "rng-stream";
/// Rule id for R9 (env-read discipline).
pub const RULE_ENV_READ: &str = "env-read";
/// Meta-rule: a suppression directive that could not be parsed.
pub const RULE_BAD_SUPPRESSION: &str = "bad-suppression";
/// Meta-rule: a suppression directive that silenced no finding.
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";
/// Meta-rule: a rule's per-rule suppression budget is exceeded.
pub const RULE_SUPPRESSION_BUDGET: &str = "suppression-budget";

/// All real (non-meta) rule ids, for directive validation.
pub const RULE_IDS: [&str; 8] = [
    RULE_DETERMINISM,
    RULE_COUNTER,
    RULE_FORBID_UNSAFE,
    RULE_METRIC,
    RULE_PANIC_REACH,
    RULE_FLOAT_REDUCTION,
    RULE_RNG_STREAM,
    RULE_ENV_READ,
];

/// Per-rule suppression budgets (satellite of ISSUE 9): each `allow()`
/// is a reviewed exception, and the review happens when the budget is
/// raised here — not when the Nth directive quietly lands. Exceeding a
/// budget is a `suppression-budget` finding.
pub const SUPPRESSION_BUDGETS: [(&str, usize); 8] = [
    (RULE_DETERMINISM, 2),
    (RULE_COUNTER, 1),
    (RULE_FORBID_UNSAFE, 1),
    (RULE_METRIC, 1),
    (RULE_PANIC_REACH, 4),
    (RULE_FLOAT_REDUCTION, 2),
    (RULE_RNG_STREAM, 2),
    (RULE_ENV_READ, 1),
];

/// The budget for `rule`, defaulting to zero for unknown ids.
pub fn suppression_budget(rule: &str) -> usize {
    SUPPRESSION_BUDGETS
        .iter()
        .find(|(r, _)| *r == rule)
        .map_or(0, |(_, n)| *n)
}

/// Crates whose `src/` trees must be deterministic (R1): no host clock,
/// no unseeded RNG, no raw threads, no hash-order iteration. `stsl-parallel`
/// is deliberately absent — it is the sanctioned threading layer.
pub const R1_CRATE_DIRS: [&str; 5] = [
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/split/src/",
    "crates/simnet/src/",
    "crates/telemetry/src/",
];

/// R6 entry files: every non-test function in these files handles bytes
/// an attacker may control (wire decode, checkpoint/ring load, CIFAR
/// parse, guard ingress, robust-aggregation payloads, membership
/// lifecycle driven by client messages). Anything they transitively call
/// inside [`R6_DOMAIN_DIRS`] must be panic-free.
pub const R6_ENTRY_FILES: [&str; 6] = [
    "crates/split/src/protocol.rs",
    "crates/split/src/guard.rs",
    "crates/split/src/checkpoint.rs",
    "crates/split/src/aggregate.rs",
    "crates/split/src/membership.rs",
    "crates/data/src/cifar.rs",
];

/// The R6 reachability domain: call-graph nodes live here. `tensor` and
/// `nn` are a deliberate boundary — their shape-contract panics are
/// prevented at the boundary by validated construction (see DESIGN.md
/// §14) and chasing edges into the kernels would flood the rule.
pub const R6_DOMAIN_DIRS: [&str; 4] = [
    "crates/split/src/",
    "crates/simnet/src/",
    "crates/telemetry/src/",
    "crates/data/src/",
];

/// The sanctioned non-associative-reduction seam (R7): scalar and tensor
/// reductions live in the kernel seam and the robust-aggregation
/// combiners, where the bitwise-equivalence tests pin their order.
pub const R7_SEAM: [&str; 2] = ["crates/tensor/src/ops/", "crates/split/src/aggregate.rs"];

/// The one file allowed to construct an RNG from raw seed material (R8):
/// the seeded root `rng_from_seed` and the `derive_seed` splitter.
pub const R8_RNG_ROOT_FILE: &str = "crates/tensor/src/init.rs";

/// Files sanctioned to read process environment variables (R9): the
/// documented config/backend-selection sites. Everything else must take
/// configuration as data.
pub const R9_ENV_FILES: [&str; 5] = [
    "crates/parallel/src/lib.rs",
    "crates/tensor/src/backend.rs",
    "crates/simnet/src/event.rs",
    "crates/bench/src/lib.rs",
    "crates/audit/src/main.rs",
];

/// Where the `TraceKind` enum lives (R3 input).
pub const TRACE_FILE: &str = "crates/simnet/src/trace.rs";
/// Where the report structs with the counters live (R3 input).
pub const REPORT_FILE: &str = "crates/split/src/report.rs";

/// The accounting contract: every `TraceKind` variant and the report field
/// that must count it. A variant missing from this table, a mapped field
/// missing from `report.rs`, or either side never referenced in non-test
/// code is a `counter-accounting` finding — adding a trace kind forces the
/// author to add (and emit) its counter, or extend this table in the same
/// PR, where a reviewer sees both sides.
pub const TRACE_COUNTERS: [(&str, &str); 30] = [
    ("Arrival", "uplink_messages"),
    ("ServiceStart", "served_per_client"),
    ("GradientDelivered", "downlink_messages"),
    ("SchedulerDrop", "scheduler_drops"),
    ("NetworkDrop", "network_drops"),
    ("Retransmit", "retransmits"),
    ("RetryExhausted", "retry_exhausted"),
    ("ClientCrash", "crash_events"),
    ("ClientRecover", "recovery_events"),
    ("CheckpointSave", "checkpoint_saves"),
    ("CheckpointRestore", "checkpoint_restores"),
    ("PayloadCorrupted", "corrupted_payloads"),
    ("CorruptRejected", "corrupted_rejected"),
    ("AnomalyRejected", "anomalies_rejected"),
    ("Quarantine", "quarantines"),
    ("QuarantineRelease", "quarantine_releases"),
    ("QuarantineDrop", "quarantine_drops"),
    ("Rollback", "rollbacks"),
    ("SnapshotEmit", "snapshots_emitted"),
    ("JournalDrop", "journal_dropped"),
    ("ClientJoin", "clients_joined"),
    ("ClientLeave", "clients_departed"),
    ("ClientRejoin", "rejoins"),
    ("IngressShed", "batches_shed"),
    ("BreakerTrip", "breaker_trips"),
    ("DeadlinePartialApply", "deadline_partial_applies"),
    ("AttackInjected", "attacks_injected"),
    ("RobustApply", "robust_applies"),
    ("RobustOutlier", "robust_outliers"),
    ("CohortStep", "cohort_steps"),
];

/// Where the `MetricId` enum and the snapshot exporter live (R5 input).
pub const METRIC_FILE: &str = "crates/telemetry/src/registry.rs";

/// The metric-accounting contract (R5): every `MetricId` variant and the
/// snapshot label it must export under. A variant missing from this table,
/// a label absent from the registry source (i.e. dropped from `as_str` and
/// therefore from every exported snapshot), or a variant never recorded in
/// non-test code outside the registry is a `metric-accounting` finding —
/// the same emission/liveness discipline R3 applies to trace counters.
pub const METRIC_IDS: [(&str, &str); 10] = [
    ("UplinkLatency", "uplink_latency_us"),
    ("DownlinkLatency", "downlink_latency_us"),
    ("QueueDepth", "queue_depth"),
    ("GradientStaleness", "gradient_staleness_us"),
    ("ServiceTime", "service_time_us"),
    ("MembershipSize", "membership_size"),
    ("ShedRate", "shed_rate"),
    ("RejectedUpdateRate", "rejected_update_rate"),
    ("TrimFraction", "trim_fraction"),
    ("CohortSize", "cohort_size"),
];

/// Identifiers banned outright in R1 scope, with the finding message.
pub const R1_BANNED_IDENTS: [(&str, &str); 4] = [
    (
        "HashMap",
        "HashMap iteration order is nondeterministic; use BTreeMap or an index-keyed Vec",
    ),
    (
        "HashSet",
        "HashSet iteration order is nondeterministic; use BTreeSet or a sorted Vec",
    ),
    (
        "thread_rng",
        "thread_rng() is unseeded; derive an StdRng from the run seed (init::rng_from_seed)",
    ),
    (
        "is_x86_feature_detected",
        "runtime CPU sniffing forks numeric behavior by host; select kernels via the \
         Backend seam (STSL_BACKEND / with_backend) and let the compiler target baseline \
         features",
    ),
];

/// Whether `path` (repo-relative, `/`-separated) is in R1 scope.
pub fn in_r1_scope(path: &str) -> bool {
    R1_CRATE_DIRS.iter().any(|d| path.starts_with(d))
}

/// Whether `path` is one of the R6 untrusted-input entry files.
pub fn is_r6_entry(path: &str) -> bool {
    R6_ENTRY_FILES.contains(&path)
}

/// Whether `path` is inside the R6 reachability domain.
pub fn in_r6_domain(path: &str) -> bool {
    R6_DOMAIN_DIRS.iter().any(|d| path.starts_with(d))
}

/// Whether `path` is inside the sanctioned reduction seam (R7-exempt).
pub fn in_r7_seam(path: &str) -> bool {
    R7_SEAM.iter().any(|s| path.starts_with(s) || path == *s)
}

/// Whether R7 applies to `path`: R1 scope minus the sanctioned seam.
pub fn in_r7_scope(path: &str) -> bool {
    in_r1_scope(path) && !in_r7_seam(path)
}

/// Whether R8 applies to `path`: R1 scope minus the RNG root file.
pub fn in_r8_scope(path: &str) -> bool {
    in_r1_scope(path) && path != R8_RNG_ROOT_FILE
}

/// Whether R9 applies to `path`: everywhere except the sanctioned
/// config/backend-selection sites.
pub fn in_r9_scope(path: &str) -> bool {
    !R9_ENV_FILES.contains(&path)
}

/// Whether `path` is a crate root that must carry the unsafe ban (R4):
/// every workspace crate under `crates/` plus the facade crate.
pub fn in_r4_scope(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_expected_paths() {
        assert!(in_r1_scope("crates/split/src/async_trainer.rs"));
        assert!(in_r1_scope("crates/tensor/src/ops/gemm.rs"));
        assert!(!in_r1_scope("crates/parallel/src/lib.rs"));
        assert!(!in_r1_scope("crates/audit/src/engine.rs"));

        assert!(is_r6_entry("crates/split/src/guard.rs"));
        assert!(is_r6_entry("crates/split/src/aggregate.rs"));
        assert!(is_r6_entry("crates/split/src/membership.rs"));
        assert!(!is_r6_entry("crates/split/src/server.rs"));
        assert!(in_r6_domain("crates/split/src/server.rs"));
        assert!(!in_r6_domain("crates/tensor/src/tensor.rs"));

        assert!(!in_r7_scope("crates/tensor/src/ops/gemm.rs"));
        assert!(!in_r7_scope("crates/split/src/aggregate.rs"));
        assert!(in_r7_scope("crates/split/src/guard.rs"));

        assert!(in_r8_scope("crates/split/src/async_trainer.rs"));
        assert!(!in_r8_scope("crates/tensor/src/init.rs"));

        assert!(!in_r9_scope("crates/tensor/src/backend.rs"));
        assert!(!in_r9_scope("crates/simnet/src/event.rs"));
        assert!(in_r9_scope("crates/split/src/server.rs"));

        assert!(in_r4_scope("src/lib.rs"));
        assert!(in_r4_scope("crates/audit/src/lib.rs"));
        assert!(!in_r4_scope("crates/split/src/guard.rs"));
        assert!(!in_r4_scope("shims/rand/src/lib.rs"));
    }

    #[test]
    fn every_rule_has_a_budget_entry() {
        for rule in RULE_IDS {
            assert!(
                SUPPRESSION_BUDGETS.iter().any(|(r, _)| *r == rule),
                "rule {rule} has no suppression budget"
            );
        }
        assert_eq!(suppression_budget(RULE_DETERMINISM), 2);
        assert_eq!(suppression_budget("nonsense"), 0);
    }

    #[test]
    fn counter_table_is_duplicate_free() {
        for (i, (v, _)) in TRACE_COUNTERS.iter().enumerate() {
            for (w, _) in &TRACE_COUNTERS[i + 1..] {
                assert_ne!(v, w, "duplicate variant mapping");
            }
        }
    }

    #[test]
    fn metric_table_is_duplicate_free() {
        for (i, (v, l)) in METRIC_IDS.iter().enumerate() {
            for (w, m) in &METRIC_IDS[i + 1..] {
                assert_ne!(v, w, "duplicate metric variant mapping");
                assert_ne!(l, m, "duplicate snapshot label");
            }
        }
    }
}
