//! Fixture tests: each rule fires exactly once on its known-bad file
//! (presented under a virtual in-scope path), and an inline `allow()`
//! directive silences the finding and shows up in the suppression ledger.

use stsl_audit::rules::{
    METRIC_FILE, REPORT_FILE, RULE_COUNTER, RULE_DETERMINISM, RULE_FORBID_UNSAFE, RULE_METRIC,
    RULE_NO_PANIC, RULE_UNUSED_SUPPRESSION, TRACE_FILE,
};
use stsl_audit::{audit, AuditReport, SourceFile};

fn fixture(path: &str, name: &str) -> SourceFile {
    let on_disk = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        path: path.to_string(),
        text: std::fs::read_to_string(&on_disk)
            .unwrap_or_else(|e| panic!("fixture {}: {e}", on_disk.display())),
    }
}

fn assert_fires_once(report: &AuditReport, rule: &str) {
    assert_eq!(
        report.findings.len(),
        1,
        "expected exactly one finding, got: {:#?}",
        report.findings
    );
    assert_eq!(report.findings[0].rule, rule);
    assert!(report.suppressions.is_empty());
}

fn assert_silenced(report: &AuditReport, rule: &str) {
    assert!(
        report.findings.is_empty(),
        "allow() should silence the finding: {:#?}",
        report.findings
    );
    assert_eq!(report.suppressions.len(), 1, "the allow must be counted");
    assert_eq!(report.suppressions[0].rule, rule);
    assert_eq!(report.suppressions[0].count, 1);
    assert!(!report.suppressions[0].reason.is_empty());
}

#[test]
fn r1_determinism_fires_exactly_once() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r1_bad.rs")]);
    assert_fires_once(&report, RULE_DETERMINISM);
    assert!(report.findings[0].message.contains("HashMap"));
}

#[test]
fn r1_cpu_sniffing_fires_exactly_once() {
    // Kernel selection must go through the Backend seam, not host CPUID:
    // is_x86_feature_detected! forks numerics by machine, which breaks
    // cross-host reproducibility even when each host is self-consistent.
    let report = audit(&[fixture("crates/tensor/src/fixture.rs", "r1_cpu_sniff.rs")]);
    assert_fires_once(&report, RULE_DETERMINISM);
    assert!(report.findings[0].message.contains("Backend seam"));
}

#[test]
fn r1_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r1_allowed.rs")]);
    assert_silenced(&report, RULE_DETERMINISM);
}

#[test]
fn r2_no_panic_fires_exactly_once() {
    let report = audit(&[fixture("crates/split/src/protocol.rs", "r2_bad.rs")]);
    assert_fires_once(&report, RULE_NO_PANIC);
    assert!(report.findings[0].message.contains("unwrap"));
}

#[test]
fn r2_standalone_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/split/src/protocol.rs", "r2_allowed.rs")]);
    assert_silenced(&report, RULE_NO_PANIC);
}

#[test]
fn r2_fixture_is_clean_outside_r2_scope() {
    // The same bytes under a non-R2 path produce nothing: scope is part
    // of the rule, not the content.
    let report = audit(&[fixture("crates/split/src/server.rs", "r2_bad.rs")]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r3_missing_counter_fires_exactly_once() {
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_missing_counter.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs"),
    ]);
    assert_fires_once(&report, RULE_COUNTER);
    assert!(
        report.findings[0].message.contains("rollbacks"),
        "finding should name the missing counter: {}",
        report.findings[0]
    );
    assert_eq!(report.findings[0].path, REPORT_FILE);
}

#[test]
fn r3_complete_contract_is_clean() {
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_good.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs"),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r3_allow_silences_and_is_counted() {
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_missing_counter_allowed.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs"),
    ]);
    assert_silenced(&report, RULE_COUNTER);
}

#[test]
fn r3_unemitted_variant_is_caught() {
    // Drop the Rollback emission from the emit fixture: the variant is
    // declared and mapped but never recorded.
    let mut emit = fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs");
    emit.text = emit
        .text
        .lines()
        .filter(|l| !l.contains("TraceKind::Rollback"))
        .collect::<Vec<_>>()
        .join("\n");
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_good.rs"),
        emit,
    ]);
    assert_fires_once(&report, RULE_COUNTER);
    assert!(report.findings[0].message.contains("never recorded"));
}

#[test]
fn r5_complete_contract_is_clean() {
    let report = audit(&[
        fixture(METRIC_FILE, "r5_registry_good.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs"),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r5_unexported_label_fires_exactly_once() {
    let report = audit(&[
        fixture(METRIC_FILE, "r5_registry_missing_label.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs"),
    ]);
    assert_fires_once(&report, RULE_METRIC);
    assert!(
        report.findings[0].message.contains("service_time_us"),
        "finding should name the missing label: {}",
        report.findings[0]
    );
    assert_eq!(report.findings[0].path, METRIC_FILE);
}

#[test]
fn r5_allow_silences_and_is_counted() {
    let report = audit(&[
        fixture(METRIC_FILE, "r5_registry_missing_label_allowed.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs"),
    ]);
    assert_silenced(&report, RULE_METRIC);
}

#[test]
fn r5_unrecorded_metric_is_caught() {
    // Drop the GradientStaleness recording from the emit fixture: the
    // metric is declared and exported but nobody feeds it.
    let mut emit = fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs");
    emit.text = emit
        .text
        .lines()
        .filter(|l| !l.contains("MetricId::GradientStaleness"))
        .collect::<Vec<_>>()
        .join("\n");
    let report = audit(&[fixture(METRIC_FILE, "r5_registry_good.rs"), emit]);
    assert_fires_once(&report, RULE_METRIC);
    assert!(report.findings[0].message.contains("never recorded"));
}

#[test]
fn r4_missing_forbid_fires_exactly_once() {
    let report = audit(&[fixture("crates/demo/src/lib.rs", "r4_bad.rs")]);
    assert_fires_once(&report, RULE_FORBID_UNSAFE);
}

#[test]
fn r4_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/demo/src/lib.rs", "r4_allowed.rs")]);
    assert_silenced(&report, RULE_FORBID_UNSAFE);
}

#[test]
fn unused_allow_is_itself_a_finding() {
    // The allowed fixture under an out-of-scope path: nothing fires, so
    // the directive is dead weight and must be flagged.
    let report = audit(&[fixture("crates/audit/src/fixture.rs", "r1_allowed.rs")]);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].rule, RULE_UNUSED_SUPPRESSION);
    assert!(report.suppressions.is_empty());
}
