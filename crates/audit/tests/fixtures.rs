//! Fixture tests: each rule fires exactly once on its known-bad file
//! (presented under a virtual in-scope path), and an inline `allow()`
//! directive silences the finding and shows up in the suppression ledger.

use stsl_audit::rules::{
    METRIC_FILE, REPORT_FILE, RULE_COUNTER, RULE_DETERMINISM, RULE_ENV_READ, RULE_FLOAT_REDUCTION,
    RULE_FORBID_UNSAFE, RULE_METRIC, RULE_PANIC_REACH, RULE_RNG_STREAM, RULE_SUPPRESSION_BUDGET,
    RULE_UNUSED_SUPPRESSION, TRACE_FILE,
};
use stsl_audit::{audit, AuditReport, SourceFile};

fn fixture(path: &str, name: &str) -> SourceFile {
    let on_disk = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        path: path.to_string(),
        text: std::fs::read_to_string(&on_disk)
            .unwrap_or_else(|e| panic!("fixture {}: {e}", on_disk.display())),
    }
}

fn assert_fires_once(report: &AuditReport, rule: &str) {
    assert_eq!(
        report.findings.len(),
        1,
        "expected exactly one finding, got: {:#?}",
        report.findings
    );
    assert_eq!(report.findings[0].rule, rule);
    assert!(report.suppressions.is_empty());
}

fn assert_silenced(report: &AuditReport, rule: &str) {
    assert!(
        report.findings.is_empty(),
        "allow() should silence the finding: {:#?}",
        report.findings
    );
    assert_eq!(report.suppressions.len(), 1, "the allow must be counted");
    assert_eq!(report.suppressions[0].rule, rule);
    assert_eq!(report.suppressions[0].count, 1);
    assert!(!report.suppressions[0].reason.is_empty());
}

#[test]
fn r1_determinism_fires_exactly_once() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r1_bad.rs")]);
    assert_fires_once(&report, RULE_DETERMINISM);
    assert!(report.findings[0].message.contains("HashMap"));
}

#[test]
fn r1_cpu_sniffing_fires_exactly_once() {
    // Kernel selection must go through the Backend seam, not host CPUID:
    // is_x86_feature_detected! forks numerics by machine, which breaks
    // cross-host reproducibility even when each host is self-consistent.
    let report = audit(&[fixture("crates/tensor/src/fixture.rs", "r1_cpu_sniff.rs")]);
    assert_fires_once(&report, RULE_DETERMINISM);
    assert!(report.findings[0].message.contains("Backend seam"));
}

#[test]
fn r1_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r1_allowed.rs")]);
    assert_silenced(&report, RULE_DETERMINISM);
}

#[test]
fn r6_entry_file_panic_fires_exactly_once() {
    // The panic sits in the entry function itself: a one-hop chain.
    let report = audit(&[fixture("crates/split/src/protocol.rs", "r6_bad.rs")]);
    assert_fires_once(&report, RULE_PANIC_REACH);
    assert!(report.findings[0].message.contains("unwrap"));
    assert_eq!(
        report.findings[0].chain.len(),
        1,
        "a direct entry-file panic has a one-hop chain: {:#?}",
        report.findings[0].chain
    );
    assert_eq!(report.findings[0].chain[0].name, "first_byte");
}

#[test]
fn r6_interprocedural_panic_carries_the_full_chain() {
    // The entry file is panic-free; the abort lives one call away in
    // another file. Only the call graph connects the two — and the
    // finding must spell out the entry → panic chain.
    let report = audit(&[
        fixture("crates/split/src/protocol.rs", "r6_entry.rs"),
        fixture("crates/split/src/framing.rs", "r6_helper.rs"),
    ]);
    assert_fires_once(&report, RULE_PANIC_REACH);
    let f = &report.findings[0];
    assert_eq!(f.path, "crates/split/src/framing.rs", "{f:#?}");
    assert!(
        f.message
            .contains("reachable from untrusted-input entry `decode_header`"),
        "the finding must name the entry point: {}",
        f.message
    );
    assert_eq!(f.chain.len(), 2, "entry → helper: {:#?}", f.chain);
    assert_eq!(f.chain[0].name, "decode_header");
    assert_eq!(f.chain[0].path, "crates/split/src/protocol.rs");
    assert_eq!(f.chain[1].name, "first_byte");
    assert_eq!(f.chain[1].path, "crates/split/src/framing.rs");
}

#[test]
fn r6_standalone_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/split/src/protocol.rs", "r6_allowed.rs")]);
    assert_silenced(&report, RULE_PANIC_REACH);
}

#[test]
fn r6_interprocedural_allow_lands_at_the_panic_site() {
    // Suppression happens where the panic lives, not at the entry.
    let report = audit(&[
        fixture("crates/split/src/protocol.rs", "r6_entry.rs"),
        fixture("crates/split/src/framing.rs", "r6_helper_allowed.rs"),
    ]);
    assert_silenced(&report, RULE_PANIC_REACH);
    assert_eq!(report.suppressions[0].path, "crates/split/src/framing.rs");
}

#[test]
fn r6_unreachable_panic_in_domain_is_clean() {
    // The same bytes in a domain file no entry point reaches produce
    // nothing: reachability is part of the rule, not the content.
    let report = audit(&[fixture("crates/split/src/server.rs", "r6_bad.rs")]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r6_fixture_is_clean_outside_the_domain() {
    let report = audit(&[fixture("crates/bench/src/fixture.rs", "r6_bad.rs")]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r7_float_reduction_fires_exactly_once() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r7_bad.rs")]);
    assert_fires_once(&report, RULE_FLOAT_REDUCTION);
    assert!(report.findings[0].message.contains("kernel seam"));
}

#[test]
fn r7_fixture_is_clean_inside_the_seam() {
    // The identical reduction under the sanctioned kernel-seam path is
    // exactly where such code belongs.
    let report = audit(&[fixture("crates/tensor/src/ops/fixture.rs", "r7_bad.rs")]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r7_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r7_allowed.rs")]);
    assert_silenced(&report, RULE_FLOAT_REDUCTION);
}

#[test]
fn r8_direct_rng_construction_fires_exactly_once() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r8_bad.rs")]);
    assert_fires_once(&report, RULE_RNG_STREAM);
    assert!(report.findings[0].message.contains("seed_from_u64"));
}

#[test]
fn r8_seed_aliasing_fires_exactly_once() {
    // Two rng_from_seed calls on the same seed expression: the second
    // one aliases the first stream and is the finding.
    let report = audit(&[fixture("crates/simnet/src/fixture.rs", "r8_alias.rs")]);
    assert_fires_once(&report, RULE_RNG_STREAM);
    assert!(
        report.findings[0].message.contains("alias"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn r8_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r8_allowed.rs")]);
    assert_silenced(&report, RULE_RNG_STREAM);
}

#[test]
fn r9_env_read_fires_exactly_once() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r9_bad.rs")]);
    assert_fires_once(&report, RULE_ENV_READ);
    assert!(report.findings[0].message.contains("environment read"));
}

#[test]
fn r9_fixture_is_clean_at_a_sanctioned_site() {
    let report = audit(&[fixture("crates/audit/src/main.rs", "r9_bad.rs")]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r9_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/split/src/fixture.rs", "r9_allowed.rs")]);
    assert_silenced(&report, RULE_ENV_READ);
}

#[test]
fn r3_missing_counter_fires_exactly_once() {
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_missing_counter.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs"),
    ]);
    assert_fires_once(&report, RULE_COUNTER);
    assert!(
        report.findings[0].message.contains("rollbacks"),
        "finding should name the missing counter: {}",
        report.findings[0]
    );
    assert_eq!(report.findings[0].path, REPORT_FILE);
}

#[test]
fn r3_complete_contract_is_clean() {
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_good.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs"),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r3_allow_silences_and_is_counted() {
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_missing_counter_allowed.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs"),
    ]);
    assert_silenced(&report, RULE_COUNTER);
}

#[test]
fn r3_unemitted_variant_is_caught() {
    // Drop the Rollback emission from the emit fixture: the variant is
    // declared and mapped but never recorded.
    let mut emit = fixture("crates/split/src/fixture_emit.rs", "r3_emit.rs");
    emit.text = emit
        .text
        .lines()
        .filter(|l| !l.contains("TraceKind::Rollback"))
        .collect::<Vec<_>>()
        .join("\n");
    let report = audit(&[
        fixture(TRACE_FILE, "r3_trace.rs"),
        fixture(REPORT_FILE, "r3_report_good.rs"),
        emit,
    ]);
    assert_fires_once(&report, RULE_COUNTER);
    assert!(report.findings[0].message.contains("never recorded"));
}

#[test]
fn r5_complete_contract_is_clean() {
    let report = audit(&[
        fixture(METRIC_FILE, "r5_registry_good.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs"),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
}

#[test]
fn r5_unexported_label_fires_exactly_once() {
    let report = audit(&[
        fixture(METRIC_FILE, "r5_registry_missing_label.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs"),
    ]);
    assert_fires_once(&report, RULE_METRIC);
    assert!(
        report.findings[0].message.contains("service_time_us"),
        "finding should name the missing label: {}",
        report.findings[0]
    );
    assert_eq!(report.findings[0].path, METRIC_FILE);
}

#[test]
fn r5_allow_silences_and_is_counted() {
    let report = audit(&[
        fixture(METRIC_FILE, "r5_registry_missing_label_allowed.rs"),
        fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs"),
    ]);
    assert_silenced(&report, RULE_METRIC);
}

#[test]
fn r5_unrecorded_metric_is_caught() {
    // Drop the GradientStaleness recording from the emit fixture: the
    // metric is declared and exported but nobody feeds it.
    let mut emit = fixture("crates/split/src/fixture_emit.rs", "r5_emit.rs");
    emit.text = emit
        .text
        .lines()
        .filter(|l| !l.contains("MetricId::GradientStaleness"))
        .collect::<Vec<_>>()
        .join("\n");
    let report = audit(&[fixture(METRIC_FILE, "r5_registry_good.rs"), emit]);
    assert_fires_once(&report, RULE_METRIC);
    assert!(report.findings[0].message.contains("never recorded"));
}

#[test]
fn r4_missing_forbid_fires_exactly_once() {
    let report = audit(&[fixture("crates/demo/src/lib.rs", "r4_bad.rs")]);
    assert_fires_once(&report, RULE_FORBID_UNSAFE);
}

#[test]
fn r4_allow_silences_and_is_counted() {
    let report = audit(&[fixture("crates/demo/src/lib.rs", "r4_allowed.rs")]);
    assert_silenced(&report, RULE_FORBID_UNSAFE);
}

#[test]
fn unused_allow_is_itself_a_finding_naming_the_rule() {
    // The allowed fixture under an out-of-scope path: nothing fires, so
    // the directive is dead weight and must be flagged — by rule id, so
    // the author knows which directive to delete.
    let report = audit(&[fixture("crates/audit/src/fixture.rs", "r1_allowed.rs")]);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].rule, RULE_UNUSED_SUPPRESSION);
    assert!(
        report.findings[0].message.contains("allow(determinism)"),
        "the report must name the unused rule id: {}",
        report.findings[0].message
    );
    assert!(report.suppressions.is_empty());
}

#[test]
fn cfg_test_items_are_rule_exempt() {
    // The same violations inside a `#[cfg(test)]` module are test
    // scaffolding, not shipped behaviour: the audit must not fire.
    let text = "pub fn shipped() -> u8 { 0 }\n\
                #[cfg(test)]\n\
                mod tests {\n\
                    use std::collections::HashMap;\n\
                    #[test]\n\
                    fn t() {\n\
                        let mut m = HashMap::new();\n\
                        m.insert(1u8, [0u8; 1][0]);\n\
                        let s: f32 = [1.0f32].iter().sum::<f32>();\n\
                        assert!(s > 0.0);\n\
                    }\n\
                }\n";
    let report = audit(&[SourceFile {
        path: "crates/split/src/fixture.rs".to_string(),
        text: text.to_string(),
    }]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);

    // Moving the HashMap out of the test module makes it real code again.
    let leaked = format!("use std::collections::HashMap;\n{text}");
    let report = audit(&[SourceFile {
        path: "crates/split/src/fixture.rs".to_string(),
        text: leaked,
    }]);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].rule, RULE_DETERMINISM);
}

#[test]
fn per_rule_suppression_budget_is_enforced() {
    // Three used determinism suppressions against a budget of two: the
    // directive past the budget is itself a finding.
    let report = audit(&[
        fixture("crates/split/src/fixture_a.rs", "r1_allowed.rs"),
        fixture("crates/split/src/fixture_b.rs", "r1_allowed.rs"),
        fixture("crates/simnet/src/fixture_c.rs", "r1_allowed.rs"),
    ]);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].rule, RULE_SUPPRESSION_BUDGET);
    assert!(
        report.findings[0].message.contains("budget of 2"),
        "{}",
        report.findings[0].message
    );
    assert_eq!(report.suppressions.len(), 3, "every allow is still counted");
}

#[test]
fn suppressions_within_budget_are_not_flagged() {
    let report = audit(&[
        fixture("crates/split/src/fixture_a.rs", "r1_allowed.rs"),
        fixture("crates/split/src/fixture_b.rs", "r1_allowed.rs"),
    ]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.suppressions.len(), 2);
}
