//! Fixture: the same R1 violation as `r1_bad.rs`, silenced by an inline
//! suppression directive on the offending line.

pub fn count_by_key(keys: &[u32]) -> usize {
    let mut seen = std::collections::HashMap::new(); // stsl-audit: allow(determinism, reason = "fixture exercising the suppression path")
    for k in keys {
        *seen.entry(k).or_insert(0usize) += 1;
    }
    seen.len()
}
