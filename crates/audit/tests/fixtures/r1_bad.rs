//! Fixture: one R1 (determinism) violation — a `HashMap` in a
//! deterministic crate. Presented to the engine under a virtual
//! in-scope path; never compiled.

pub fn count_by_key(keys: &[u32]) -> usize {
    let mut seen = std::collections::HashMap::new();
    for k in keys {
        *seen.entry(k).or_insert(0usize) += 1;
    }
    seen.len()
}
