//! Fixture: one R1 (determinism) violation — runtime CPU-feature
//! sniffing in a deterministic crate, which would fork numeric kernel
//! selection by host instead of going through the Backend seam.
//! Presented to the engine under a virtual in-scope path; never compiled.

pub fn pick_kernel() -> &'static str {
    if std::arch::is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "scalar"
    }
}
