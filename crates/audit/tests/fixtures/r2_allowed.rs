//! Fixture: the same R2 violation as `r2_bad.rs`, silenced by a
//! standalone suppression directive on the line above.

pub fn first_byte(bytes: &[u8]) -> u8 {
    // stsl-audit: allow(no-panic, reason = "fixture exercising the standalone-directive path")
    *bytes.first().unwrap()
}
