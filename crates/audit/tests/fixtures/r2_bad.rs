//! Fixture: one R2 (no-panic) violation — an `unwrap()` in a file that
//! parses untrusted bytes. Presented under a virtual R2 path; never
//! compiled.

pub fn first_byte(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}
