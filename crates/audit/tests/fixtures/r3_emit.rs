//! Fixture: non-test code that records every `TraceKind` variant and
//! reads every counter, so the R3 liveness checks see both sides in use.
//! Never compiled.

pub fn emit_all(sink: &mut Vec<TraceKind>) {
    sink.push(TraceKind::Arrival);
    sink.push(TraceKind::ServiceStart);
    sink.push(TraceKind::GradientDelivered);
    sink.push(TraceKind::SchedulerDrop);
    sink.push(TraceKind::NetworkDrop);
    sink.push(TraceKind::Retransmit);
    sink.push(TraceKind::RetryExhausted);
    sink.push(TraceKind::ClientCrash);
    sink.push(TraceKind::ClientRecover);
    sink.push(TraceKind::CheckpointSave);
    sink.push(TraceKind::CheckpointRestore);
    sink.push(TraceKind::PayloadCorrupted);
    sink.push(TraceKind::CorruptRejected);
    sink.push(TraceKind::AnomalyRejected);
    sink.push(TraceKind::Quarantine);
    sink.push(TraceKind::QuarantineRelease);
    sink.push(TraceKind::QuarantineDrop);
    sink.push(TraceKind::Rollback);
    sink.push(TraceKind::SnapshotEmit);
    sink.push(TraceKind::JournalDrop);
    sink.push(TraceKind::ClientJoin);
    sink.push(TraceKind::ClientLeave);
    sink.push(TraceKind::ClientRejoin);
    sink.push(TraceKind::IngressShed);
    sink.push(TraceKind::BreakerTrip);
    sink.push(TraceKind::DeadlinePartialApply);
    sink.push(TraceKind::AttackInjected);
    sink.push(TraceKind::RobustApply);
    sink.push(TraceKind::RobustOutlier);
    sink.push(TraceKind::CohortStep);
}

pub fn read_all(r: &AsyncReport, c: &CommReport, f: &FleetReport) -> u64 {
    c.uplink_messages
        + c.downlink_messages
        + f.cohort_steps
        + r.served_per_client.len() as u64
        + r.scheduler_drops
        + r.network_drops
        + r.retransmits
        + r.retry_exhausted
        + r.crash_events
        + r.recovery_events
        + r.checkpoint_saves
        + r.checkpoint_restores
        + r.corrupted_payloads
        + r.corrupted_rejected
        + r.anomalies_rejected
        + r.quarantines
        + r.quarantine_releases
        + r.quarantine_drops
        + r.rollbacks
        + r.snapshots_emitted
        + r.journal_dropped
        + r.clients_joined
        + r.clients_departed
        + r.rejoins
        + r.batches_shed
        + r.breaker_trips
        + r.deadline_partial_applies
        + r.attacks_injected
        + r.robust_applies
        + r.robust_outliers
}
