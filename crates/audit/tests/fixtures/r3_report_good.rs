//! Fixture: report structs carrying every counter the accounting table
//! maps. The uplink/downlink message counters live in `CommReport` and
//! the cohort-step counter in `FleetReport` to exercise the merged
//! multi-struct lookup. Never compiled.

pub struct AsyncReport {
    pub served_per_client: Vec<u64>,
    pub scheduler_drops: u64,
    pub network_drops: u64,
    pub retransmits: u64,
    pub retry_exhausted: u64,
    pub crash_events: u64,
    pub recovery_events: u64,
    pub checkpoint_saves: u64,
    pub checkpoint_restores: u64,
    pub corrupted_payloads: u64,
    pub corrupted_rejected: u64,
    pub anomalies_rejected: u64,
    pub quarantines: u64,
    pub quarantine_releases: u64,
    pub quarantine_drops: u64,
    pub rollbacks: u64,
    pub snapshots_emitted: u64,
    pub journal_dropped: u64,
    pub clients_joined: u64,
    pub clients_departed: u64,
    pub rejoins: u64,
    pub batches_shed: u64,
    pub breaker_trips: u64,
    pub deadline_partial_applies: u64,
    pub attacks_injected: u64,
    pub robust_applies: u64,
    pub robust_outliers: u64,
}

pub struct CommReport {
    pub uplink_messages: u64,
    pub downlink_messages: u64,
}

pub struct FleetReport {
    pub cohort_steps: u64,
}
