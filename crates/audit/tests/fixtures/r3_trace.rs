//! Fixture: a `TraceKind` enum carrying every variant the accounting
//! table maps. Presented under the virtual trace-file path; never
//! compiled.

pub enum TraceKind {
    Arrival,
    ServiceStart,
    GradientDelivered,
    SchedulerDrop,
    NetworkDrop,
    Retransmit,
    RetryExhausted,
    ClientCrash,
    ClientRecover,
    CheckpointSave,
    CheckpointRestore,
    PayloadCorrupted,
    CorruptRejected,
    AnomalyRejected,
    Quarantine,
    QuarantineRelease,
    QuarantineDrop,
    Rollback,
    SnapshotEmit,
    JournalDrop,
    ClientJoin,
    ClientLeave,
    ClientRejoin,
    IngressShed,
    BreakerTrip,
    DeadlinePartialApply,
}
