//! Fixture: the same R4 violation as `r4_bad.rs`, silenced by a
//! standalone directive targeting the first code line (where the finding
//! anchors).

// stsl-audit: allow(forbid-unsafe, reason = "fixture exercising suppression of a crate-level finding")
pub fn nothing() {}
