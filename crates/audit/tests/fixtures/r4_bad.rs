//! Fixture: an R4 (forbid-unsafe) violation — a crate root with no
//! `#![forbid(unsafe_code)]`. Presented under a virtual `lib.rs` path;
//! never compiled.

pub fn nothing() {}
