//! Fixture: non-test code that records every `MetricId`, so the R5
//! liveness check sees each metric actually fed. Never compiled.

pub fn record_all(hub: &mut TelemetryHub) {
    hub.record(MetricId::UplinkLatency, 0, 1);
    hub.record(MetricId::DownlinkLatency, 0, 1);
    hub.record(MetricId::QueueDepth, 0, 1);
    hub.record(MetricId::GradientStaleness, 0, 1);
    hub.record(MetricId::ServiceTime, 0, 1);
    hub.record(MetricId::MembershipSize, 0, 1);
    hub.record(MetricId::ShedRate, 0, 1);
    hub.record(MetricId::RejectedUpdateRate, 0, 1);
    hub.record(MetricId::TrimFraction, 0, 1);
    hub.record(MetricId::CohortSize, 0, 1);
}
