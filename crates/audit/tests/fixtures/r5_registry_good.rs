//! Fixture: a registry exporting every metric the R5 table maps, shaped
//! like the real `crates/telemetry/src/registry.rs`. Never compiled.

pub enum MetricId {
    UplinkLatency,
    DownlinkLatency,
    QueueDepth,
    GradientStaleness,
    ServiceTime,
    MembershipSize,
    ShedRate,
    RejectedUpdateRate,
    TrimFraction,
    CohortSize,
}

impl MetricId {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricId::UplinkLatency => "uplink_latency_us",
            MetricId::DownlinkLatency => "downlink_latency_us",
            MetricId::QueueDepth => "queue_depth",
            MetricId::GradientStaleness => "gradient_staleness_us",
            MetricId::ServiceTime => "service_time_us",
            MetricId::MembershipSize => "membership_size",
            MetricId::ShedRate => "shed_rate",
            MetricId::RejectedUpdateRate => "rejected_update_rate",
            MetricId::TrimFraction => "trim_fraction",
            MetricId::CohortSize => "cohort_size",
        }
    }
}
