//! Fixture: like `r5_registry_missing_label.rs` but the finding is
//! silenced by a directive on the `ServiceTime` variant line, where the
//! missing-label finding anchors. Never compiled.

pub enum MetricId {
    UplinkLatency,
    DownlinkLatency,
    QueueDepth,
    GradientStaleness,
    ServiceTime, // stsl-audit: allow(metric-accounting, reason = "fixture exercising suppression of a metric finding")
    MembershipSize,
    ShedRate,
    RejectedUpdateRate,
    TrimFraction,
    CohortSize,
}

impl MetricId {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricId::UplinkLatency => "uplink_latency_us",
            MetricId::DownlinkLatency => "downlink_latency_us",
            MetricId::QueueDepth => "queue_depth",
            MetricId::GradientStaleness => "gradient_staleness_us",
            MetricId::ServiceTime => "unlabeled",
            MetricId::MembershipSize => "membership_size",
            MetricId::ShedRate => "shed_rate",
            MetricId::RejectedUpdateRate => "rejected_update_rate",
            MetricId::TrimFraction => "trim_fraction",
            MetricId::CohortSize => "cohort_size",
        }
    }
}
