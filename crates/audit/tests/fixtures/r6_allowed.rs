//! Fixture: the same R6 violation as `r6_bad.rs`, silenced by a
//! standalone suppression directive on the line above.

pub fn first_byte(bytes: &[u8]) -> u8 {
    // stsl-audit: allow(panic-reachability, reason = "fixture exercising the standalone-directive path")
    *bytes.first().unwrap()
}
