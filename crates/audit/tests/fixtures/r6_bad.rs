//! Fixture: one R6 (panic-reachability) violation — an `unwrap()` in an
//! untrusted-input entry file, so the entry function itself is the whole
//! chain. Presented under a virtual entry path; never compiled.

pub fn first_byte(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}
