//! Fixture: the entry half of the interprocedural R6 pair. The decode
//! path is panic-free here — the abort lives two hops away in
//! `r6_helper.rs`, and only the call graph can see it.

pub fn decode_header(bytes: &[u8]) -> u8 {
    crate::framing::first_byte(bytes)
}
