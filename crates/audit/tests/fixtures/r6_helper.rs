//! Fixture: the helper half of the interprocedural R6 pair. On its own
//! this file is unreachable and clean; paired with `r6_entry.rs` the
//! indexing panic becomes reachable from untrusted input.

pub fn first_byte(bytes: &[u8]) -> u8 {
    bytes[0]
}
