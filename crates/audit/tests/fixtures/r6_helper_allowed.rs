//! Fixture: the interprocedural helper with the reachable panic
//! suppressed at the panic site (the finding lands where the panic
//! lives, not at the entry).

pub fn first_byte(bytes: &[u8]) -> u8 {
    // stsl-audit: allow(panic-reachability, reason = "fixture exercising suppression of an interprocedural finding")
    bytes[0]
}
