//! Fixture: the same R7 violation as `r7_bad.rs`, silenced by a
//! standalone suppression directive on the line above.

pub fn total(xs: &[f32]) -> f32 {
    // stsl-audit: allow(float-reduction, reason = "fixture exercising the suppression path")
    xs.iter().sum::<f32>()
}
