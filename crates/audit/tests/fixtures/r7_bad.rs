//! Fixture: one R7 (float-reduction) violation — a turbofished float
//! sum outside the sanctioned kernel seam. The same bytes under a
//! `crates/tensor/src/ops/` path are clean: the seam is part of the
//! rule, not the content.

pub fn total(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>()
}
