//! Fixture: one R8 (rng-stream) aliasing violation — two RNGs built
//! from the same seed expression walk the same stream. The second
//! construction is the finding.

pub fn aliased_pair(seed: u64) -> (StdRng, StdRng) {
    let a = rng_from_seed(seed);
    let b = rng_from_seed(seed);
    (a, b)
}
