//! Fixture: the same R8 violation as `r8_bad.rs`, silenced by a
//! standalone suppression directive on the line above.

pub fn make_rng(seed: u64) -> rand::rngs::StdRng {
    // stsl-audit: allow(rng-stream, reason = "fixture exercising the suppression path")
    rand::rngs::StdRng::seed_from_u64(seed)
}
