//! Fixture: one R8 (rng-stream) violation — direct RNG construction
//! outside the seeded root file.

pub fn make_rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}
