//! Fixture: the same R9 violation as `r9_bad.rs`, silenced by a
//! standalone suppression directive on the line above.

pub fn backend_override() -> Option<String> {
    // stsl-audit: allow(env-read, reason = "fixture exercising the suppression path")
    std::env::var("STSL_FIXTURE_BACKEND").ok()
}
