//! Fixture: one R9 (env-read) violation — an environment read outside
//! the sanctioned config/backend-selection files. The same bytes under
//! a sanctioned path are clean.

pub fn backend_override() -> Option<String> {
    std::env::var("STSL_FIXTURE_BACKEND").ok()
}
