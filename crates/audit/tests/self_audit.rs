//! The audit run against the real tree, plus regression tripwires: the
//! workspace must be clean, and undoing a hardening fix or deleting a
//! counter must make the auditor fire again (the linter is only worth
//! its keep if it catches the revert).

use std::collections::BTreeMap;
use stsl_audit::rules::{
    suppression_budget, METRIC_FILE, REPORT_FILE, RULE_COUNTER, RULE_ENV_READ,
    RULE_FLOAT_REDUCTION, RULE_METRIC, RULE_PANIC_REACH, RULE_RNG_STREAM,
};
use stsl_audit::{audit, collect_workspace_sources, find_workspace_root, SourceFile};

fn workspace_sources() -> Vec<SourceFile> {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR");
    collect_workspace_sources(&root).expect("workspace sources readable")
}

/// Appends `code` to the named real file, panicking if it is missing.
fn append_to(files: &mut [SourceFile], path: &str, code: &str) {
    let f = files
        .iter_mut()
        .find(|f| f.path == path)
        .unwrap_or_else(|| panic!("{path} in workspace"));
    f.text.push_str(code);
}

#[test]
fn workspace_is_clean_within_per_rule_suppression_budgets() {
    let report = audit(&workspace_sources());
    assert!(
        report.findings.is_empty(),
        "the tree must audit clean:\n{:#?}",
        report.findings
    );
    // The engine already emits suppression-budget findings past the
    // budget; re-checking per rule here keeps the invariant visible even
    // if that meta-rule is ever weakened.
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for s in &report.suppressions {
        assert!(!s.reason.is_empty());
        *by_rule.entry(s.rule.as_str()).or_default() += s.count.max(1);
    }
    for (rule, n) in by_rule {
        assert!(
            n <= suppression_budget(rule),
            "{n} used allow({rule}) directives exceed the reviewed budget of {}",
            suppression_budget(rule)
        );
    }
    assert!(report.files_scanned > 50, "the walk found the whole tree");
}

#[test]
fn deleting_an_async_report_counter_is_caught() {
    let mut files = workspace_sources();
    let report_rs = files
        .iter_mut()
        .find(|f| f.path == REPORT_FILE)
        .expect("report.rs in workspace");
    let before = report_rs.text.len();
    report_rs.text = report_rs
        .text
        .lines()
        .filter(|l| !l.trim_start().starts_with("pub rollbacks:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report_rs.text.len() < before,
        "the field should exist to delete"
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_COUNTER && f.message.contains("rollbacks")),
        "deleting the rollbacks counter must fire counter-accounting:\n{:#?}",
        report.findings
    );
}

#[test]
fn deleting_a_telemetry_counter_is_caught() {
    // Drop the journal_dropped counter from the real report.rs: the
    // JournalDrop trace kind becomes unaccounted and R3 must fire.
    let mut files = workspace_sources();
    let report_rs = files
        .iter_mut()
        .find(|f| f.path == REPORT_FILE)
        .expect("report.rs in workspace");
    let before = report_rs.text.len();
    report_rs.text = report_rs
        .text
        .lines()
        .filter(|l| !l.trim_start().starts_with("pub journal_dropped:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report_rs.text.len() < before,
        "the field should exist to delete"
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_COUNTER && f.message.contains("journal_dropped")),
        "deleting the journal_dropped counter must fire counter-accounting:\n{:#?}",
        report.findings
    );
}

#[test]
fn dropping_a_metric_from_the_snapshot_export_is_caught() {
    // Rename the staleness label in the real registry: the metric silently
    // vanishes from every exported snapshot, and R5 must fire.
    let mut files = workspace_sources();
    let registry = files
        .iter_mut()
        .find(|f| f.path == METRIC_FILE)
        .expect("registry.rs in workspace");
    let patched = registry
        .text
        .replace("\"gradient_staleness_us\"", "\"renamed_metric\"");
    assert_ne!(patched, registry.text, "the label should exist to break");
    registry.text = patched;

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_METRIC && f.message.contains("gradient_staleness_us")),
        "un-exporting a metric must fire metric-accounting:\n{:#?}",
        report.findings
    );
}

#[test]
fn reintroducing_a_panic_site_in_an_entry_file_is_caught() {
    let mut files = workspace_sources();
    // The shape of the pre-hardening code: direct indexing into an
    // untrusted record, right in the parser entry file.
    append_to(
        &mut files,
        "crates/data/src/cifar.rs",
        "\npub fn regressed(rec: &[u8]) -> u8 {\n    rec[0]\n}\n",
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_PANIC_REACH && f.path.ends_with("cifar.rs")),
        "reintroduced indexing must fire panic-reachability:\n{:#?}",
        report.findings
    );
}

#[test]
fn reintroducing_an_interprocedural_panic_is_caught_with_its_chain() {
    // The panic goes into server.rs (not an entry file); a new protocol
    // entry calls it. Per-file scanning cannot see this — only the call
    // graph connects the wire decode to the abort two files away.
    let mut files = workspace_sources();
    append_to(
        &mut files,
        "crates/split/src/server.rs",
        "\npub fn regressed_poke(b: &[u8]) -> u8 {\n    b[0]\n}\n",
    );
    append_to(
        &mut files,
        "crates/split/src/protocol.rs",
        "\npub fn regressed_entry(b: &[u8]) -> u8 {\n    crate::server::regressed_poke(b)\n}\n",
    );

    let report = audit(&files);
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == RULE_PANIC_REACH && f.path.ends_with("server.rs"))
        .unwrap_or_else(|| {
            panic!(
                "reintroduced cross-file panic must fire panic-reachability:\n{:#?}",
                report.findings
            )
        });
    assert!(
        f.message.contains("reachable from untrusted-input entry"),
        "the finding must name the entry point: {}",
        f.message
    );
    assert!(
        f.chain.len() >= 2,
        "the finding must carry the entry → panic chain: {:#?}",
        f.chain
    );
    assert_eq!(f.chain[0].name, "regressed_entry");
    assert!(f.chain[0].path.ends_with("protocol.rs"));
}

#[test]
fn reintroducing_a_float_reduction_outside_the_seam_is_caught() {
    let mut files = workspace_sources();
    append_to(
        &mut files,
        "crates/split/src/scheduler.rs",
        "\npub fn regressed_total(xs: &[f32]) -> f32 {\n    xs.iter().sum::<f32>()\n}\n",
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_FLOAT_REDUCTION && f.path.ends_with("scheduler.rs")),
        "a float sum outside the seam must fire float-reduction:\n{:#?}",
        report.findings
    );
}

#[test]
fn reintroducing_a_direct_rng_construction_is_caught() {
    let mut files = workspace_sources();
    append_to(
        &mut files,
        "crates/simnet/src/fault.rs",
        "\npub fn regressed_rng(seed: u64) -> StdRng {\n    StdRng::seed_from_u64(seed)\n}\n",
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_RNG_STREAM && f.path.ends_with("fault.rs")),
        "bypassing the seeded root must fire rng-stream:\n{:#?}",
        report.findings
    );
}

#[test]
fn reintroducing_an_env_read_is_caught() {
    let mut files = workspace_sources();
    append_to(
        &mut files,
        "crates/telemetry/src/registry.rs",
        "\npub fn regressed_env() -> Option<String> {\n    std::env::var(\"STSL_SNEAKY\").ok()\n}\n",
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_ENV_READ && f.path.ends_with("registry.rs")),
        "an env read outside the sanctioned sites must fire env-read:\n{:#?}",
        report.findings
    );
}
