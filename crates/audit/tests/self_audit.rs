//! The audit run against the real tree, plus regression tripwires: the
//! workspace must be clean, and undoing a hardening fix or deleting a
//! counter must make the auditor fire again (the linter is only worth
//! its keep if it catches the revert).

use stsl_audit::rules::{METRIC_FILE, REPORT_FILE, RULE_COUNTER, RULE_METRIC, RULE_NO_PANIC};
use stsl_audit::{audit, collect_workspace_sources, find_workspace_root, SourceFile};

fn workspace_sources() -> Vec<SourceFile> {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR");
    collect_workspace_sources(&root).expect("workspace sources readable")
}

#[test]
fn workspace_is_clean_with_a_bounded_suppression_budget() {
    let report = audit(&workspace_sources());
    assert!(
        report.findings.is_empty(),
        "the tree must audit clean:\n{:#?}",
        report.findings
    );
    assert!(
        report.suppressions.len() <= 5,
        "suppression budget exceeded ({}); each allow() needs review",
        report.suppressions.len()
    );
    for s in &report.suppressions {
        assert!(!s.reason.is_empty());
    }
    assert!(report.files_scanned > 50, "the walk found the whole tree");
}

#[test]
fn deleting_an_async_report_counter_is_caught() {
    let mut files = workspace_sources();
    let report_rs = files
        .iter_mut()
        .find(|f| f.path == REPORT_FILE)
        .expect("report.rs in workspace");
    let before = report_rs.text.len();
    report_rs.text = report_rs
        .text
        .lines()
        .filter(|l| !l.trim_start().starts_with("pub rollbacks:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report_rs.text.len() < before,
        "the field should exist to delete"
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_COUNTER && f.message.contains("rollbacks")),
        "deleting the rollbacks counter must fire counter-accounting:\n{:#?}",
        report.findings
    );
}

#[test]
fn deleting_a_telemetry_counter_is_caught() {
    // Drop the journal_dropped counter from the real report.rs: the
    // JournalDrop trace kind becomes unaccounted and R3 must fire.
    let mut files = workspace_sources();
    let report_rs = files
        .iter_mut()
        .find(|f| f.path == REPORT_FILE)
        .expect("report.rs in workspace");
    let before = report_rs.text.len();
    report_rs.text = report_rs
        .text
        .lines()
        .filter(|l| !l.trim_start().starts_with("pub journal_dropped:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report_rs.text.len() < before,
        "the field should exist to delete"
    );

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_COUNTER && f.message.contains("journal_dropped")),
        "deleting the journal_dropped counter must fire counter-accounting:\n{:#?}",
        report.findings
    );
}

#[test]
fn dropping_a_metric_from_the_snapshot_export_is_caught() {
    // Rename the staleness label in the real registry: the metric silently
    // vanishes from every exported snapshot, and R5 must fire.
    let mut files = workspace_sources();
    let registry = files
        .iter_mut()
        .find(|f| f.path == METRIC_FILE)
        .expect("registry.rs in workspace");
    let patched = registry
        .text
        .replace("\"gradient_staleness_us\"", "\"renamed_metric\"");
    assert_ne!(patched, registry.text, "the label should exist to break");
    registry.text = patched;

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_METRIC && f.message.contains("gradient_staleness_us")),
        "un-exporting a metric must fire metric-accounting:\n{:#?}",
        report.findings
    );
}

#[test]
fn reintroducing_a_panic_site_is_caught() {
    let mut files = workspace_sources();
    let cifar = files
        .iter_mut()
        .find(|f| f.path == "crates/data/src/cifar.rs")
        .expect("cifar.rs in workspace");
    // The shape of the pre-hardening code: direct indexing into an
    // untrusted record.
    cifar
        .text
        .push_str("\npub fn regressed(rec: &[u8]) -> u8 {\n    rec[0]\n}\n");

    let report = audit(&files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == RULE_NO_PANIC && f.path.ends_with("cifar.rs")),
        "reintroduced indexing must fire no-panic:\n{:#?}",
        report.findings
    );
}
