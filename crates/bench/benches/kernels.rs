//! Micro-benchmarks of the numeric kernels that dominate training time:
//! GEMM, im2col convolution (forward and backward) and max pooling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::ops::conv::{conv2d_backward, conv2d_forward, ConvSpec};
use stsl_tensor::ops::pool::maxpool2d_forward;
use stsl_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = rng_from_seed(0);
        let a = Tensor::randn([n, n], &mut rng);
        let b = Tensor::randn([n, n], &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
    }
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward");
    // The paper CNN's first layer: 3->16 channels on 32x32 (the heaviest
    // per-pixel stage), batch 32.
    for &(name, ic, oc, side) in &[
        ("L1_3to16_32px", 3usize, 16usize, 32usize),
        ("L2_16to32_16px", 16, 32, 16),
    ] {
        let mut rng = rng_from_seed(1);
        let x = Tensor::randn([32, ic, side, side], &mut rng);
        let w = Tensor::he_normal([oc, ic, 3, 3], ic * 9, &mut rng);
        let b = Tensor::zeros([oc]);
        group.bench_function(name, |bench| {
            bench.iter(|| conv2d_forward(&x, &w, &b, ConvSpec::same(3)).unwrap())
        });
    }
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_backward");
    let mut rng = rng_from_seed(2);
    let spec = ConvSpec::same(3);
    let x = Tensor::randn([32, 3, 32, 32], &mut rng);
    let w = Tensor::he_normal([16, 3, 3, 3], 27, &mut rng);
    let b = Tensor::zeros([16]);
    let fwd = conv2d_forward(&x, &w, &b, spec).unwrap();
    let dout = Tensor::randn([32, 16, 32, 32], &mut rng);
    group.bench_function("L1_3to16_32px", |bench| {
        bench.iter(|| conv2d_backward(&dout, &fwd.cols, &w, (32, 3, 32, 32), spec))
    });
    group.finish();
}

fn bench_maxpool(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxpool2d");
    let mut rng = rng_from_seed(3);
    let x = Tensor::randn([32, 16, 32, 32], &mut rng);
    let spec = ConvSpec {
        kh: 2,
        kw: 2,
        stride: 2,
        pad: 0,
    };
    group.bench_function("16ch_32px_batch32", |bench| {
        bench.iter(|| maxpool2d_forward(&x, spec))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv_forward, bench_conv_backward, bench_maxpool
}
criterion_main!(benches);
