//! Benchmarks of the server arrival queue (per scheduling policy) and the
//! underlying discrete-event machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsl_simnet::{
    Direction, EndSystemId, EventQueue, SimDuration, SimNetwork, SimTime, StarTopology,
};
use stsl_split::protocol::{ActivationMsg, BatchId};
use stsl_split::{ArrivalQueue, SchedulingPolicy};
use stsl_tensor::Tensor;

fn msg(from: usize, batch: u32) -> ActivationMsg {
    ActivationMsg {
        from: EndSystemId(from),
        batch_id: BatchId { epoch: 0, batch },
        activations: Tensor::zeros([1, 1, 1, 1]),
        targets: vec![0],
    }
}

fn bench_arrival_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_queue_push_pop_256");
    let policies = [
        ("fifo", SchedulingPolicy::Fifo),
        ("round_robin", SchedulingPolicy::RoundRobin),
        (
            "staleness",
            SchedulingPolicy::StalenessDrop {
                max_age: SimDuration::from_millis(50),
            },
        ),
    ];
    for (name, policy) in policies {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &policy,
            |bench, &policy| {
                bench.iter(|| {
                    let mut q = ArrivalQueue::new(policy, 8);
                    for i in 0..256u32 {
                        q.push(SimTime::from_micros(i as u64), msg(i as usize % 8, i));
                    }
                    let mut served = 0;
                    while q.pop(SimTime::from_millis(1)).0.is_some() {
                        served += 1;
                    }
                    served
                })
            },
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_4096", |bench| {
        bench.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..4096u64 {
                // Pseudo-random times via a multiplicative hash.
                q.schedule(
                    SimTime::from_micros(i.wrapping_mul(2654435761) % 100_000),
                    i,
                );
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            sum
        })
    });
}

fn bench_simnetwork(c: &mut Criterion) {
    c.bench_function("simnetwork_send_recv_1024", |bench| {
        let topology = StarTopology::latency_gradient(8, 1.0, 100.0, 100.0);
        bench.iter(|| {
            let mut net: SimNetwork<u64> = SimNetwork::new(topology.clone(), 7);
            for i in 0..1024u64 {
                net.send(
                    EndSystemId((i % 8) as usize),
                    Direction::Uplink,
                    4096,
                    SimTime::ZERO,
                    i,
                );
            }
            let mut n = 0;
            while net.recv().is_some() {
                n += 1;
            }
            n
        })
    });
}

criterion_group!(
    benches,
    bench_arrival_queue,
    bench_event_queue,
    bench_simnetwork
);
criterion_main!(benches);
