//! End-to-end training-step benchmarks: one split round (client forward →
//! server forward/backward/step → client backward/step) at each cut depth,
//! plus the protocol round-trip for activation/gradient messages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsl_data::SyntheticCifar;
use stsl_split::protocol::{ActivationMsg, BatchId, GradientMsg};
use stsl_split::{CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::Tensor;

fn bench_split_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_round_tiny16");
    group.sample_size(20);
    let train = SyntheticCifar::new(0)
        .difficulty(0.1)
        .generate_sized(64, 16);
    for cut in 0..=3usize {
        let cfg = SplitConfig::tiny(CutPoint(cut), 1).batch_size(16).epochs(1);
        let mut trainer = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        group.bench_with_input(BenchmarkId::new("cut", cut), &cut, |bench, _| {
            bench.iter(|| trainer.run_epoch(0))
        });
    }
    group.finish();
}

fn bench_paper_arch_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_round_paper32");
    group.sample_size(10);
    let train = SyntheticCifar::new(1)
        .difficulty(0.1)
        .generate_sized(32, 32);
    let cfg = SplitConfig::new(CutPoint(1), 1)
        .arch(CnnArch::paper())
        .batch_size(32)
        .epochs(1);
    let mut trainer = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
    group.bench_function("cut1_batch32", |bench| bench.iter(|| trainer.run_epoch(0)));
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    let mut rng = rng_from_seed(2);
    let msg = ActivationMsg {
        from: stsl_simnet_id(),
        batch_id: BatchId { epoch: 0, batch: 0 },
        activations: Tensor::randn([32, 16, 16, 16], &mut rng),
        targets: (0..32).collect(),
    };
    group.bench_function("activation_encode", |bench| bench.iter(|| msg.encode()));
    let encoded = msg.encode();
    group.bench_function("activation_decode", |bench| {
        bench.iter(|| ActivationMsg::decode(encoded.clone()))
    });
    let grad = GradientMsg {
        to: stsl_simnet_id(),
        batch_id: BatchId { epoch: 0, batch: 0 },
        grad: Tensor::randn([32, 16, 16, 16], &mut rng),
    };
    group.bench_function("gradient_encode", |bench| bench.iter(|| grad.encode()));
    group.finish();
}

fn stsl_simnet_id() -> stsl_simnet::EndSystemId {
    stsl_simnet::EndSystemId(0)
}

criterion_group!(
    benches,
    bench_split_round,
    bench_paper_arch_round,
    bench_protocol
);
criterion_main!(benches);
