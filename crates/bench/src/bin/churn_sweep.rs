//! **E13** — churn-resilient membership and server overload control.
//!
//! Two experiments in one binary, both written into `results/churn.json`:
//!
//! 1. **Churn sweep** — a fleet of founding members plus pre-declared
//!    dormant joiners runs a seeded churn arrival process
//!    ([`FaultPlan::churn`]) at increasing turnover. Departing
//!    end-systems have their un-acked batch rewound, rejoin from their
//!    last acked batch with server-seeded warm start, and keep
//!    contributing; final accuracy at 20 % turnover stays within a
//!    couple of points of the churn-free (turnover 0) run.
//! 2. **Overload stress** — a deliberately slow server behind a latency
//!    gradient, run once with admission control (bounded ingress queue +
//!    token buckets) and once without. Shed-off, the queue climbs to the
//!    fleet size; shed-on, depth never exceeds the configured cap and the
//!    overflow is counted as `batches_shed` instead of hiding as queue
//!    wait.
//!
//! Every value derives from simulated time, so the file is bitwise
//! identical for any `STSL_THREADS` (CI diffs the bytes across thread
//! counts); the results envelope therefore omits the thread count.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin churn_sweep
//! cargo run -p stsl-bench --release --bin churn_sweep -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results_deterministic, Args};
use stsl_simnet::{FaultPlan, Link, SimDuration, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, DeadlineConfig, OverloadConfig,
    SchedulingPolicy, SplitConfig,
};

#[derive(Serialize)]
struct ChurnRow {
    turnover: f64,
    shed: bool,
    sim_seconds: f64,
    clients_joined: u64,
    clients_departed: u64,
    rejoins: u64,
    batches_shed: u64,
    breaker_trips: u64,
    deadline_partial_applies: u64,
    checkpoint_restores: u64,
    batches_lost: u64,
    max_queue_depth: usize,
    served_total: u64,
    accuracy: f32,
}

#[derive(Serialize)]
struct OverloadRow {
    shed: bool,
    queue_capacity: usize,
    max_queue_depth: usize,
    batches_shed: u64,
    batches_lost: u64,
    served_total: u64,
    sim_seconds: f64,
    accuracy: f32,
    /// Every 8th ingress-queue depth sample, oldest first — shed-off this
    /// profile climbs toward the fleet size; shed-on it plateaus at the
    /// cap.
    depth_profile: Vec<usize>,
}

#[derive(Serialize)]
struct ChurnSweep {
    data_source: String,
    founding_members: usize,
    joiners: usize,
    turnovers: Vec<f64>,
    horizon_ms: u64,
    /// Accuracy of the turnover-0 shed-on run: the churn-free baseline
    /// the churn rows are compared against.
    baseline_accuracy: f32,
    rows: Vec<ChurnRow>,
    overload: Vec<OverloadRow>,
}

#[allow(clippy::too_many_arguments)]
fn run_churn(
    turnover: f64,
    shed: bool,
    members: usize,
    joiners: usize,
    horizon_ms: u64,
    epochs: usize,
    seed: u64,
    train: &stsl_data::ImageDataset,
    test: &stsl_data::ImageDataset,
) -> ChurnRow {
    let fleet = members + joiners;
    let topology = StarTopology::new(
        (0..fleet)
            .map(|i| Link::wan(3.0 + 2.0 * i as f64, 100.0))
            .collect(),
    );
    let plan = FaultPlan::churn(
        members,
        joiners,
        SimDuration::from_millis(horizon_ms),
        seed ^ 0xC4A2,
        turnover,
    );
    let cfg = SplitConfig::new(CutPoint(1), fleet)
        .arch(CnnArch::tiny())
        .epochs(epochs)
        .batch_size(8)
        .seed(seed);
    let mut trainer = AsyncSplitTrainer::new(
        cfg,
        train,
        topology,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .expect("valid config")
    .with_fault_plan(plan)
    .with_auto_checkpoint(SimDuration::from_millis(50))
    .with_round_deadlines(DeadlineConfig::default());
    if shed {
        trainer = trainer.with_overload_control(OverloadConfig::default());
    }
    let r = trainer.run(test);
    ChurnRow {
        turnover,
        shed,
        sim_seconds: r.sim_seconds,
        clients_joined: r.clients_joined,
        clients_departed: r.clients_departed,
        rejoins: r.rejoins,
        batches_shed: r.batches_shed,
        breaker_trips: r.breaker_trips,
        deadline_partial_applies: r.deadline_partial_applies,
        checkpoint_restores: r.checkpoint_restores,
        batches_lost: r.batches_lost,
        max_queue_depth: r.max_queue_depth,
        served_total: r.served_per_client.iter().sum(),
        accuracy: r.final_accuracy,
    }
}

fn run_overload(
    shed: bool,
    clients: usize,
    epochs: usize,
    seed: u64,
    train: &stsl_data::ImageDataset,
    test: &stsl_data::ImageDataset,
) -> OverloadRow {
    // Staggered arrivals plus a server an order of magnitude slower than
    // the clients: the ingress queue is the bottleneck by construction.
    let topology = StarTopology::latency_gradient(clients, 1.0, 60.0, 100.0);
    let compute = ComputeModel {
        client_batch: SimDuration::from_millis(2),
        server_batch: SimDuration::from_millis(40),
        retry_timeout: SimDuration::from_millis(500),
    };
    let overload = OverloadConfig {
        queue_capacity: 2,
        ..OverloadConfig::default()
    };
    let cfg = SplitConfig::new(CutPoint(1), clients)
        .arch(CnnArch::tiny())
        .epochs(epochs)
        .batch_size(8)
        .seed(seed);
    let mut trainer = AsyncSplitTrainer::new(cfg, train, topology, SchedulingPolicy::Fifo, compute)
        .expect("valid config");
    if shed {
        trainer = trainer.with_overload_control(overload);
    }
    let r = trainer.run(test);
    let depth_profile: Vec<usize> = trainer
        .queue_depth_samples()
        .iter()
        .step_by(8)
        .copied()
        .collect();
    OverloadRow {
        shed,
        queue_capacity: if shed { overload.queue_capacity } else { 0 },
        max_queue_depth: r.max_queue_depth,
        batches_shed: r.batches_shed,
        batches_lost: r.batches_lost,
        served_total: r.served_per_client.iter().sum(),
        sim_seconds: r.sim_seconds,
        accuracy: r.final_accuracy,
        depth_profile,
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let members = args.get_usize("members", 6);
    let joiners = args.get_usize("joiners", 2);
    let seed = args.get_u64("seed", 43);
    let epochs = args.get_usize("epochs", if quick { 2 } else { 4 });
    let train_n = args.get_usize("samples", if quick { 240 } else { 640 });
    let horizon_ms = args.get_u64("horizon-ms", if quick { 400 } else { 1600 });
    let turnovers: Vec<f64> = if quick {
        vec![0.0, 0.2]
    } else {
        vec![0.0, 0.2, 0.5]
    };

    let difficulty = args.get_f32("difficulty", 0.12);
    let (train, test, source) = load_data(train_n, 160, 16, seed, difficulty);
    println!(
        "E13 churn sweep — {} data, {} founding members + {} joiners, epochs {}, churn horizon {} ms",
        source, members, joiners, epochs, horizon_ms
    );

    let mut rows = Vec::new();
    let mut baseline_accuracy = 0.0f32;
    for &turnover in &turnovers {
        for shed in [true, false] {
            let row = run_churn(
                turnover, shed, members, joiners, horizon_ms, epochs, seed, &train, &test,
            );
            println!(
                "  turnover {:>4.0}%  shed {:>3}  joined {}  departed {}  rejoined {}  shed_batches {:>3}  restores {:>2}  lost {:>3}  acc {:.1}%",
                turnover * 100.0,
                if shed { "on" } else { "off" },
                row.clients_joined,
                row.clients_departed,
                row.rejoins,
                row.batches_shed,
                row.checkpoint_restores,
                row.batches_lost,
                row.accuracy * 100.0
            );
            if turnover == 0.0 && shed {
                baseline_accuracy = row.accuracy;
            }
            rows.push(row);
        }
    }

    println!("\noverload stress — slow server, bounded ingress on/off");
    let mut overload_rows = Vec::new();
    for shed in [true, false] {
        let row = run_overload(shed, members, epochs.min(2), seed, &train, &test);
        println!(
            "  shed {:>3}  cap {}  max depth {}  shed_batches {:>3}  served {:>3}  acc {:.1}%",
            if shed { "on" } else { "off" },
            row.queue_capacity,
            row.max_queue_depth,
            row.batches_shed,
            row.served_total,
            row.accuracy * 100.0
        );
        overload_rows.push(row);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.turnover * 100.0),
                (if r.shed { "on" } else { "off" }).to_string(),
                format!("{}", r.clients_joined),
                format!("{}", r.clients_departed),
                format!("{}", r.rejoins),
                format!("{}", r.batches_shed),
                format!("{}", r.deadline_partial_applies),
                format!("{}", r.batches_lost),
                format!("{:+.1}", (r.accuracy - baseline_accuracy) * 100.0),
                format!("{:.1}%", r.accuracy * 100.0),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "turnover",
                "shed",
                "joined",
                "departed",
                "rejoined",
                "shed batches",
                "partial applies",
                "lost",
                "Δacc (pts)",
                "accuracy"
            ],
            &table
        )
    );

    let sweep = ChurnSweep {
        data_source: source.to_string(),
        founding_members: members,
        joiners,
        turnovers,
        horizon_ms,
        baseline_accuracy,
        rows,
        overload: overload_rows,
    };
    let data_json = serde_json::to_string_pretty(&sweep).expect("serialize sweep");
    write_results_deterministic("churn", "churn_sweep", seed, &data_json);
}
