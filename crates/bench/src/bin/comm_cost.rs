//! **E6** — communication cost: split learning vs FedAvg vs raw upload.
//!
//! The paper's §I motivation is that raw medical data may not be moved.
//! This experiment compares what each approach ships per training epoch
//! (or FedAvg round): raw-image upload (the centralized strawman), smashed
//! activations at each cut depth (split learning; shrinks as pooling
//! deepens), and full-model weights twice per round (FedAvg).
//!
//! ```text
//! cargo run -p stsl-bench --release --bin comm_cost
//! cargo run -p stsl-bench --release --bin comm_cost -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_split::{baselines::FedAvgTrainer, CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};

#[derive(Serialize)]
struct Row {
    scheme: String,
    uplink_mb_per_epoch: f64,
    downlink_mb_per_epoch: f64,
    total_mb_per_epoch: f64,
    raw_data_leaves_site: bool,
}

#[derive(Serialize)]
struct CommCost {
    data_source: String,
    end_systems: usize,
    samples: usize,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (arch, side, train_n) = if quick {
        (CnnArch::tiny(), 16, 200)
    } else {
        (CnnArch::paper(), 32, args.get_usize("samples", 1_000))
    };
    let clients = args.get_usize("clients", 4);
    let seed = args.get_u64("seed", 17);
    let max_cut = args.get_usize("max-cut", (arch.blocks() - 1).min(4)).max(1);

    let difficulty = args.get_f32("difficulty", 0.12);
    let (train, test, source) = load_data(train_n, 50, side, seed, difficulty);
    println!(
        "E6 communication cost — {} data, {} samples, {} end-systems (1 epoch / 1 round each)",
        source,
        train.len(),
        clients
    );

    let mut rows = Vec::new();

    // Strawman: centralize by uploading raw pixels once (amortized as one
    // "epoch" here; in reality it is once, but it also forfeits privacy).
    let (c, h, w) = train.image_dims();
    let raw_mb = (train.len() * c * h * w * 4) as f64 / 1e6;
    rows.push(Row {
        scheme: "raw upload (centralized)".into(),
        uplink_mb_per_epoch: raw_mb,
        downlink_mb_per_epoch: 0.0,
        total_mb_per_epoch: raw_mb,
        raw_data_leaves_site: true,
    });

    // Split learning at each cut.
    for cut in 1..=max_cut {
        let cfg = SplitConfig::new(CutPoint(cut), clients)
            .arch(arch.clone())
            .epochs(1)
            .seed(seed);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        t.run_epoch(0);
        let comm = t.comm();
        rows.push(Row {
            scheme: format!("split, cut {} ({})", cut, CutPoint(cut).label()),
            uplink_mb_per_epoch: comm.uplink_bytes as f64 / 1e6,
            downlink_mb_per_epoch: comm.downlink_bytes as f64 / 1e6,
            total_mb_per_epoch: comm.total_bytes() as f64 / 1e6,
            raw_data_leaves_site: false,
        });
        let _ = test; // evaluation not needed for byte accounting
    }

    // FedAvg: one round, one local epoch.
    let cfg = SplitConfig::new(CutPoint(0), clients)
        .arch(arch.clone())
        .epochs(1)
        .seed(seed);
    let mut fed = FedAvgTrainer::new(cfg, &train, 1).expect("valid config");
    fed.train(1, &test);
    let fed_up = 0.0f64.max(clients as f64 * fed.model_bytes() as f64 / 1e6);
    rows.push(Row {
        scheme: "fedavg (1 round, E=1)".into(),
        uplink_mb_per_epoch: fed_up,
        downlink_mb_per_epoch: fed_up,
        total_mb_per_epoch: 2.0 * fed_up,
        raw_data_leaves_site: false,
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.2}", r.uplink_mb_per_epoch),
                format!("{:.2}", r.downlink_mb_per_epoch),
                format!("{:.2}", r.total_mb_per_epoch),
                if r.raw_data_leaves_site {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "scheme",
                "uplink MB/epoch",
                "downlink MB/epoch",
                "total MB/epoch",
                "raw data leaves?"
            ],
            &table
        )
    );

    write_results(
        "comm",
        "comm_cost",
        seed,
        &CommCost {
            data_source: source.to_string(),
            end_systems: clients,
            samples: train.len(),
            rows,
        },
    );
}
