//! **E11** — data-plane integrity under payload corruption.
//!
//! Sweeps the in-flight corruption rate over the asynchronous trainer
//! twice per rate: once with the integrity guard on (checksummed wire
//! format + ingress validation + quarantine + rollback watchdog) and once
//! with it off (the legacy trusting receiver). With the guard, corrupted
//! frames are caught by CRC and retransmitted, so accuracy stays within a
//! couple of points of the fault-free run; without it, frames that still
//! parse are silently applied and training degrades or diverges.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin corruption_sweep
//! cargo run -p stsl-bench --release --bin corruption_sweep -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_simnet::{FaultPlan, Link, SimDuration, SimTime, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, GuardConfig, RetryPolicy, SchedulingPolicy,
    SplitConfig,
};

#[derive(Serialize)]
struct Row {
    corruption_rate: f64,
    guard: bool,
    sim_seconds: f64,
    corrupted_payloads: u64,
    corrupted_rejected: u64,
    anomalies_rejected: u64,
    quarantines: u64,
    quarantine_drops: u64,
    rollbacks: u64,
    retransmits: u64,
    retry_exhausted: u64,
    batches_lost: u64,
    served_per_client: Vec<u64>,
    accuracy: f32,
}

#[derive(Serialize)]
struct CorruptionSweep {
    data_source: String,
    end_systems: usize,
    rates: Vec<f64>,
    /// Accuracy of the fault-free guard-on run, the reference the
    /// guard-on rows are compared against.
    clean_accuracy: f32,
    rows: Vec<Row>,
}

fn run_one(
    rate: f64,
    guard: bool,
    clients: usize,
    epochs: usize,
    seed: u64,
    train: &stsl_data::ImageDataset,
    test: &stsl_data::ImageDataset,
) -> Row {
    let topology = StarTopology::new(
        (0..clients)
            .map(|i| Link::wan(5.0 + 10.0 * i as f64, 100.0))
            .collect(),
    );
    let mut plan = FaultPlan::new();
    if rate > 0.0 {
        // Corruption active over the whole run.
        plan = plan.payload_corruption_all(
            clients,
            rate,
            SimTime::ZERO,
            SimTime::from_micros(u64::MAX),
        );
    }
    let cfg = SplitConfig::new(CutPoint(1), clients)
        .arch(CnnArch::tiny())
        .epochs(epochs)
        .batch_size(16)
        .seed(seed);
    let mut trainer = AsyncSplitTrainer::new(
        cfg,
        train,
        topology,
        SchedulingPolicy::RoundRobin,
        ComputeModel::default(),
    )
    .expect("valid config")
    .with_fault_plan(plan)
    .with_retry_policy(RetryPolicy::default())
    .with_auto_checkpoint(SimDuration::from_millis(200));
    if guard {
        trainer = trainer.with_integrity_guard(GuardConfig::default());
    }
    let r = trainer.run(test);
    Row {
        corruption_rate: rate,
        guard,
        sim_seconds: r.sim_seconds,
        corrupted_payloads: r.corrupted_payloads,
        corrupted_rejected: r.corrupted_rejected,
        anomalies_rejected: r.anomalies_rejected,
        quarantines: r.quarantines,
        quarantine_drops: r.quarantine_drops,
        rollbacks: r.rollbacks,
        retransmits: r.retransmits,
        retry_exhausted: r.retry_exhausted,
        batches_lost: r.batches_lost,
        served_per_client: r.served_per_client.clone(),
        accuracy: r.final_accuracy,
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let clients = args.get_usize("clients", 4);
    let seed = args.get_u64("seed", 47);
    let epochs = args.get_usize("epochs", if quick { 2 } else { 4 });
    let train_n = args.get_usize("samples", if quick { 160 } else { 640 });
    let rates: Vec<f64> = if quick {
        vec![0.0, 0.05]
    } else {
        vec![0.0, 0.01, 0.05, 0.15]
    };

    let difficulty = args.get_f32("difficulty", 0.12);
    let (train, test, source) = load_data(train_n, 160, 16, seed, difficulty);
    println!(
        "E11 corruption sweep — {} data, {} end-systems, epochs {}",
        source, clients, epochs
    );

    let mut rows = Vec::new();
    let mut clean_accuracy = 0.0f32;
    for &rate in &rates {
        for guard in [true, false] {
            let row = run_one(rate, guard, clients, epochs, seed, &train, &test);
            println!(
                "  rate {:>5.2}%  guard {:>3}  corrupted {:>4} (rejected {:>4})  anomalies {:>3}  quarantines {}  rollbacks {}  lost {:>3}  acc {:.1}%",
                rate * 100.0,
                if guard { "on" } else { "off" },
                row.corrupted_payloads,
                row.corrupted_rejected,
                row.anomalies_rejected,
                row.quarantines,
                row.rollbacks,
                row.batches_lost,
                row.accuracy * 100.0
            );
            if rate == 0.0 && guard {
                clean_accuracy = row.accuracy;
            }
            rows.push(row);
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}%", r.corruption_rate * 100.0),
                (if r.guard { "on" } else { "off" }).to_string(),
                format!("{}", r.corrupted_payloads),
                format!("{}", r.corrupted_rejected),
                format!("{}", r.anomalies_rejected),
                format!("{}", r.rollbacks),
                format!("{}", r.batches_lost),
                format!("{:+.1}", (r.accuracy - clean_accuracy) * 100.0),
                format!("{:.1}%", r.accuracy * 100.0),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "corruption",
                "guard",
                "corrupted",
                "rejected",
                "anomalies",
                "rollbacks",
                "lost",
                "Δacc (pts)",
                "accuracy"
            ],
            &table
        )
    );

    write_results(
        "guard",
        "corruption_sweep",
        seed,
        &CorruptionSweep {
            data_source: source.to_string(),
            end_systems: clients,
            rates,
            clean_accuracy,
            rows,
        },
    );
}
