//! **E10** — fault tolerance under injected failures.
//!
//! Sweeps the intensity of a seeded random [`stsl_simnet::FaultPlan`]
//! (link outages, loss surges, latency spikes, client crash→recover
//! windows, server stalls) over the asynchronous trainer with
//! retransmission, liveness tracking and auto-checkpointing enabled, and
//! reports the robustness counters: retransmits, batches lost, downtime,
//! crash/recovery/checkpoint events and final accuracy.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin fault_sweep
//! cargo run -p stsl-bench --release --bin fault_sweep -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_simnet::{FaultPlan, Link, SimDuration, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, RetryPolicy, SchedulingPolicy, SplitConfig,
};

#[derive(Serialize)]
struct Row {
    intensity: f64,
    fault_episodes: usize,
    sim_seconds: f64,
    network_drops: u64,
    retransmits: u64,
    retry_exhausted: u64,
    batches_lost: u64,
    crash_events: u64,
    recovery_events: u64,
    checkpoint_saves: u64,
    checkpoint_restores: u64,
    dead_clients_detected: u64,
    total_downtime_ms: f64,
    served_per_client: Vec<u64>,
    accuracy: f32,
}

#[derive(Serialize)]
struct FaultSweep {
    data_source: String,
    end_systems: usize,
    base_loss: f64,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let clients = args.get_usize("clients", 4);
    let seed = args.get_u64("seed", 33);
    let epochs = args.get_usize("epochs", if quick { 1 } else { 3 });
    let train_n = args.get_usize("samples", if quick { 160 } else { 640 });
    let base_loss = args.get_f32("loss", 0.05) as f64;
    let intensities: Vec<f64> = if quick {
        vec![0.0, 0.5, 1.0]
    } else {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    };

    let difficulty = args.get_f32("difficulty", 0.12);
    let (train, test, source) = load_data(train_n, 160, 16, seed, difficulty);
    println!(
        "E10 fault-tolerance sweep — {} data, {} end-systems, {:.0}% base loss, epochs {}",
        source,
        clients,
        base_loss * 100.0,
        epochs
    );

    // Heterogeneous links with a lossy baseline, so retransmission is
    // exercised even at intensity 0.
    let topology = StarTopology::new(
        (0..clients)
            .map(|i| Link::wan(5.0 + 20.0 * i as f64, 100.0).loss(base_loss))
            .collect(),
    );
    let compute = ComputeModel::default();
    // Faults are scheduled over roughly the horizon a clean run needs;
    // crashes outlasting the survivors' work still recover (the run only
    // ends once every scheduled recovery has fired).
    let horizon = SimDuration::from_millis(if quick { 2_000 } else { 6_000 });

    let mut rows = Vec::new();
    for &intensity in &intensities {
        let plan = FaultPlan::random(clients, horizon, seed ^ 0xFA17, intensity);
        let cfg = SplitConfig::new(CutPoint(1), clients)
            .arch(CnnArch::tiny())
            .epochs(epochs)
            .batch_size(16)
            .seed(seed);
        let mut trainer = AsyncSplitTrainer::new(
            cfg,
            &train,
            topology.clone(),
            SchedulingPolicy::RoundRobin,
            compute,
        )
        .expect("valid config")
        .with_fault_plan(plan.clone())
        .with_retry_policy(RetryPolicy::default())
        .with_auto_checkpoint(SimDuration::from_millis(200))
        .with_liveness_timeout(SimDuration::from_millis(1_000));
        let r = trainer.run(&test);
        println!(
            "  intensity {:.2}  episodes {:>2}  drops {:>4}  retransmits {:>4}  lost {:>3}  crashes {}/{}  ckpt {}/{}  downtime {:>7.0} ms  acc {:.1}%",
            intensity,
            plan.len(),
            r.network_drops,
            r.retransmits,
            r.batches_lost,
            r.crash_events,
            r.recovery_events,
            r.checkpoint_saves,
            r.checkpoint_restores,
            r.downtime_ms_per_client.iter().sum::<f64>(),
            r.final_accuracy * 100.0
        );
        rows.push(Row {
            intensity,
            fault_episodes: plan.len(),
            sim_seconds: r.sim_seconds,
            network_drops: r.network_drops,
            retransmits: r.retransmits,
            retry_exhausted: r.retry_exhausted,
            batches_lost: r.batches_lost,
            crash_events: r.crash_events,
            recovery_events: r.recovery_events,
            checkpoint_saves: r.checkpoint_saves,
            checkpoint_restores: r.checkpoint_restores,
            dead_clients_detected: r.dead_clients_detected,
            total_downtime_ms: r.downtime_ms_per_client.iter().sum(),
            served_per_client: r.served_per_client.clone(),
            accuracy: r.final_accuracy,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.intensity),
                format!("{}", r.fault_episodes),
                format!("{}", r.network_drops),
                format!("{}", r.retransmits),
                format!("{}", r.batches_lost),
                format!("{}/{}", r.crash_events, r.recovery_events),
                format!("{:.0}", r.total_downtime_ms),
                format!("{:.1}%", r.accuracy * 100.0),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "intensity",
                "episodes",
                "drops",
                "retransmits",
                "lost",
                "crash/recover",
                "downtime (ms)",
                "accuracy"
            ],
            &table
        )
    );

    write_results(
        "fault",
        "fault_sweep",
        seed,
        &FaultSweep {
            data_source: source.to_string(),
            end_systems: clients,
            base_loss,
            rows,
        },
    );
}
