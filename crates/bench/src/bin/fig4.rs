//! **Fig. 4** — image capture during deep neural network computation.
//!
//! Trains one end-system briefly (so `L_1` has realistic weights), then
//! for one image per class renders the triptych the paper shows:
//! (a) the original image, (b) the activation after the `Conv2D` of
//! `L_1` — still recognizable — and (c) the activation after the full
//! `L_1` block (conv + max-pool), which hides the original. PPM files and
//! per-stage structural-similarity numbers are written to `results/`.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin fig4
//! cargo run -p stsl-bench --release --bin fig4 -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, results_dir, write_results, Args};
use stsl_privacy::visualize::{capture_stages, fig4_triptych, stage_similarity};
use stsl_split::{CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};

#[derive(Serialize)]
struct ClassCapture {
    class: usize,
    original_vs_conv: f32,
    original_vs_pooled: f32,
    ppm: String,
}

#[derive(Serialize)]
struct Fig4 {
    data_source: String,
    trained_epochs: usize,
    per_class: Vec<ClassCapture>,
    mean_conv_similarity: f32,
    mean_pool_similarity: f32,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (arch, side, train_n, epochs) = if quick {
        (CnnArch::tiny(), 16, 200, 1)
    } else {
        (
            CnnArch::paper(),
            32,
            args.get_usize("samples", 1_000),
            args.get_usize("epochs", 2),
        )
    };
    let seed = args.get_u64("seed", 7);
    let difficulty = args.get_f32("difficulty", if quick { 0.12 } else { 0.2 });
    let (train, test, source) = load_data(train_n, 100, side, seed, difficulty);
    println!(
        "Fig. 4 reproduction — {} data, training L1 for {} epoch(s)…",
        source, epochs
    );

    // Train an end-system with L1 private so the captured activations come
    // from realistic (not random) weights, as in the paper.
    let cfg = SplitConfig::new(CutPoint(1), 1)
        .arch(arch)
        .epochs(epochs)
        .seed(seed);
    let mut trainer = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
    trainer.train(&test);

    let out_dir = results_dir();
    let mut per_class = Vec::new();
    let classes = train.num_classes();
    for class in 0..classes {
        // First test image of this class.
        let Some(idx) = (0..test.len()).find(|&i| test.label(i) == class) else {
            continue;
        };
        let image = test.image(idx);
        let client = trainer.clients_mut().first_mut().expect("one client");
        let model = client.model_mut();
        let stages = capture_stages(model, &image);
        let conv_sim = stage_similarity(&image, &stages[1].activation);
        let pool_sim = stage_similarity(&image, &stages[3].activation);
        let trip = fig4_triptych(model, &image, 4);
        let name = format!("fig4_class{}.ppm", class);
        trip.save_ppm(out_dir.join(&name)).expect("write ppm");
        per_class.push(ClassCapture {
            class,
            original_vs_conv: conv_sim,
            original_vs_pooled: pool_sim,
            ppm: name,
        });
    }

    let mean_conv =
        per_class.iter().map(|c| c.original_vs_conv).sum::<f32>() / per_class.len().max(1) as f32;
    let mean_pool =
        per_class.iter().map(|c| c.original_vs_pooled).sum::<f32>() / per_class.len().max(1) as f32;

    let rows: Vec<Vec<String>> = per_class
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.class),
                format!("{:.3}", c.original_vs_conv),
                format!("{:.3}", c.original_vs_pooled),
                c.ppm.clone(),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "class",
                "sim(orig, conv L1)",
                "sim(orig, L1 pooled)",
                "triptych"
            ],
            &rows
        )
    );
    println!(
        "mean structural similarity: conv stage {:.3} (recognizable) vs pooled stage {:.3} (hidden)",
        mean_conv, mean_pool
    );
    if mean_conv > mean_pool {
        println!("=> matches the paper: max-pooling is what hides the original image");
    } else {
        println!("WARNING: pooled stage unexpectedly more similar than conv stage");
    }

    write_results(
        "fig4",
        "fig4",
        seed,
        &Fig4 {
            data_source: source.to_string(),
            trained_epochs: epochs,
            per_class,
            mean_conv_similarity: mean_conv,
            mean_pool_similarity: mean_pool,
        },
    );
}
