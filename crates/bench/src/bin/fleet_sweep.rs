//! **E16** — fleet-scale simulation: 1k–100k+ end-systems through the
//! calendar event queue and cohort-sharded client state.
//!
//! Sweeps fleet size N with the cohort count K held small, charting
//! arrival-queue depth, gradient staleness, accuracy and simulation
//! throughput (events per *simulated* second — a deterministic number
//! that lands in `results/fleet.json`; wall-clock events/sec is printed
//! to stdout only, since it varies by machine). The 64-client row runs
//! the exact `FleetConfig::crossval64()` configuration that `scale_sweep`
//! also runs, so `results/scale.json` and `results/fleet.json` overlap
//! on one point for cross-validation.
//!
//! The JSON envelope is written with [`write_results_deterministic`], so
//! the file is byte-identical across `STSL_THREADS` settings — CI diffs
//! the two legs.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin fleet_sweep -- --quick   # 64 + 1k
//! cargo run -p stsl-bench --release --bin fleet_sweep              # + 10k
//! cargo run -p stsl-bench --release --bin fleet_sweep -- --xl     # + 100k
//! ```

use serde::Serialize;
use stsl_bench::{crossval_fleet_data, load_data, render_table, write_results_deterministic, Args};
use stsl_split::{FleetConfig, FleetReport, FleetTrainer, WallTimer};

#[derive(Serialize)]
struct Row {
    clients: usize,
    cohorts: usize,
    crossval: bool,
    sim_seconds: f64,
    events_processed: u64,
    events_per_sim_sec: f64,
    sends_attempted: u64,
    admission_rejected: u64,
    shed: u64,
    served: u64,
    cohort_steps: u64,
    mean_queue_depth: f64,
    max_queue_depth: usize,
    mean_staleness_ms: f64,
    final_accuracy: f32,
    model_bytes: u64,
    per_client_state_bytes: u64,
    departures: u64,
    snapshots_emitted: u64,
}

impl Row {
    fn from_report(r: &FleetReport, crossval: bool) -> Self {
        Row {
            clients: r.clients,
            cohorts: r.cohorts,
            crossval,
            sim_seconds: r.sim_seconds,
            events_processed: r.events_processed,
            events_per_sim_sec: r.events_per_sim_sec,
            sends_attempted: r.sends_attempted,
            admission_rejected: r.admission_rejected,
            shed: r.shed,
            served: r.served,
            cohort_steps: r.cohort_steps,
            mean_queue_depth: r.mean_queue_depth,
            max_queue_depth: r.max_queue_depth,
            mean_staleness_ms: r.mean_staleness_ms,
            final_accuracy: r.final_accuracy,
            model_bytes: r.model_bytes,
            per_client_state_bytes: r.per_client_state_bytes,
            departures: r.departures,
            snapshots_emitted: r.snapshots_emitted,
        }
    }
}

#[derive(Serialize)]
struct FleetSweep {
    data_source: String,
    queue: String,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let xl = args.get_flag("xl");
    let seed = FleetConfig::crossval64().seed;

    // The 64-client row always runs (it is the scale.json overlap point);
    // larger rows chart how the calendar queue + cohort sharding scale.
    let mut sizes: Vec<usize> = vec![1_000];
    if !quick {
        sizes.push(10_000);
    }
    if xl {
        sizes.push(100_000);
    }

    println!(
        "E16 fleet sweep — queue {} — sizes 64(crossval){}",
        stsl_simnet::QueueKind::active().name(),
        sizes.iter().map(|n| format!(" {}", n)).collect::<String>()
    );

    let mut rows = Vec::new();

    // Shared cross-validation row: identical config + data to scale_sweep.
    {
        let (train, test) = crossval_fleet_data();
        let mut fleet =
            FleetTrainer::new(FleetConfig::crossval64(), &train).expect("crossval64 is valid");
        let wall = WallTimer::start();
        let report = fleet.run(&test);
        print_row(&report, wall.seconds(), true);
        rows.push(Row::from_report(&report, true));
    }

    // Fleet-scale rows: same synthetic data spec, smoke() preset scaled up.
    let (train, test, source) = load_data(320, 120, 16, seed, 0.12);
    for &n in &sizes {
        let cfg = FleetConfig::smoke(n);
        let mut fleet = FleetTrainer::new(cfg, &train).expect("smoke config is valid");
        let wall = WallTimer::start();
        let report = fleet.run(&test);
        print_row(&report, wall.seconds(), false);
        rows.push(Row::from_report(&report, false));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}{}", r.clients, if r.crossval { "*" } else { "" }),
                format!("{}", r.cohorts),
                format!("{:.2}", r.mean_queue_depth),
                format!("{:.1}", r.mean_staleness_ms),
                format!("{:.1}%", r.final_accuracy * 100.0),
                format!("{:.0}", r.events_per_sim_sec),
                format!("{}", r.model_bytes),
                format!("{}", r.per_client_state_bytes),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "clients",
                "cohorts",
                "mean depth",
                "staleness (ms)",
                "accuracy",
                "events/sim-s",
                "model bytes",
                "per-client B",
            ],
            &table
        )
    );
    println!(
        "* = crossval64 row shared with scale_sweep (results/scale.json).\n\
         Model bytes are O(cohorts): constant while clients grow 64 → {}.",
        rows.last().map(|r| r.clients).unwrap_or(64)
    );

    let sweep = FleetSweep {
        data_source: source.to_string(),
        queue: stsl_simnet::QueueKind::active().name().to_string(),
        rows,
    };
    let data_json = serde_json::to_string_pretty(&sweep).expect("serialize sweep");
    write_results_deterministic("fleet", "fleet_sweep", seed, &data_json);
}

fn print_row(r: &FleetReport, wall_secs: f64, crossval: bool) {
    // Wall-clock throughput is stdout-only: it depends on the machine and
    // must never reach the deterministic results envelope.
    let wall_eps = if wall_secs > 0.0 {
        r.events_processed as f64 / wall_secs
    } else {
        0.0
    };
    println!(
        "  N={:<7}{} K={:<3} events {:>8}  sim {:>7.2}s  depth {:>6.2}  stale {:>7.1}ms  \
         acc {:>5.1}%  {:>9.0} ev/sim-s  ({:.0} ev/wall-s)",
        r.clients,
        if crossval { "*" } else { " " },
        r.cohorts,
        r.events_processed,
        r.sim_seconds,
        r.mean_queue_depth,
        r.mean_staleness_ms,
        r.final_accuracy * 100.0,
        r.events_per_sim_sec,
        wall_eps
    );
}
