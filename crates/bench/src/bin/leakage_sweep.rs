//! **E3** — privacy–utility trade-off: inversion-attack reconstruction
//! fidelity vs. cut depth.
//!
//! Quantifies Fig. 4 / §III: for every cut `L_1..L_k` we train the
//! end-system, then mount the regression inversion attack (honest-but-
//! curious server with auxiliary data) against its encoder and report
//! PSNR / SSIM / distance correlation of the reconstructions. Leakage
//! falls as the cut deepens — the mirror image of Table I's accuracy
//! degradation, which together form the paper's central trade-off.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin leakage_sweep
//! cargo run -p stsl-bench --release --bin leakage_sweep -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_privacy::measure_leakage;
use stsl_split::{CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};

#[derive(Serialize)]
struct Row {
    cut: usize,
    label: String,
    psnr_db: f32,
    ssim: f32,
    dcor: f32,
    mse: f32,
    activation_floats: usize,
}

#[derive(Serialize)]
struct Leakage {
    data_source: String,
    attack_epochs: usize,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    // The inversion regression must be well-posed: auxiliary samples must
    // exceed the widest cut's activation width. The tiny 16×16 arch keeps
    // that affordable (cut-1 width 512 < 800 aux); the paper arch at
    // cut 1 would need > 4096 auxiliary samples and a 12M-parameter
    // decoder (pass --samples/--aux yourself if you want that).
    let (arch, side, train_n, train_epochs, attack_epochs, aux_n, victim_n) = if quick {
        (CnnArch::tiny(), 16, 200, 1, 5, 150, 30)
    } else {
        (
            CnnArch::tiny(),
            16,
            args.get_usize("samples", 800),
            args.get_usize("epochs", 3),
            args.get_usize("attack-epochs", 20),
            args.get_usize("aux", 800),
            args.get_usize("victims", 48),
        )
    };
    let seed = args.get_u64("seed", 13);
    let max_cut = args.get_usize("max-cut", arch.blocks().min(4)).max(1);

    let difficulty = args.get_f32("difficulty", if quick { 0.12 } else { 0.2 });
    let (train, test, source) = load_data(train_n, 64, side, seed, difficulty);
    // The attacker's auxiliary data is drawn from a *different* generator
    // seed: same distribution, disjoint samples.
    let (aux, victims, _) = load_data(aux_n, victim_n, side, seed ^ 0xABCD, difficulty);
    println!(
        "E3 leakage sweep — {} data, cuts 1..={}, attack {} epochs on {} aux samples",
        source,
        max_cut,
        attack_epochs,
        aux.len()
    );

    let mut rows = Vec::new();
    for cut in 1..=max_cut {
        let cfg = SplitConfig::new(CutPoint(cut), 1)
            .arch(arch.clone())
            .epochs(train_epochs)
            .seed(seed);
        let mut trainer = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        trainer.train(&test);
        let activation_floats: usize = arch.cut_dims(CutPoint(cut), 1).iter().product();
        let client = trainer.clients_mut().first_mut().expect("one client");
        let report = measure_leakage(|x| client.encode(x), &aux, &victims, attack_epochs, seed);
        println!(
            "  cut {}: psnr {:.2} dB  ssim {:.3}  dcor {:.3}",
            cut, report.psnr_db, report.ssim, report.dcor
        );
        rows.push(Row {
            cut,
            label: CutPoint(cut).label(),
            psnr_db: report.psnr_db,
            ssim: report.ssim,
            dcor: report.dcor,
            mse: report.mse,
            activation_floats,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.2}", r.psnr_db),
                format!("{:.3}", r.ssim),
                format!("{:.3}", r.dcor),
                format!("{}", r.activation_floats),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "Layers at end-system",
                "PSNR (dB) ↓=private",
                "SSIM",
                "dCor",
                "act. floats"
            ],
            &table
        )
    );
    let monotone = rows.windows(2).all(|w| w[1].psnr_db <= w[0].psnr_db + 0.5);
    if monotone {
        println!("=> leakage decreases with cut depth: deeper cuts are more private");
    }

    write_results(
        "leakage",
        "leakage_sweep",
        seed,
        &Leakage {
            data_source: source.to_string(),
            attack_epochs,
            rows,
        },
    );
}
