//! **E7 (ablation)** — the Gaussian noise defense on smashed activations.
//!
//! The paper protects privacy architecturally (max-pooling destroys
//! detail; Fig. 4). An orthogonal knob is adding noise to whatever leaves
//! the end-system. This ablation sweeps the noise level σ and measures
//! both sides of the trade: task accuracy (synchronous trainer) and
//! inversion-attack leakage against the protected encoder.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin noise_ablation
//! cargo run -p stsl-bench --release --bin noise_ablation -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_privacy::measure_leakage;
use stsl_split::{CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig};

#[derive(Serialize)]
struct Row {
    sigma: f32,
    accuracy: f32,
    psnr_db: f32,
    ssim: f32,
    dcor: f32,
}

#[derive(Serialize)]
struct NoiseAblation {
    data_source: String,
    cut: usize,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (train_n, epochs, aux_n, attack_epochs) = if quick {
        (240usize, 2usize, 400usize, 6usize)
    } else {
        (
            args.get_usize("samples", 800),
            args.get_usize("epochs", 4),
            800,
            10,
        )
    };
    let cut = args.get_usize("cut", 1);
    let seed = args.get_u64("seed", 23);
    let sigmas: Vec<f32> = if quick {
        vec![0.0, 1.0]
    } else {
        vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0]
    };

    let difficulty = args.get_f32("difficulty", 0.1);
    let (train, test, source) = load_data(train_n, 150, 16, seed, difficulty);
    let (aux, victims, _) = load_data(aux_n, 32, 16, seed ^ 0x55, difficulty);
    println!(
        "E7 noise-defense ablation — {} data, cut {}, σ sweep {:?}",
        source, cut, sigmas
    );

    let mut rows = Vec::new();
    for &sigma in &sigmas {
        let cfg = SplitConfig::new(CutPoint(cut), 2)
            .arch(CnnArch::tiny())
            .epochs(epochs)
            .seed(seed)
            .smash_noise(sigma);
        let mut trainer = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        let report = trainer.train(&test);
        let client = trainer.clients_mut().first_mut().expect("client");
        let leak = measure_leakage(
            |x| client.encode_protected(x),
            &aux,
            &victims,
            attack_epochs,
            seed,
        );
        println!(
            "  σ={:<5} accuracy {:.1}%  psnr {:.2} dB  ssim {:.3}  dcor {:.3}",
            sigma,
            report.final_accuracy * 100.0,
            leak.psnr_db,
            leak.ssim,
            leak.dcor
        );
        rows.push(Row {
            sigma,
            accuracy: report.final_accuracy,
            psnr_db: leak.psnr_db,
            ssim: leak.ssim,
            dcor: leak.dcor,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.sigma),
                format!("{:.1}%", r.accuracy * 100.0),
                format!("{:.2}", r.psnr_db),
                format!("{:.3}", r.ssim),
                format!("{:.3}", r.dcor),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &["σ", "accuracy", "attack PSNR (dB)", "SSIM", "dCor"],
            &table
        )
    );
    println!("higher σ ⇒ lower leakage (PSNR/dCor fall) at the cost of accuracy");

    write_results(
        "noise",
        "noise_ablation",
        seed,
        &NoiseAblation {
            data_source: source.to_string(),
            cut,
            rows,
        },
    );
}
