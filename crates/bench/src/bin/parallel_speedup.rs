//! **E14** — serial/parallel speedup of the `stsl-parallel` thread pool,
//! per numeric backend.
//!
//! Times the GEMM kernels (including the large square product the CI
//! speedup gate watches) and one synchronous split-learning epoch at
//! increasing thread counts, on both the scalar **reference** backend and
//! the cache-**blocked** backend, and reports wall-clock medians plus the
//! speedup over the exact serial path (`threads = 1`, same backend).
//! Because every parallel kernel is bitwise-deterministic *within a
//! backend*, the runs at different thread counts compute identical
//! results — the only thing that may change is time.
//!
//! Numbers are honest: `hardware_threads` records what the machine
//! actually offers, every row carries the requested **and** granted
//! thread counts, and the envelope collects explicit warnings whenever a
//! sweep point asks for more threads than the host exposes — on such rows
//! the pool still spawns the requested workers, but they time-share cores
//! and the speedup is noise, not signal. `scripts/check_speedup.py`
//! consumes these fields to decide whether the ≥2× four-thread gate is
//! applicable on the current runner.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin parallel_speedup
//! cargo run -p stsl-bench --release --bin parallel_speedup -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_parallel::with_threads;
use stsl_split::{CutPoint, SpatioTemporalTrainer, SplitConfig};
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::ops::matmul::{gemm, gemm_at_b};
use stsl_tensor::{with_backend, Backend, Tensor};

#[derive(Serialize)]
struct Timing {
    workload: String,
    backend: String,
    threads_requested: usize,
    threads_granted: usize,
    median_ms: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct SpeedupReport {
    hardware_threads: usize,
    repeats: usize,
    gemm_dims: Vec<usize>,
    gemm_large_dims: Vec<usize>,
    epoch_samples: usize,
    data_source: String,
    /// Human-readable caveats (e.g. oversubscribed sweep points). Empty
    /// means every row's speedup is meaningful on this host.
    warnings: Vec<String>,
    rows: Vec<Timing>,
}

/// Median wall-clock milliseconds of `repeats` runs of `f`.
fn median_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = stsl_split::WallTimer::start();
            f();
            start.seconds() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let repeats = args.get_usize("repeats", if quick { 3 } else { 7 });
    let (m, k, n) = if quick { (96, 96, 96) } else { (256, 256, 256) };
    let large = if quick { 160 } else { 384 };
    let train_n = if quick { 64 } else { 256 };
    let threads_sweep = [1usize, 2, 4];

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rng = rng_from_seed(3);
    let a: Vec<f32> = Tensor::randn([m, k], &mut rng).as_slice().to_vec();
    let b: Vec<f32> = Tensor::randn([k, n], &mut rng).as_slice().to_vec();
    let al: Vec<f32> = Tensor::randn([large, large], &mut rng).as_slice().to_vec();
    let bl: Vec<f32> = Tensor::randn([large, large], &mut rng).as_slice().to_vec();
    let (train, _test, data_source) = load_data(train_n, 16, 16, 5, 0.05);

    let mut warnings: Vec<String> = Vec::new();
    for &threads in &threads_sweep {
        if threads > hardware_threads {
            warnings.push(format!(
                "{threads}-thread rows are oversubscribed: host exposes only \
                 {hardware_threads} hardware thread(s), so their speedups \
                 measure scheduling overhead, not parallel scaling"
            ));
        }
    }

    let mut rows: Vec<Timing> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    for backend in [Backend::Reference, Backend::Blocked] {
        for (workload, mut run) in [
            (
                "gemm",
                Box::new(|| {
                    std::hint::black_box(gemm(&a, &b, m, k, n));
                }) as Box<dyn FnMut()>,
            ),
            (
                "gemm_large",
                Box::new(|| {
                    std::hint::black_box(gemm(&al, &bl, large, large, large));
                }),
            ),
            (
                "gemm_at_b",
                Box::new(|| {
                    std::hint::black_box(gemm_at_b(&a, &b, k, m, n));
                }),
            ),
            (
                "sync_epoch",
                Box::new(|| {
                    let cfg = SplitConfig::tiny(CutPoint(1), 4).epochs(1).seed(9);
                    let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
                    std::hint::black_box(t.run_epoch(0));
                }),
            ),
        ] {
            let mut serial_ms = 0.0;
            for &threads in &threads_sweep {
                let (ms, granted) = with_backend(backend, || {
                    with_threads(threads, || {
                        (median_ms(repeats, &mut run), stsl_parallel::max_threads())
                    })
                });
                if threads == 1 {
                    serial_ms = ms;
                }
                let speedup = if ms > 0.0 { serial_ms / ms } else { 0.0 };
                rows.push(Timing {
                    workload: workload.to_string(),
                    backend: backend.name().to_string(),
                    threads_requested: threads,
                    threads_granted: granted,
                    median_ms: ms,
                    speedup_vs_serial: speedup,
                });
                table.push(vec![
                    workload.to_string(),
                    backend.name().to_string(),
                    format!(
                        "{}/{}{}",
                        granted,
                        threads,
                        if threads > hardware_threads { "!" } else { "" }
                    ),
                    format!("{:.3}", ms),
                    format!("{:.2}x", speedup),
                ]);
            }
        }
    }

    println!(
        "parallel speedup (hardware threads: {}, repeats: {})\n",
        hardware_threads, repeats
    );
    println!(
        "{}",
        render_table(
            &["workload", "backend", "granted/req", "median ms", "speedup"],
            &table
        )
    );
    for w in &warnings {
        println!("warning: {w}");
    }

    write_results(
        "parallel",
        "parallel_speedup",
        9,
        &SpeedupReport {
            hardware_threads,
            repeats,
            gemm_dims: vec![m, k, n],
            gemm_large_dims: vec![large, large, large],
            epoch_samples: train_n,
            data_source: data_source.to_string(),
            warnings,
            rows,
        },
    );
}
