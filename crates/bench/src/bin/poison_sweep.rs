//! **E15** — Byzantine poisoning sweep: final accuracy vs attacker
//! fraction per robust-aggregation policy.
//!
//! A fleet of end-systems trains asynchronously while the first
//! `round(fraction * fleet)` of them run an adversarial persona
//! ([`FaultPlan::adversaries`]) for the whole run. Every policy sees the
//! *identical* attack schedule and RNG streams at each fraction (same
//! seed, same cohort), so the columns of the resulting table differ only
//! in how the server combines its gradient window before stepping.
//!
//! The acceptance profile this file defends (checked by
//! `byzantine_chaos`): at 30 % sign-flip attackers, plain windowed mean
//! loses double-digit accuracy points against the attack-free baseline
//! while at least one robust policy stays within a few points of it.
//! Accuracy is scored over the *active* (non-exiled) fleet: an exiled
//! attacker's own encoder is attacker-owned damage outside any
//! server-side defense's reach (the whole-fleet average is reported
//! alongside as `fleet_accuracy`).
//!
//! Every value derives from simulated time and seeded RNG, so the file is
//! bitwise identical for any `STSL_THREADS` (CI diffs the bytes across
//! thread counts); the results envelope therefore omits the thread count.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin poison_sweep
//! cargo run -p stsl-bench --release --bin poison_sweep -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results_deterministic, Args};
use stsl_simnet::{AttackSpec, FaultPlan, Link, SimDuration, SimTime, StarTopology};
use stsl_split::{
    AggregationPolicy, AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, GuardConfig,
    OptimizerKind, SchedulingPolicy, SplitConfig,
};

#[derive(Serialize)]
struct PoisonRow {
    policy: &'static str,
    attacker_fraction: f64,
    attackers: usize,
    /// Independent trainer seeds averaged into `accuracy` (counter
    /// fields are summed across them). A single trajectory is chaotic —
    /// ±5-10 accuracy points run to run — so per-seed numbers would say
    /// more about luck than about the defense.
    seeds: usize,
    attacks_injected: u64,
    robust_applies: u64,
    robust_outliers: u64,
    updates_trimmed: u64,
    quarantines: u64,
    rollbacks: u64,
    served_total: u64,
    sim_seconds: f64,
    /// Headline metric: test accuracy over the *active* (non-exiled)
    /// fleet — what the defense actually protects. An exiled attacker's
    /// own encoder trained against its poisoned activations; no
    /// server-side policy can make that private model honest, so it is
    /// reported in `fleet_accuracy` but kept out of the headline.
    accuracy: f32,
    /// Whole-fleet encoder average (`final_accuracy`), attacker-owned
    /// encoders included. Equal to `accuracy` when nothing was exiled.
    fleet_accuracy: f32,
    /// Accuracy drop vs the same policy's attack-free run, in points
    /// (positive = worse under attack).
    degradation_pts: f32,
}

#[derive(Serialize)]
struct PoisonSweep {
    data_source: String,
    clients: usize,
    window: usize,
    attack: String,
    fractions: Vec<f64>,
    rows: Vec<PoisonRow>,
}

/// The defense stacks under comparison. Plain windowed mean is the
/// *undefended* baseline — no integrity guard, every update reaches the
/// optimizer — while each robust policy runs the full stack: robust
/// combining plus the attack-aware guard, whose statistical-outlier
/// escalation quarantines persistent attackers out of the window
/// entirely. Aggregation alone bounds per-step damage, but a coordinate
/// that lands mid-range survives coordinate-wise trimming and injects a
/// consistent bias every step; exiling the sender is what removes it.
fn defenses() -> Vec<(AggregationPolicy, bool)> {
    vec![
        (AggregationPolicy::Mean, false),
        (AggregationPolicy::CoordinateMedian, true),
        (AggregationPolicy::TrimmedMean { trim: 0.3 }, true),
        (AggregationPolicy::NormClippedMean, true),
        (
            AggregationPolicy::Krum {
                assumed_attackers: 4,
            },
            true,
        ),
    ]
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    policy: AggregationPolicy,
    guard: bool,
    attackers: usize,
    clients: usize,
    window: usize,
    gain: f64,
    epochs: usize,
    batch: usize,
    lr: f32,
    adam: bool,
    seed: u64,
    train: &stsl_data::ImageDataset,
    test: &stsl_data::ImageDataset,
) -> (stsl_split::AsyncReport, &'static str) {
    // Uniform links keep arrivals round-robin, so every full window holds
    // one update per end-system and the attacker share of a window equals
    // the attacker share of the fleet — the regime the trimming depths
    // are chosen for. (A latency gradient would let the fastest senders
    // stack windows; with first-N attackers that confounds the sweep.)
    let topology = StarTopology::new((0..clients).map(|_| Link::wan(5.0, 100.0)).collect());
    // The persona is active from the first batch to the end of the run:
    // a patient insider, not a transient glitch.
    let plan = FaultPlan::new().adversaries(
        attackers,
        AttackSpec::SignFlip { gain },
        SimTime::ZERO,
        SimTime::from_millis(100_000_000),
    );
    // One optimizer step per full window means ~`window`-fold fewer (but
    // variance-reduced) updates than per-batch stepping, so the windowed
    // trainer runs a proportionally larger learning rate.
    let mut cfg = SplitConfig::new(CutPoint(1), clients)
        .arch(CnnArch::tiny())
        .epochs(epochs)
        .batch_size(batch)
        .learning_rate(lr)
        .seed(seed);
    if adam {
        cfg = cfg.optimizer(OptimizerKind::Adam);
    }
    let mut trainer = AsyncSplitTrainer::new(
        cfg,
        train,
        topology,
        SchedulingPolicy::Fifo,
        ComputeModel::default(),
    )
    .expect("valid config")
    .with_fault_plan(plan);
    if guard {
        // Attack-tolerant guard tuning: adversarial batches legitimately
        // spike per-batch loss, so the watchdog's blow-up rescue is left
        // for genuine divergence only, and probation outlasts the
        // longest run — a sender the window statistics flag as hostile
        // three times is exiled for good, not paroled to poison again.
        // A wider outlier factor and higher threshold keep honest tail
        // updates from accruing to exile (a false quarantine is
        // permanent data loss here); a sign-flip attacker is flagged in
        // *every* window it touches, so it still trips within ~4 rounds.
        trainer = trainer.with_integrity_guard(GuardConfig {
            loss_blowup: 100.0,
            probation: SimDuration::from_millis(600_000),
            outlier_factor: 8.0,
            quarantine_threshold: 4.0,
            ..GuardConfig::default()
        });
    }
    let mut trainer = trainer.with_robust_aggregation(policy, window);
    let name = policy.name();
    (trainer.run(test), name)
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let clients = args.get_usize("clients", 10);
    let window = args.get_usize("window", clients);
    let seed = args.get_u64("seed", 47);
    let epochs = args.get_usize("epochs", if quick { 2 } else { 12 });
    let batch = args.get_usize("batch", if quick { 8 } else { 32 });
    let train_n = args.get_usize("samples", if quick { 240 } else { 3200 });
    let gain = args.get_f32("gain", if quick { 3.0 } else { 5.0 }) as f64;
    let adam = args.get_flag("adam");
    let lr = args.get_f32("lr", if adam { 0.005 } else { 0.05 });
    let fractions: Vec<f64> = if quick {
        vec![0.0, 0.3]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.4]
    };

    let seeds_n = args.get_usize("seeds", if quick { 1 } else { 3 });
    let difficulty = args.get_f32("difficulty", if quick { 0.12 } else { 0.06 });
    let (train, test, source) = load_data(train_n, 160, 16, seed, difficulty);
    println!(
        "E15 poison sweep — {} data, {} end-systems, sign-flip gain {}, window {}, epochs {}, {} seed(s)/row",
        source, clients, gain, window, epochs, seeds_n
    );

    // `--policy <name>` restricts the sweep to matching defense stacks
    // (substring match on the policy label) for fast iteration on one
    // column of the table.
    let policy_filter = args.get_str("policy", "");

    let mut rows: Vec<PoisonRow> = Vec::new();
    for (policy, guard) in defenses() {
        if !policy_filter.is_empty() && !policy.name().contains(policy_filter.as_str()) {
            continue;
        }
        let mut baseline = 0.0f32;
        for &fraction in &fractions {
            let attackers = (fraction * clients as f64).round() as usize;
            let mut acc_sum = 0.0f64;
            let mut fleet_sum = 0.0f64;
            let mut name = "";
            let mut injected = 0u64;
            let mut applies = 0u64;
            let mut outliers = 0u64;
            let mut trimmed = 0u64;
            let mut quarantines = 0u64;
            let mut rollbacks = 0u64;
            let mut served = 0u64;
            let mut sim_seconds = 0.0f64;
            for k in 0..seeds_n {
                let (r, n) = run_once(
                    policy,
                    guard,
                    attackers,
                    clients,
                    window,
                    gain,
                    epochs,
                    batch,
                    lr,
                    adam,
                    seed + 1000 * k as u64,
                    &train,
                    &test,
                );
                name = n;
                if seeds_n > 1 {
                    println!(
                        "    [seed {}] {:>13} attackers {:>2}  active {:>5.1}%  fleet {:>5.1}%  quarantines {}  rollbacks {}",
                        seed + 1000 * k as u64,
                        n,
                        attackers,
                        r.active_accuracy * 100.0,
                        r.final_accuracy * 100.0,
                        r.quarantines,
                        r.rollbacks,
                    );
                }
                acc_sum += r.active_accuracy as f64;
                fleet_sum += r.final_accuracy as f64;
                injected += r.attacks_injected;
                applies += r.robust_applies;
                outliers += r.robust_outliers;
                trimmed += r.updates_trimmed;
                quarantines += r.quarantines;
                rollbacks += r.rollbacks;
                served += r.served_per_client.iter().sum::<u64>();
                sim_seconds += r.sim_seconds;
            }
            let accuracy = (acc_sum / seeds_n as f64) as f32;
            let fleet_accuracy = (fleet_sum / seeds_n as f64) as f32;
            if fraction == 0.0 {
                baseline = accuracy;
            }
            let row = PoisonRow {
                policy: name,
                attacker_fraction: fraction,
                attackers,
                seeds: seeds_n,
                attacks_injected: injected,
                robust_applies: applies,
                robust_outliers: outliers,
                updates_trimmed: trimmed,
                quarantines,
                rollbacks,
                served_total: served,
                sim_seconds,
                accuracy,
                fleet_accuracy,
                degradation_pts: (baseline - accuracy) * 100.0,
            };
            println!(
                "  {:>13}  attackers {:>2}/{:<2}  injected {:>4}  applies {:>3}  outliers {:>3}  trimmed {:>4}  quarantines {:>3}  active {:>5.1}%  fleet {:>5.1}%  Δ {:+.1} pts",
                row.policy,
                row.attackers,
                clients,
                row.attacks_injected,
                row.robust_applies,
                row.robust_outliers,
                row.updates_trimmed,
                row.quarantines,
                row.accuracy * 100.0,
                row.fleet_accuracy * 100.0,
                -row.degradation_pts,
            );
            rows.push(row);
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                format!("{:.0}%", r.attacker_fraction * 100.0),
                format!("{}", r.attacks_injected),
                format!("{}", r.robust_outliers),
                format!("{}", r.updates_trimmed),
                format!("{}", r.quarantines),
                format!("{:.1}%", r.accuracy * 100.0),
                format!("{:.1}%", r.fleet_accuracy * 100.0),
                format!("{:+.1}", -r.degradation_pts),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "policy",
                "attackers",
                "injected",
                "outliers",
                "trimmed",
                "quarantines",
                "active acc",
                "fleet acc",
                "Δ vs clean (pts)"
            ],
            &table
        )
    );

    let sweep = PoisonSweep {
        data_source: source.to_string(),
        clients,
        window,
        attack: format!("sign_flip(gain={gain})"),
        fractions,
        rows,
    };
    let data_json = serde_json::to_string_pretty(&sweep).expect("serialize sweep");
    write_results_deterministic("poison", "poison_sweep", seed, &data_json);
}
