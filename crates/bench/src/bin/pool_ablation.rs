//! **E9 (ablation)** — does *max* pooling specifically hide the image?
//!
//! The paper's Fig. 4 narrative credits max-pooling with destroying the
//! input: "max-pooling can definitely hide original images". This ablation
//! swaps every max-pool for an average-pool (a *linear* operator) and
//! re-measures both Fig. 4 structural similarity and inversion leakage.
//! Because average pooling is linear, a regression attack inverts it far
//! better — confirming that the nonlinearity of max-pooling is doing real
//! privacy work, not just the downsampling.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin pool_ablation
//! cargo run -p stsl-bench --release --bin pool_ablation -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_privacy::measure_leakage;
use stsl_privacy::visualize::{capture_stages, stage_similarity};
use stsl_split::{CnnArch, CutPoint, PoolKind, SpatioTemporalTrainer, SplitConfig};

#[derive(Serialize)]
struct Row {
    pool: String,
    accuracy: f32,
    post_pool_similarity: f32,
    attack_psnr_db: f32,
    attack_ssim: f32,
    dcor: f32,
}

#[derive(Serialize)]
struct PoolAblation {
    data_source: String,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (train_n, epochs, aux_n, attack_epochs) = if quick {
        (200usize, 1usize, 300usize, 6usize)
    } else {
        (
            args.get_usize("samples", 800),
            args.get_usize("epochs", 3),
            800,
            15,
        )
    };
    let seed = args.get_u64("seed", 37);
    let difficulty = args.get_f32("difficulty", 0.1);
    let (train, test, source) = load_data(train_n, 150, 16, seed, difficulty);
    let (aux, victims, _) = load_data(aux_n, 32, 16, seed ^ 0x77, difficulty);
    println!(
        "E9 pooling ablation — {} data, cut 1, max vs avg pooling",
        source
    );

    let mut rows = Vec::new();
    for pool in [PoolKind::Max, PoolKind::Avg] {
        let mut arch = CnnArch::tiny();
        arch.pool = pool;
        let cfg = SplitConfig::new(CutPoint(1), 1)
            .arch(arch)
            .epochs(epochs)
            .seed(seed);
        let mut trainer = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
        let report = trainer.train(&test);
        let client = trainer.clients_mut().first_mut().expect("client");
        // Fig. 4 structural similarity at the post-pool stage, averaged
        // over one image per class.
        let mut sim = 0.0;
        let mut samples = 0;
        for class in 0..test.num_classes() {
            if let Some(idx) = (0..test.len()).find(|&i| test.label(i) == class) {
                let img = test.image(idx);
                let stages = capture_stages(client.model_mut(), &img);
                sim += stage_similarity(&img, &stages[3].activation);
                samples += 1;
            }
        }
        sim /= samples.max(1) as f32;
        let leak = measure_leakage(|x| client.encode(x), &aux, &victims, attack_epochs, seed);
        println!(
            "  {}-pool: accuracy {:.1}%  post-pool similarity {:.3}  attack psnr {:.2} dB  ssim {:.3}",
            pool,
            report.final_accuracy * 100.0,
            sim,
            leak.psnr_db,
            leak.ssim
        );
        rows.push(Row {
            pool: pool.to_string(),
            accuracy: report.final_accuracy,
            post_pool_similarity: sim,
            attack_psnr_db: leak.psnr_db,
            attack_ssim: leak.ssim,
            dcor: leak.dcor,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pool.clone(),
                format!("{:.1}%", r.accuracy * 100.0),
                format!("{:.3}", r.post_pool_similarity),
                format!("{:.2}", r.attack_psnr_db),
                format!("{:.3}", r.attack_ssim),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "pooling",
                "accuracy",
                "post-pool similarity",
                "attack PSNR (dB)",
                "SSIM"
            ],
            &table
        )
    );
    if rows.len() == 2 && rows[1].attack_psnr_db > rows[0].attack_psnr_db {
        println!("=> average pooling leaks more: max-pooling's nonlinearity is doing privacy work, as the paper claims");
    }

    write_results(
        "pool",
        "pool_ablation",
        seed,
        &PoolAblation {
            data_source: source.to_string(),
            rows,
        },
    );
}
