//! **E4** — queueing, staleness and parameter scheduling under
//! geo-distributed latency (paper §II).
//!
//! The paper argues the server "requires queue" and that "parameter
//! scheduling is required" because far-away end-systems arrive late and
//! bias learning. This experiment measures that: for increasing latency
//! spread across end-systems it reports queue depth, queueing delay,
//! per-client service imbalance and final accuracy under three scheduling
//! policies (FIFO, round-robin, staleness-drop).
//!
//! ```text
//! cargo run -p stsl-bench --release --bin queue_sweep
//! cargo run -p stsl-bench --release --bin queue_sweep -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_simnet::{SimDuration, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, SchedulingPolicy, SplitConfig,
};

#[derive(Serialize)]
struct Row {
    policy: String,
    latency_spread_ms: f64,
    sim_seconds: f64,
    mean_queue_depth: f64,
    max_queue_depth: usize,
    mean_queue_wait_ms: f64,
    service_imbalance: f64,
    scheduler_drops: u64,
    served_per_client: Vec<u64>,
    accuracy: f32,
}

#[derive(Serialize)]
struct QueueSweep {
    data_source: String,
    end_systems: usize,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (arch, side, train_n, budget_s) = if quick {
        (CnnArch::tiny(), 16, 240, args.get_f32("budget", 2.0) as f64)
    } else {
        (
            CnnArch::tiny(),
            16,
            args.get_usize("samples", 1_000),
            args.get_f32("budget", 20.0) as f64,
        )
    };
    let clients = args.get_usize("clients", 4);
    let seed = args.get_u64("seed", 21);
    let spreads: Vec<f64> = if quick {
        vec![1.0, 100.0]
    } else {
        vec![1.0, 25.0, 50.0, 100.0, 200.0]
    };

    let difficulty = args.get_f32("difficulty", 0.12);
    let (train, test, source) = load_data(train_n, 200, side, seed, difficulty);
    println!(
        "E4 queue/scheduling sweep — {} data, {} end-systems, fixed {:.0} s simulated budget per run",
        source, clients, budget_s
    );

    // Server is made deliberately slow relative to client compute so a
    // queue actually forms (the regime §II describes).
    let compute = ComputeModel {
        client_batch: SimDuration::from_millis(4),
        server_batch: SimDuration::from_millis(12),
        retry_timeout: SimDuration::from_millis(400),
    };
    let policies = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::StalenessDrop {
            max_age: SimDuration::from_millis(150),
        },
    ];

    let mut rows = Vec::new();
    for &spread in &spreads {
        // Latency gradient: nearest end-system 1 ms, farthest `spread` ms.
        let topology = StarTopology::latency_gradient(clients, 1.0, spread.max(1.0), 100.0);
        for policy in policies {
            // Many epochs: the fixed simulated-time budget terminates the
            // run, so per-client service counts reflect service *rates*
            // (the §II bias), not shard sizes.
            let cfg = SplitConfig::new(CutPoint(1), clients)
                .arch(arch.clone())
                .epochs(10_000)
                .batch_size(16)
                .seed(seed);
            let mut trainer =
                AsyncSplitTrainer::new(cfg, &train, topology.clone(), policy, compute)
                    .expect("valid config");
            let r = trainer.run_with_budget(&test, Some(SimDuration::from_secs_f64(budget_s)));
            println!(
                "  spread {:>5.0} ms  {:<22} depth {:.1} (max {:>2})  wait {:>7.1} ms  imbalance {:.3}  drops {}  acc {:.1}%",
                spread,
                r.policy,
                r.mean_queue_depth,
                r.max_queue_depth,
                r.mean_queue_wait_ms,
                r.service_imbalance,
                r.scheduler_drops,
                r.final_accuracy * 100.0
            );
            rows.push(Row {
                policy: r.policy.clone(),
                latency_spread_ms: spread,
                sim_seconds: r.sim_seconds,
                mean_queue_depth: r.mean_queue_depth,
                max_queue_depth: r.max_queue_depth,
                mean_queue_wait_ms: r.mean_queue_wait_ms,
                service_imbalance: r.service_imbalance,
                scheduler_drops: r.scheduler_drops,
                served_per_client: r.served_per_client.clone(),
                accuracy: r.final_accuracy,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.latency_spread_ms),
                r.policy.clone(),
                format!("{:.2}", r.mean_queue_depth),
                format!("{:.1}", r.mean_queue_wait_ms),
                format!("{:.3}", r.service_imbalance),
                format!("{}", r.scheduler_drops),
                format!("{:.1}%", r.accuracy * 100.0),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "spread (ms)",
                "policy",
                "mean depth",
                "wait (ms)",
                "imbalance",
                "drops",
                "accuracy"
            ],
            &table
        )
    );

    write_results(
        "queue",
        "queue_sweep",
        seed,
        &QueueSweep {
            data_source: source.to_string(),
            end_systems: clients,
            rows,
        },
    );
}
