//! **E5** — scalability in the number of end-systems (Fig. 1 vs Fig. 2).
//!
//! With the total data volume fixed, sweeps N ∈ {1, 2, 4, 8, …}: N = 1 is
//! vanilla split learning (Fig. 1), larger N is the paper's
//! spatio-temporal setting (Fig. 2). Reports accuracy (all data still
//! reaches one shared server model, so it should stay near-flat — the
//! paper's core claim) and simulated wall-clock time over a WAN topology
//! (more end-systems pipeline more batches concurrently).
//!
//! ```text
//! cargo run -p stsl-bench --release --bin scale_sweep
//! cargo run -p stsl-bench --release --bin scale_sweep -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{crossval_fleet_report, load_data, render_table, write_results, Args};
use stsl_simnet::{Link, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, SchedulingPolicy, SpatioTemporalTrainer,
    SplitConfig,
};

#[derive(Serialize)]
struct Row {
    end_systems: usize,
    accuracy_sync: f32,
    per_client_accuracy: Vec<f32>,
    sim_seconds_async: f64,
    uplink_mb: f64,
}

/// The 64-end-system row that goes through the cohort-sharded fleet path
/// instead of per-client replicas — the same `FleetConfig::crossval64()`
/// run that `fleet_sweep` records, so the two result files overlap on
/// this point (E16 cross-validation).
#[derive(Serialize)]
struct FleetRow {
    end_systems: usize,
    cohorts: usize,
    final_accuracy: f32,
    sim_seconds: f64,
    events_per_sim_sec: f64,
    mean_queue_depth: f64,
    cohort_steps: u64,
}

#[derive(Serialize)]
struct ScaleSweep {
    data_source: String,
    cut: usize,
    train_samples: usize,
    rows: Vec<Row>,
    fleet_row: FleetRow,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (arch, side, train_n, epochs) = if quick {
        (CnnArch::tiny(), 16, 240, 1)
    } else {
        (
            CnnArch::tiny(),
            16,
            args.get_usize("samples", 1_200),
            args.get_usize("epochs", 8),
        )
    };
    let cut = args.get_usize("cut", 1);
    let seed = args.get_u64("seed", 31);
    let ns: Vec<usize> = if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };

    let difficulty = args.get_f32("difficulty", 0.12);
    let (train, test, source) = load_data(train_n, 200, side, seed, difficulty);
    println!(
        "E5 scalability sweep — {} data, {} samples total, cut {}, {} epochs",
        source,
        train.len(),
        cut,
        epochs
    );

    let mut rows = Vec::new();
    for &n in &ns {
        let cfg = || {
            SplitConfig::new(CutPoint(cut), n)
                .arch(arch.clone())
                .epochs(epochs)
                .batch_size(16)
                .seed(seed)
        };
        // Accuracy from the idealized synchronous trainer.
        let mut sync = SpatioTemporalTrainer::new(cfg(), &train).expect("valid config");
        let report = sync.train(&test);
        // Simulated wall-clock from the async trainer on a 20 ms WAN.
        let topology = StarTopology::uniform(n, Link::wan(20.0, 100.0));
        let mut asynct = AsyncSplitTrainer::new(
            cfg(),
            &train,
            topology,
            SchedulingPolicy::RoundRobin,
            ComputeModel::default(),
        )
        .expect("valid config");
        let ar = asynct.run(&test);
        println!(
            "  N={:<2} accuracy {:.1}%  sim time {:.2}s  uplink {:.2} MB",
            n,
            report.final_accuracy * 100.0,
            ar.sim_seconds,
            report.comm.uplink_bytes as f64 / 1e6
        );
        rows.push(Row {
            end_systems: n,
            accuracy_sync: report.final_accuracy,
            per_client_accuracy: report.per_client_accuracy.clone(),
            sim_seconds_async: ar.sim_seconds,
            uplink_mb: report.comm.uplink_bytes as f64 / 1e6,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.end_systems),
                format!("{:.2}%", r.accuracy_sync * 100.0),
                format!("{:.2}", r.sim_seconds_async),
                format!("{:.2}", r.uplink_mb),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &["end-systems", "accuracy", "sim time (s)", "uplink (MB)"],
            &table
        )
    );
    println!(
        "N=1 is vanilla split learning (paper Fig. 1); N>1 is spatio-temporal (Fig. 2).\n\
         Accuracy stays near-flat because every batch still trains the one shared server model."
    );

    // Past the per-client-replica ceiling: 64 end-systems through the
    // cohort-sharded fleet path (identical run to fleet_sweep's 64 row).
    let fr = crossval_fleet_report();
    println!(
        "\n  N=64 (cohort path, K={}) accuracy {:.1}%  sim time {:.2}s  \
         mean depth {:.2}  {:.0} ev/sim-s",
        fr.cohorts,
        fr.final_accuracy * 100.0,
        fr.sim_seconds,
        fr.mean_queue_depth,
        fr.events_per_sim_sec
    );
    let fleet_row = FleetRow {
        end_systems: fr.clients,
        cohorts: fr.cohorts,
        final_accuracy: fr.final_accuracy,
        sim_seconds: fr.sim_seconds,
        events_per_sim_sec: fr.events_per_sim_sec,
        mean_queue_depth: fr.mean_queue_depth,
        cohort_steps: fr.cohort_steps,
    };

    write_results(
        "scale",
        "scale_sweep",
        seed,
        &ScaleSweep {
            data_source: source.to_string(),
            cut,
            train_samples: train.len(),
            rows,
            fleet_row,
        },
    );
}
