//! **Table I** — classification accuracy vs. layers at the end-systems.
//!
//! Reproduces the paper's headline result: accuracy is highest when all
//! layers live at the server (cut 0) and degrades monotonically (a few
//! points) as more blocks `L_1..L_k` become private per-end-system,
//! because each end-system's private encoder trains only on its own shard
//! and is never averaged.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin table1                # standard
//! cargo run -p stsl-bench --release --bin table1 -- --quick    # CI smoke
//! cargo run -p stsl-bench --release --bin table1 -- --full     # paper scale
//! cargo run -p stsl-bench --release --bin table1 -- --dirichlet 0.3
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_split::{
    baselines::CentralizedTrainer, CnnArch, CutPoint, PartitionKind, SpatioTemporalTrainer,
    SplitConfig,
};

#[derive(Serialize)]
struct Row {
    cut: usize,
    label: String,
    accuracy: f32,
    degradation_pts: f32,
    per_client: Vec<f32>,
    uplink_mb: f64,
}

#[derive(Serialize)]
struct Table1 {
    data_source: String,
    end_systems: usize,
    train_samples: usize,
    epochs: usize,
    paper_accuracy: Vec<(usize, f32)>,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let full = args.get_flag("full");
    let (arch, side, train_n, test_n, epochs) = if quick {
        (CnnArch::tiny(), 16, 300, 100, args.get_usize("epochs", 3))
    } else if full {
        (
            CnnArch::paper(),
            32,
            20_000,
            4_000,
            args.get_usize("epochs", 15),
        )
    } else {
        (
            CnnArch::paper(),
            32,
            args.get_usize("samples", 2_000),
            500,
            args.get_usize("epochs", 6),
        )
    };
    let clients = args.get_usize("clients", 4);
    let seed = args.get_u64("seed", 42);
    let lr = args.get_f32("lr", 0.01);
    let dirichlet = args.get_f32("dirichlet", 0.0);
    let max_cut = args.get_usize("max-cut", (arch.blocks() - 1).min(4));
    // Harder synthetic noise at paper scale keeps the ceiling near the
    // paper's ~71 % instead of saturating.
    let difficulty = args.get_f32("difficulty", if quick { 0.12 } else { 0.35 });

    let (train, test, source) = load_data(train_n, test_n, side, seed, difficulty);
    println!(
        "Table I reproduction — {} data, {} train / {} test, {} end-systems, {} epochs",
        source,
        train.len(),
        test.len(),
        clients,
        epochs
    );

    let partition = if dirichlet > 0.0 {
        PartitionKind::Dirichlet { alpha: dirichlet }
    } else {
        PartitionKind::Iid
    };

    let mut rows = Vec::new();
    let mut baseline_acc = 0.0f32;
    for cut in 0..=max_cut {
        let cfg = SplitConfig::new(CutPoint(cut), clients)
            .arch(arch.clone())
            .epochs(epochs)
            .learning_rate(lr)
            .partition(partition)
            .seed(seed);
        let started = stsl_split::WallTimer::start();
        let report = if cut == 0 {
            // Cut 0 is the paper's "global model": identical to centralized
            // training on pooled data (verified by the equivalence tests).
            let mut t = CentralizedTrainer::new(cfg).expect("valid config");
            t.train(&train, &test)
        } else {
            let mut t = SpatioTemporalTrainer::new(cfg, &train).expect("valid config");
            t.train(&test)
        };
        let acc = report.best_accuracy();
        if cut == 0 {
            baseline_acc = acc;
        }
        println!(
            "  cut {} [{}]: accuracy {:.2}% ({:.1}s)",
            cut,
            report.label,
            acc * 100.0,
            started.seconds()
        );
        rows.push(Row {
            cut,
            label: report.label.clone(),
            accuracy: acc,
            degradation_pts: (baseline_acc - acc) * 100.0,
            per_client: report.per_client_accuracy.clone(),
            uplink_mb: report.comm.uplink_bytes as f64 / 1e6,
        });
    }

    let paper = vec![
        (0usize, 71.09f32),
        (1, 68.18),
        (2, 67.92),
        (3, 66.00),
        (4, 65.66),
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let paper_acc = paper
                .iter()
                .find(|(c, _)| *c == r.cut)
                .map(|(_, a)| format!("{:.2}%", a))
                .unwrap_or_else(|| "—".into());
            vec![
                r.label.clone(),
                format!("{:.2}%", r.accuracy * 100.0),
                format!("{:.2}", r.degradation_pts),
                paper_acc,
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "Layers at end-systems",
                "Accuracy (ours)",
                "Degradation (pts)",
                "Paper"
            ],
            &table_rows
        )
    );

    write_results(
        "table1",
        "table1",
        seed,
        &Table1 {
            data_source: source.to_string(),
            end_systems: clients,
            train_samples: train.len(),
            epochs,
            paper_accuracy: paper,
            rows,
        },
    );
}
