//! **E12** — deterministic observability: latency/staleness/queue-depth
//! distributions, the event journal, and the live dashboard.
//!
//! Runs the asynchronous trainer over a latency-gradient star topology
//! with the telemetry hub attached, prints the final dashboard snapshot,
//! and writes `results/telemetry.json`: per-end-system p50/p90/p99
//! uplink/downlink latency, gradient staleness and service-time
//! histograms plus the sim-time-stamped event journal.
//!
//! The output is part of the determinism contract: every value derives
//! from simulated time, so the file is bitwise identical for any
//! `STSL_THREADS` (CI diffs the bytes across thread counts). The results
//! envelope therefore omits the thread count.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin telemetry_report
//! cargo run -p stsl-bench --release --bin telemetry_report -- --quick
//! ```

use stsl_bench::{load_data, render_table, write_results_deterministic, Args};
use stsl_simnet::{SimDuration, StarTopology};
use stsl_split::{
    AsyncSplitTrainer, CnnArch, ComputeModel, CutPoint, SchedulingPolicy, SplitConfig,
};
use stsl_telemetry::{render_dashboard, MetricId};

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (train_n, budget_s) = if quick {
        (240, args.get_f32("budget", 2.0) as f64)
    } else {
        (
            args.get_usize("samples", 1_000),
            args.get_f32("budget", 15.0) as f64,
        )
    };
    let clients = args.get_usize("clients", 4);
    let seed = args.get_u64("seed", 51);
    let snapshot_ms = args.get_u64("snapshot-ms", 250);
    let journal_cap = args.get_usize("journal-cap", 4096);

    let difficulty = args.get_f32("difficulty", 0.12);
    let (train, test, source) = load_data(train_n, 160, 16, seed, difficulty);
    println!(
        "E12 telemetry report — {} data, {} end-systems, {:.0} s simulated budget, snapshot every {} ms",
        source, clients, budget_s, snapshot_ms
    );

    // Latency gradient (1..120 ms) so the per-end-system latency and
    // staleness distributions actually differ; slow server so a queue
    // forms and queue-depth has something to show.
    let topology = StarTopology::latency_gradient(clients, 1.0, 120.0, 100.0);
    let compute = ComputeModel {
        client_batch: SimDuration::from_millis(4),
        server_batch: SimDuration::from_millis(10),
        retry_timeout: SimDuration::from_millis(400),
    };
    let cfg = SplitConfig::new(CutPoint(1), clients)
        .arch(CnnArch::tiny())
        .epochs(10_000)
        .batch_size(16)
        .seed(seed);
    let mut trainer =
        AsyncSplitTrainer::new(cfg, &train, topology, SchedulingPolicy::Fifo, compute)
            .expect("valid config")
            .with_telemetry(SimDuration::from_millis(snapshot_ms), journal_cap);
    trainer.enable_trace();

    let r = trainer.run_with_budget(&test, Some(SimDuration::from_secs_f64(budget_s)));
    let hub = trainer.telemetry().expect("telemetry enabled");

    println!();
    match hub.latest_snapshot() {
        Some(snap) => println!("{}", render_dashboard(snap)),
        None => println!("(no snapshot emitted)"),
    }

    // Per-end-system latency/staleness summary table.
    let mut rows = Vec::new();
    for actor in 0..clients as u64 {
        let cell = |metric: MetricId| match hub.registry().histogram(metric, actor) {
            Some(h) => format!("{}/{}/{}", h.p50(), h.p90(), h.p99()),
            None => "-".to_string(),
        };
        rows.push(vec![
            format!("{}", actor),
            cell(MetricId::UplinkLatency),
            cell(MetricId::DownlinkLatency),
            cell(MetricId::GradientStaleness),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "end-system",
                "uplink p50/p90/p99 (us)",
                "downlink p50/p90/p99 (us)",
                "staleness p50/p90/p99 (us)"
            ],
            &rows
        )
    );
    println!(
        "snapshots {}  journal events {} (evicted {})  served {:?}",
        r.snapshots_emitted,
        hub.journal_log().len(),
        r.journal_dropped,
        r.served_per_client
    );

    // Hand-rendered payload: every value is simulated-time-derived, so
    // the bytes must not depend on the thread count.
    let data_json = format!(
        "{{\"data_source\":\"{}\",\"end_systems\":{},\"policy\":\"{}\",\"sim_seconds\":{},\"snapshots_emitted\":{},\"journal_dropped\":{},\"telemetry\":{}}}",
        source,
        clients,
        r.policy,
        r.sim_seconds,
        r.snapshots_emitted,
        r.journal_dropped,
        hub.export_json()
    );
    write_results_deterministic("telemetry", "telemetry_report", seed, &data_json);
}
