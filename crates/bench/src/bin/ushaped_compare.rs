//! **E8 (extension)** — label-sharing vs U-shaped (label-private) split
//! learning.
//!
//! The paper's protocol sends labels with the activations; the U-shaped
//! variant (its ref. [3]) keeps the loss and the final layer at the
//! end-system so labels never leave. This experiment compares the two on
//! the same data: accuracy, communication bytes and messages per epoch.
//!
//! ```text
//! cargo run -p stsl-bench --release --bin ushaped_compare
//! cargo run -p stsl-bench --release --bin ushaped_compare -- --quick
//! ```

use serde::Serialize;
use stsl_bench::{load_data, render_table, write_results, Args};
use stsl_split::{CnnArch, CutPoint, SpatioTemporalTrainer, SplitConfig, UShapedTrainer};

#[derive(Serialize)]
struct Row {
    protocol: String,
    cut: usize,
    accuracy: f32,
    total_mb: f64,
    messages: u64,
    labels_leave_site: bool,
}

#[derive(Serialize)]
struct UShapedCompare {
    data_source: String,
    end_systems: usize,
    epochs: usize,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let (train_n, epochs) = if quick {
        (240usize, 1usize)
    } else {
        (
            args.get_usize("samples", 1_000),
            args.get_usize("epochs", 4),
        )
    };
    let clients = args.get_usize("clients", 2);
    let seed = args.get_u64("seed", 29);
    let cuts: Vec<usize> = if quick { vec![1] } else { vec![1, 2] };

    let difficulty = args.get_f32("difficulty", 0.1);
    let (train, test, source) = load_data(train_n, 150, 16, seed, difficulty);
    println!(
        "E8 protocol comparison — {} data, {} end-systems, {} epochs",
        source, clients, epochs
    );

    let mut rows = Vec::new();
    for &cut in &cuts {
        let cfg = || {
            SplitConfig::new(CutPoint(cut), clients)
                .arch(CnnArch::tiny())
                .epochs(epochs)
                .seed(seed)
        };
        let mut standard = SpatioTemporalTrainer::new(cfg(), &train).expect("valid config");
        let rs = standard.train(&test);
        rows.push(Row {
            protocol: "label-sharing (paper)".into(),
            cut,
            accuracy: rs.final_accuracy,
            total_mb: rs.comm.total_bytes() as f64 / 1e6,
            messages: rs.comm.uplink_messages + rs.comm.downlink_messages,
            labels_leave_site: true,
        });
        let mut ushaped = UShapedTrainer::new(cfg(), &train).expect("valid config");
        let ru = ushaped.train(&test);
        rows.push(Row {
            protocol: "u-shaped (label-private)".into(),
            cut,
            accuracy: ru.final_accuracy,
            total_mb: ru.comm.total_bytes() as f64 / 1e6,
            messages: ru.comm.uplink_messages + ru.comm.downlink_messages,
            labels_leave_site: false,
        });
        println!(
            "  cut {}: label-sharing {:.1}% / {:.2} MB   u-shaped {:.1}% / {:.2} MB",
            cut,
            rs.final_accuracy * 100.0,
            rs.comm.total_bytes() as f64 / 1e6,
            ru.final_accuracy * 100.0,
            ru.comm.total_bytes() as f64 / 1e6
        );
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.cut),
                r.protocol.clone(),
                format!("{:.1}%", r.accuracy * 100.0),
                format!("{:.2}", r.total_mb),
                format!("{}", r.messages),
                if r.labels_leave_site {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "cut",
                "protocol",
                "accuracy",
                "total MB",
                "messages",
                "labels leave?"
            ],
            &table
        )
    );
    println!("u-shaped doubles the per-batch round trips but keeps labels on site");

    write_results(
        "ushaped",
        "ushaped_compare",
        seed,
        &UShapedCompare {
            data_source: source.to_string(),
            end_systems: clients,
            epochs,
            rows,
        },
    );
}
