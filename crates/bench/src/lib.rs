//! Shared plumbing for the experiment binaries: a tiny argument parser,
//! dataset construction (real CIFAR-10 if present, synthetic otherwise),
//! markdown table rendering and JSON result persistence.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; see DESIGN.md §4 for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod results;

pub use results::{write_results, write_results_deterministic, RESULTS_SCHEMA};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use stsl_data::{cifar, ImageDataset, SyntheticCifar};

/// Minimal `--key value` / `--flag` argument parser.
///
/// # Examples
///
/// ```
/// use stsl_bench::Args;
///
/// let args = Args::parse_from(vec!["--epochs".into(), "5".into(), "--quick".into()]);
/// assert_eq!(args.get_usize("epochs", 10), 5);
/// assert!(args.get_flag("quick"));
/// assert_eq!(args.get_f32("lr", 0.01), 0.01);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// A malformed command-line value: which flag, and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    /// The flag (without the leading `--`) whose value failed to parse.
    pub flag: String,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "usage error: {}", self.message)
    }
}

impl std::error::Error for UsageError {}

impl UsageError {
    /// Prints the error to stderr and exits with the conventional usage
    /// status code 2 (never returns).
    pub fn exit(&self) -> ! {
        eprintln!("{}", self);
        std::process::exit(2);
    }
}

impl Args {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn parse() -> Self {
        Args::parse_from(std::env::args().skip(1).collect())
    }

    /// Parses an explicit token list.
    pub fn parse_from(tokens: Vec<String>) -> Self {
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            let Some(name) = tok.strip_prefix("--") else {
                eprintln!("ignoring stray argument {:?}", tok);
                i += 1;
                continue;
            };
            if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                args.values.insert(name.to_string(), tokens[i + 1].clone());
                i += 2;
            } else {
                args.flags.push(name.to_string());
                i += 1;
            }
        }
        args
    }

    /// Integer option with default, reporting an unparsable value as a
    /// [`UsageError`] naming the offending flag.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError`] when the value is present but not an integer.
    pub fn try_usize(&self, name: &str, default: usize) -> Result<usize, UsageError> {
        self.try_parse(name, default, "an integer")
    }

    /// Float option with default.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError`] when the value is present but not a number.
    pub fn try_f32(&self, name: &str, default: f32) -> Result<f32, UsageError> {
        self.try_parse(name, default, "a number")
    }

    /// u64 option with default.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError`] when the value is present but not an integer.
    pub fn try_u64(&self, name: &str, default: u64) -> Result<u64, UsageError> {
        self.try_parse(name, default, "an integer")
    }

    fn try_parse<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &str,
    ) -> Result<T, UsageError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| UsageError {
                flag: name.to_string(),
                message: format!("--{} expects {}, got {:?}", name, expected, v),
            }),
        }
    }

    /// Integer option with default; exits with a usage error (code 2) on
    /// an unparsable value.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.try_usize(name, default).unwrap_or_else(|e| e.exit())
    }

    /// Float option with default; exits with a usage error (code 2) on an
    /// unparsable value.
    pub fn get_f32(&self, name: &str, default: f32) -> f32 {
        self.try_f32(name, default).unwrap_or_else(|e| e.exit())
    }

    /// u64 option with default; exits with a usage error (code 2) on an
    /// unparsable value.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.try_u64(name, default).unwrap_or_else(|e| e.exit())
    }

    /// String option with default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean flag.
    pub fn get_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Where experiment outputs land (`results/` at the workspace root, or
/// `$STSL_RESULTS`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("STSL_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("create results directory");
    path
}

/// The training/evaluation data for an experiment: real CIFAR-10 when the
/// binary directory is available (point `STSL_CIFAR_DIR` or pass a path),
/// the synthetic generator otherwise (see DESIGN.md §2).
///
/// `difficulty` is the synthetic generator's pixel-noise level (ignored
/// for real CIFAR-10); the Table I experiments use ~0.35 so the accuracy
/// ceiling sits near the paper's ~71 % rather than saturating.
pub fn load_data(
    train_n: usize,
    test_n: usize,
    side: usize,
    seed: u64,
    difficulty: f32,
) -> (ImageDataset, ImageDataset, &'static str) {
    if side == 32 {
        if let Ok(dir) = std::env::var("STSL_CIFAR_DIR") {
            if cifar::is_available(&dir) {
                let (train, test) = cifar::load_dir(Path::new(&dir)).expect("load cifar");
                let train_idx: Vec<usize> = (0..train.len().min(train_n)).collect();
                let test_idx: Vec<usize> = (0..test.len().min(test_n)).collect();
                return (train.subset(&train_idx), test.subset(&test_idx), "cifar10");
            }
        }
    }
    let train = SyntheticCifar::new(seed)
        .difficulty(difficulty)
        .generate_sized(train_n, side);
    let test = SyntheticCifar::new(seed ^ 0xDEAD_BEEF)
        .difficulty(difficulty)
        .generate_sized(test_n, side);
    (train, test, "synthetic")
}

/// The fixed dataset both `scale_sweep` and `fleet_sweep` use for their
/// shared 64-client cohort-path row (E16's cross-validation point).
/// Always synthetic (side 16 never hits the CIFAR path), so the
/// overlapping row is byte-comparable across machines and environments.
pub fn crossval_fleet_data() -> (ImageDataset, ImageDataset) {
    let seed = stsl_split::FleetConfig::crossval64().seed;
    let (train, test, _) = load_data(320, 120, 16, seed, 0.12);
    (train, test)
}

/// Runs the shared 64-client / 4-cohort fleet configuration on the
/// shared dataset — the exact computation whose results must agree
/// between `results/scale.json` and `results/fleet.json`.
pub fn crossval_fleet_report() -> stsl_split::FleetReport {
    let (train, test) = crossval_fleet_data();
    let mut fleet = stsl_split::FleetTrainer::new(stsl_split::FleetConfig::crossval64(), &train)
        .expect("crossval64 config is valid");
    fleet.run(&test)
}

/// Renders a markdown table with padded columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&fmt_row(&sep));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::parse_from(vec![
            "--epochs".into(),
            "3".into(),
            "--quick".into(),
            "--lr".into(),
            "0.5".into(),
        ]);
        assert_eq!(a.get_usize("epochs", 1), 3);
        assert_eq!(a.get_f32("lr", 0.0), 0.5);
        assert!(a.get_flag("quick"));
        assert!(!a.get_flag("full"));
        assert_eq!(a.get_str("mode", "default"), "default");
    }

    #[test]
    fn args_negative_like_tokens() {
        let a = Args::parse_from(vec!["--seed".into(), "42".into(), "--verbose".into()]);
        assert_eq!(a.get_u64("seed", 0), 42);
        assert!(a.get_flag("verbose"));
    }

    #[test]
    fn malformed_values_are_usage_errors_naming_the_flag() {
        let a = Args::parse_from(vec![
            "--epochs".into(),
            "three".into(),
            "--lr".into(),
            "fast".into(),
        ]);
        let err = a.try_usize("epochs", 1).unwrap_err();
        assert_eq!(err.flag, "epochs");
        assert!(err.to_string().contains("--epochs"));
        assert!(err.to_string().contains("integer"));
        let err = a.try_f32("lr", 0.1).unwrap_err();
        assert_eq!(err.flag, "lr");
        assert!(err.to_string().contains("--lr"));
        let err = a.try_u64("epochs", 0).unwrap_err();
        assert_eq!(err.flag, "epochs");
        // Absent or well-formed values never error.
        assert_eq!(a.try_usize("batch", 16).unwrap(), 16);
        let ok = Args::parse_from(vec!["--epochs".into(), "7".into()]);
        assert_eq!(ok.try_usize("epochs", 1).unwrap(), 7);
    }

    #[test]
    fn synthetic_data_fallback() {
        let (train, test, source) = load_data(20, 10, 16, 0, 0.1);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(source, "synthetic");
    }

    #[test]
    fn table_renders_with_padding() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert_eq!(lines[2].len(), lines[3].len());
    }
}
