//! Shared result persistence for the experiment binaries.
//!
//! Every bin used to hand-roll its own `results/*.json` write; this
//! module gives them one envelope and one atomic writer. The envelope
//! carries a schema tag plus the three facts a reader needs to reproduce
//! the file — which bin wrote it, under which seed, and at which
//! `STSL_THREADS` — with the payload under `data`:
//!
//! ```json
//! {
//!   "schema": "stsl-results/v1",
//!   "bin": "table1",
//!   "seed": 42,
//!   "stsl_threads": 4,
//!   "data": { ... }
//! }
//! ```
//!
//! Files are written to a temporary sibling and renamed into place, so a
//! crashed run never leaves a truncated JSON file where a good one stood.
//!
//! [`write_results_deterministic`] omits `stsl_threads` for outputs that
//! must be bitwise identical across thread counts (the telemetry report's
//! determinism contract is checked by diffing the bytes).

use crate::results_dir;
use serde::Serialize;
use std::path::Path;

/// Schema tag stamped into every results envelope.
pub const RESULTS_SCHEMA: &str = "stsl-results/v1";

/// Serializes `data` inside the versioned envelope into
/// `results/<name>.json` (atomically). `bin` is the writing binary's
/// name, `seed` its run seed.
pub fn write_results<T: Serialize>(name: &str, bin: &str, seed: u64, data: &T) {
    let payload = serde_json::to_string_pretty(data).expect("serialize result");
    let json = envelope(bin, seed, Some(stsl_parallel::max_threads()), &payload);
    persist(name, &json);
}

/// Like [`write_results`] but takes the payload as pre-rendered JSON and
/// omits the `stsl_threads` field, for outputs whose bytes must not vary
/// with the thread count.
pub fn write_results_deterministic(name: &str, bin: &str, seed: u64, data_json: &str) {
    let json = envelope(bin, seed, None, data_json);
    persist(name, &json);
}

/// Renders the envelope around an already-serialized payload. The
/// envelope is assembled textually because the payload type is generic
/// and the key order must be fixed.
fn envelope(bin: &str, seed: u64, threads: Option<usize>, payload: &str) -> String {
    let threads_field = match threads {
        Some(n) => format!("\n  \"stsl_threads\": {},", n),
        None => String::new(),
    };
    // Re-indent the payload so nested objects stay readable.
    let indented = payload.replace('\n', "\n  ");
    format!(
        "{{\n  \"schema\": \"{}\",\n  \"bin\": \"{}\",\n  \"seed\": {},{}\n  \"data\": {}\n}}\n",
        RESULTS_SCHEMA, bin, seed, threads_field, indented
    )
}

/// Writes `json` to `results/<name>.json` via a temp file and rename.
fn persist(name: &str, json: &str) {
    let dir = results_dir();
    let final_path = dir.join(format!("{}.json", name));
    let tmp_path = dir.join(format!("{}.json.tmp", name));
    write_atomic(&tmp_path, &final_path, json).expect("write result file");
    println!("\nwrote {}", final_path.display());
}

fn write_atomic(tmp: &Path, dst: &Path, contents: &str) -> std::io::Result<()> {
    std::fs::write(tmp, contents)?;
    std::fs::rename(tmp, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Serialize, Value};

    #[derive(Serialize)]
    struct Payload {
        rows: Vec<u64>,
    }

    fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
        match v {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("no field {name}")),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn envelope_has_schema_header_and_nested_data() {
        let json = envelope("demo", 7, Some(4), "{\n  \"rows\": [1]\n}");
        assert!(json.starts_with("{\n  \"schema\": \"stsl-results/v1\","));
        assert!(json.contains("\"bin\": \"demo\""));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"stsl_threads\": 4"));
        assert!(json.contains("\"rows\": [1]"));
        let v = serde_json::parse_value_str(&json).expect("valid json");
        assert_eq!(field(&v, "schema"), &Value::Str(RESULTS_SCHEMA.into()));
        assert_eq!(field(&v, "stsl_threads"), &Value::U64(4));
    }

    #[test]
    fn deterministic_envelope_omits_thread_count() {
        let json = envelope("demo", 7, None, "{}");
        assert!(!json.contains("stsl_threads"));
        let v = serde_json::parse_value_str(&json).expect("valid json");
        assert_eq!(field(&v, "seed"), &Value::U64(7));
    }

    #[test]
    fn write_results_lands_atomically_in_results_dir() {
        let tmp = std::env::temp_dir().join("stsl-results-test");
        std::fs::create_dir_all(&tmp).unwrap();
        // results_dir() honors STSL_RESULTS; the test process is
        // single-threaded per test binary invocation of this module.
        std::env::set_var("STSL_RESULTS", &tmp);
        write_results("envelope_smoke", "test-bin", 3, &Payload { rows: vec![9] });
        std::env::remove_var("STSL_RESULTS");
        let path = tmp.join("envelope_smoke.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!tmp.join("envelope_smoke.json.tmp").exists());
        let v = serde_json::parse_value_str(&text).unwrap();
        assert_eq!(field(&v, "bin"), &Value::Str("test-bin".into()));
        match field(field(&v, "data"), "rows") {
            Value::Array(items) => assert_eq!(items, &[Value::U64(9)]),
            other => panic!("expected array, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }
}
