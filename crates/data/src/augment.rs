//! Image augmentation (training-time regularization).

use rand::rngs::StdRng;
use rand::Rng;
use stsl_tensor::Tensor;

/// Horizontally mirrors an `[n, c, h, w]` batch.
///
/// # Panics
///
/// Panics if the input is not rank 4.
pub fn hflip(batch: &Tensor) -> Tensor {
    assert_eq!(batch.rank(), 4, "hflip expects NCHW, got {}", batch.shape());
    let (n, c, h, w) = (batch.dim(0), batch.dim(1), batch.dim(2), batch.dim(3));
    let src = batch.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for i in 0..n * c {
        for y in 0..h {
            let row = i * h * w + y * w;
            for x in 0..w {
                out[row + x] = src[row + (w - 1 - x)];
            }
        }
    }
    Tensor::from_vec(out, [n, c, h, w])
}

/// Zero-pads each side by `pad` then crops back to the original size at a
/// random offset — the classic CIFAR "pad-and-crop" augmentation.
///
/// # Panics
///
/// Panics if the input is not rank 4.
pub fn random_crop(batch: &Tensor, pad: usize, rng: &mut StdRng) -> Tensor {
    assert_eq!(
        batch.rank(),
        4,
        "random_crop expects NCHW, got {}",
        batch.shape()
    );
    if pad == 0 {
        return batch.clone();
    }
    let (n, c, h, w) = (batch.dim(0), batch.dim(1), batch.dim(2), batch.dim(3));
    let src = batch.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ni in 0..n {
        // One offset per image (not per channel).
        let dy = rng.gen_range(0..=2 * pad) as isize - pad as isize;
        let dx = rng.gen_range(0..=2 * pad) as isize - pad as isize;
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for y in 0..h {
                let sy = y as isize + dy;
                if sy < 0 || sy >= h as isize {
                    continue;
                }
                for x in 0..w {
                    let sx = x as isize + dx;
                    if sx < 0 || sx >= w as isize {
                        continue;
                    }
                    out[plane + y * w + x] = src[plane + sy as usize * w + sx as usize];
                }
            }
        }
    }
    Tensor::from_vec(out, [n, c, h, w])
}

/// Applies standard training augmentation: 50 % horizontal flip (per
/// batch) followed by pad-2 random crop.
pub fn standard_augment(batch: &Tensor, rng: &mut StdRng) -> Tensor {
    let flipped = if rng.gen::<bool>() {
        hflip(batch)
    } else {
        batch.clone()
    };
    random_crop(&flipped, 2, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn hflip_mirrors_columns() {
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 1, 4]);
        assert_eq!(hflip(&b).as_slice(), &[4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn hflip_is_involution() {
        let b = Tensor::randn([2, 3, 4, 4], &mut rng_from_seed(0));
        assert_eq!(hflip(&hflip(&b)), b);
    }

    #[test]
    fn crop_with_zero_pad_is_identity() {
        let b = Tensor::randn([1, 1, 4, 4], &mut rng_from_seed(1));
        assert_eq!(random_crop(&b, 0, &mut rng_from_seed(2)), b);
    }

    #[test]
    fn crop_preserves_shape_and_is_deterministic() {
        let b = Tensor::randn([2, 3, 8, 8], &mut rng_from_seed(3));
        let a1 = random_crop(&b, 2, &mut rng_from_seed(4));
        let a2 = random_crop(&b, 2, &mut rng_from_seed(4));
        assert_eq!(a1.dims(), b.dims());
        assert_eq!(a1, a2);
    }

    #[test]
    fn crop_shifts_content() {
        // A single bright pixel moves by exactly the sampled offset or
        // falls off the edge; either way the total mass never grows.
        let mut b = Tensor::zeros([1, 1, 8, 8]);
        b.set(&[0, 0, 4, 4], 1.0);
        let cropped = random_crop(&b, 2, &mut rng_from_seed(5));
        assert!(cropped.sum() <= 1.0 + 1e-6);
    }

    #[test]
    fn standard_augment_preserves_shape() {
        let b = Tensor::randn([4, 3, 32, 32], &mut rng_from_seed(6));
        let a = standard_augment(&b, &mut rng_from_seed(7));
        assert_eq!(a.dims(), b.dims());
    }
}
