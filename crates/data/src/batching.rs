//! Mini-batch iteration with seeded shuffling.

use crate::ImageDataset;
use rand::seq::SliceRandom;
use stsl_tensor::init::{derive_seed, rng_from_seed};
use stsl_tensor::Tensor;

/// A plan for iterating a dataset in mini-batches.
///
/// Shuffling is derived from `(seed, epoch)`, so every epoch gets a fresh
/// but reproducible order and two runs with the same seed see identical
/// batches — the property the split-learning determinism tests rely on.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    batch_size: usize,
    shuffle: bool,
    drop_last: bool,
    seed: u64,
}

impl BatchPlan {
    /// Creates a shuffled plan with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchPlan {
            batch_size,
            shuffle: true,
            drop_last: false,
            seed,
        }
    }

    /// Disables shuffling (builder style) — used for evaluation.
    pub fn sequential(mut self) -> Self {
        self.shuffle = false;
        self
    }

    /// Drops a trailing partial batch (builder style).
    pub fn drop_last(mut self) -> Self {
        self.drop_last = true;
        self
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Batch index lists for `epoch`.
    pub fn epoch_indices(&self, len: usize, epoch: u64) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..len).collect();
        if self.shuffle {
            idx.shuffle(&mut rng_from_seed(derive_seed(self.seed, epoch)));
        }
        let mut batches: Vec<Vec<usize>> =
            idx.chunks(self.batch_size).map(|c| c.to_vec()).collect();
        if self.drop_last {
            batches.retain(|b| b.len() == self.batch_size);
        }
        batches
    }

    /// Iterates `(images, labels)` batches of `dataset` for `epoch`.
    pub fn epoch<'d>(
        &self,
        dataset: &'d ImageDataset,
        epoch: u64,
    ) -> impl Iterator<Item = (Tensor, Vec<usize>)> + 'd {
        let batches = self.epoch_indices(dataset.len(), epoch);
        batches.into_iter().map(move |b| dataset.batch(&b))
    }

    /// Number of batches per epoch for a dataset of `len` samples.
    pub fn batches_per_epoch(&self, len: usize) -> usize {
        if self.drop_last {
            len / self.batch_size
        } else {
            len.div_ceil(self.batch_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticCifar;

    #[test]
    fn covers_all_samples_each_epoch() {
        let plan = BatchPlan::new(7, 0);
        let batches = plan.epoch_indices(20, 0);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_differ_but_are_reproducible() {
        let plan = BatchPlan::new(4, 5);
        let e0 = plan.epoch_indices(16, 0);
        let e1 = plan.epoch_indices(16, 1);
        assert_ne!(e0, e1);
        assert_eq!(e0, BatchPlan::new(4, 5).epoch_indices(16, 0));
    }

    #[test]
    fn sequential_plan_is_ordered() {
        let plan = BatchPlan::new(3, 0).sequential();
        let batches = plan.epoch_indices(7, 9);
        assert_eq!(batches, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn drop_last_removes_partial_batch() {
        let plan = BatchPlan::new(3, 0).sequential().drop_last();
        let batches = plan.epoch_indices(7, 0);
        assert_eq!(batches.len(), 2);
        assert_eq!(plan.batches_per_epoch(7), 2);
        assert_eq!(BatchPlan::new(3, 0).batches_per_epoch(7), 3);
    }

    #[test]
    fn epoch_yields_tensor_batches() {
        let d = SyntheticCifar::new(0).generate(10);
        let plan = BatchPlan::new(4, 1);
        let batches: Vec<_> = plan.epoch(&d, 0).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.dims(), &[4, 3, 32, 32]);
        assert_eq!(batches[2].0.dims(), &[2, 3, 32, 32]);
        assert_eq!(batches[0].1.len(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        BatchPlan::new(0, 0);
    }
}
