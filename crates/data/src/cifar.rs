//! Reader for the CIFAR-10 binary format.
//!
//! The official `cifar-10-binary.tar.gz` unpacks into files of 10 000
//! records, each `1 + 3072` bytes: one label byte followed by a 32×32 image
//! stored channel-major (R plane, G plane, B plane) — already the `CHW`
//! order this workspace uses. When the real dataset directory is present
//! the experiment binaries use it; otherwise they fall back to
//! [`crate::SyntheticCifar`] (see DESIGN.md §2).

use crate::{DatasetError, ImageDataset};
use std::error::Error as StdError;
use std::fmt;
use std::fs;
use std::io::Read;
use std::path::Path;
use stsl_tensor::Tensor;

/// Bytes per CIFAR-10 record: 1 label + 3×32×32 pixels.
pub const RECORD_BYTES: usize = 1 + 3072;

/// The canonical CIFAR-10 class names.
pub const CIFAR10_CLASSES: [&str; 10] = [
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
];

/// Error loading CIFAR-10 binaries.
#[derive(Debug)]
pub enum CifarError {
    /// An I/O error reading a batch file.
    Io(std::io::Error),
    /// A batch file's size is not a multiple of the record size.
    MalformedFile {
        /// Offending file path (display form).
        path: String,
        /// File length in bytes.
        len: usize,
    },
    /// A record's label byte exceeded 9.
    BadLabel {
        /// The label byte encountered.
        label: u8,
    },
    /// Decoded records did not assemble into a valid dataset.
    Dataset(DatasetError),
}

impl fmt::Display for CifarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CifarError::Io(e) => write!(f, "i/o error reading cifar batch: {}", e),
            CifarError::MalformedFile { path, len } => {
                write!(
                    f,
                    "cifar batch {} has size {} not divisible by {}",
                    path, len, RECORD_BYTES
                )
            }
            CifarError::BadLabel { label } => write!(f, "cifar label byte {} exceeds 9", label),
            CifarError::Dataset(e) => write!(f, "cifar records form no dataset: {}", e),
        }
    }
}

impl StdError for CifarError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CifarError::Io(e) => Some(e),
            CifarError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CifarError {
    fn from(e: std::io::Error) -> Self {
        CifarError::Io(e)
    }
}

impl From<DatasetError> for CifarError {
    fn from(e: DatasetError) -> Self {
        CifarError::Dataset(e)
    }
}

/// Parses raw CIFAR-10 record bytes into a dataset (pixels scaled to
/// `[0, 1]`).
///
/// # Errors
///
/// Returns [`CifarError::MalformedFile`] (with path `"<memory>"`) if the
/// byte count is not a whole number of records, or [`CifarError::BadLabel`]
/// on an invalid label byte.
pub fn parse_records(bytes: &[u8]) -> Result<ImageDataset, CifarError> {
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(CifarError::MalformedFile {
            path: "<memory>".into(),
            len: bytes.len(),
        });
    }
    let n = bytes.len() / RECORD_BYTES;
    let mut data = Vec::with_capacity(n * 3072);
    let mut labels = Vec::with_capacity(n);
    for rec in bytes.chunks_exact(RECORD_BYTES) {
        // `chunks_exact` never yields an empty chunk, but a reader of
        // untrusted bytes refuses rather than trusts.
        let Some((&label, pixels)) = rec.split_first() else {
            return Err(CifarError::MalformedFile {
                path: "<memory>".into(),
                len: bytes.len(),
            });
        };
        if label > 9 {
            return Err(CifarError::BadLabel { label });
        }
        labels.push(label as usize);
        data.extend(pixels.iter().map(|&b| b as f32 / 255.0));
    }
    Ok(ImageDataset::try_new(
        Tensor::from_vec(data, [n, 3, 32, 32]),
        labels,
        10,
    )?)
}

/// Loads one binary batch file (e.g. `data_batch_1.bin`).
///
/// # Errors
///
/// Propagates I/O failures and malformed content as [`CifarError`].
pub fn load_batch(path: impl AsRef<Path>) -> Result<ImageDataset, CifarError> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(CifarError::MalformedFile {
            path: path.display().to_string(),
            len: bytes.len(),
        });
    }
    parse_records(&bytes)
}

/// Loads the five training batches plus the test batch from a directory
/// containing the standard CIFAR-10 binary layout. Returns
/// `(train, test)`.
///
/// # Errors
///
/// Fails if any of the six canonical files is missing or malformed.
pub fn load_dir(dir: impl AsRef<Path>) -> Result<(ImageDataset, ImageDataset), CifarError> {
    let dir = dir.as_ref();
    let mut parts = Vec::new();
    for i in 1..=5 {
        parts.push(load_batch(dir.join(format!("data_batch_{}.bin", i)))?);
    }
    let train = merge(&parts)?;
    let test = load_batch(dir.join("test_batch.bin"))?;
    Ok((train, test))
}

/// Checks whether `dir` looks like an unpacked CIFAR-10 binary directory.
pub fn is_available(dir: impl AsRef<Path>) -> bool {
    let dir = dir.as_ref();
    (1..=5).all(|i| dir.join(format!("data_batch_{}.bin", i)).is_file())
        && dir.join("test_batch.bin").is_file()
}

fn merge(parts: &[ImageDataset]) -> Result<ImageDataset, CifarError> {
    let images = Tensor::concat0(&parts.iter().map(|p| p.images().clone()).collect::<Vec<_>>());
    let labels = parts
        .iter()
        .flat_map(|p| p.labels().iter().copied())
        .collect();
    Ok(ImageDataset::try_new(images, labels, 10)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_record(label: u8, fill: u8) -> Vec<u8> {
        let mut rec = vec![label];
        rec.extend(std::iter::repeat_n(fill, 3072));
        rec
    }

    #[test]
    fn parse_single_record() {
        let bytes = fake_record(3, 255);
        let d = parse_records(&bytes).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.label(0), 3);
        assert_eq!(d.image(0).max(), 1.0);
        assert_eq!(d.image(0).min(), 1.0);
    }

    #[test]
    fn parse_multiple_records() {
        let mut bytes = fake_record(0, 0);
        bytes.extend(fake_record(9, 128));
        let d = parse_records(&bytes).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), &[0, 9]);
        assert!((d.image(1).mean() - 128.0 / 255.0).abs() < 1e-4);
    }

    #[test]
    fn parse_rejects_truncated_input() {
        let bytes = vec![0u8; RECORD_BYTES - 1];
        assert!(matches!(
            parse_records(&bytes),
            Err(CifarError::MalformedFile { .. })
        ));
    }

    #[test]
    fn parse_rejects_bad_label() {
        let bytes = fake_record(10, 0);
        assert!(matches!(
            parse_records(&bytes),
            Err(CifarError::BadLabel { label: 10 })
        ));
    }

    #[test]
    fn load_batch_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir().join("stsl_cifar_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data_batch_1.bin");
        let mut bytes = fake_record(1, 10);
        bytes.extend(fake_record(2, 20));
        fs::write(&path, &bytes).unwrap();
        let d = load_batch(&path).unwrap();
        assert_eq!(d.labels(), &[1, 2]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_batch_rejects_truncated_file() {
        // A download cut off mid-record must surface as a typed error
        // naming the file, not a slice panic.
        let dir = std::env::temp_dir().join("stsl_cifar_truncated_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data_batch_1.bin");
        let mut bytes = fake_record(4, 7);
        bytes.truncate(RECORD_BYTES - 100);
        fs::write(&path, &bytes).unwrap();
        match load_batch(&path) {
            Err(CifarError::MalformedFile { path: p, len }) => {
                assert_eq!(len, RECORD_BYTES - 100);
                assert!(p.contains("data_batch_1.bin"), "error names the file: {p}");
            }
            other => panic!("expected MalformedFile, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn is_available_false_for_missing_dir() {
        assert!(!is_available("/nonexistent/cifar"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CifarError::BadLabel { label: 12 };
        assert!(e.to_string().contains("12"));
    }
}
