//! Labeled image datasets.

use rand::seq::SliceRandom;
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::Tensor;

/// Per-channel normalization statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// Mean per channel.
    pub mean: Vec<f32>,
    /// Standard deviation per channel.
    pub std: Vec<f32>,
}

/// Why a tensor/label pair cannot form an [`ImageDataset`].
///
/// Surfaced (instead of a panic) so loaders fed untrusted bytes — the
/// CIFAR reader — can propagate a typed error to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The image tensor is not rank 4 (`[n, c, h, w]`).
    NotImages {
        /// The offending rank.
        rank: usize,
    },
    /// Image count and label count disagree.
    LabelCount {
        /// Images in the tensor.
        images: usize,
        /// Labels supplied.
        labels: usize,
    },
    /// `num_classes` is zero.
    NoClasses,
    /// A label is `>= num_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared class count.
        num_classes: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::NotImages { rank } => {
                write!(f, "images must be [n, c, h, w], got rank {rank}")
            }
            DatasetError::LabelCount { images, labels } => {
                write!(f, "one label per image: {images} images, {labels} labels")
            }
            DatasetError::NoClasses => write!(f, "need at least one class"),
            DatasetError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// An in-memory labeled image dataset in `NCHW` layout.
///
/// This is the unit that gets partitioned across end-systems: each
/// end-system receives an `ImageDataset` it never shares (the paper's
/// privacy premise).
#[derive(Debug, Clone, PartialEq)]
pub struct ImageDataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl ImageDataset {
    /// Creates a dataset from an `[n, c, h, w]` image tensor and `n`
    /// labels in `0..num_classes`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range. Loaders of
    /// untrusted bytes use [`ImageDataset::try_new`] instead.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        match Self::try_new(images, labels, num_classes) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates shapes and labels, returning a
    /// [`DatasetError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Rejects non-rank-4 images, image/label count mismatches, a zero
    /// class count, and out-of-range labels.
    pub fn try_new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if images.rank() != 4 {
            return Err(DatasetError::NotImages {
                rank: images.rank(),
            });
        }
        if images.dim(0) != labels.len() {
            return Err(DatasetError::LabelCount {
                images: images.dim(0),
                labels: labels.len(),
            });
        }
        if num_classes == 0 {
            return Err(DatasetError::NoClasses);
        }
        if let Some(&label) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DatasetError::LabelOutOfRange { label, num_classes });
        }
        Ok(ImageDataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image dimensions `(c, h, w)`.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        (self.images.dim(1), self.images.dim(2), self.images.dim(3))
    }

    /// The full image tensor `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The `i`-th image as `[c, h, w]`.
    pub fn image(&self, i: usize) -> Tensor {
        self.images.index_axis0(i)
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Gathers a batch `(images [k, c, h, w], labels)` by sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let (c, h, w) = self.image_dims();
        let sample = c * h * w;
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "batch index {} out of bounds", i);
            data.extend_from_slice(&src[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        (Tensor::from_vec(data, [indices.len(), c, h, w]), labels)
    }

    /// Extracts the sub-dataset at `indices` (cloning samples).
    pub fn subset(&self, indices: &[usize]) -> ImageDataset {
        let (images, labels) = self.batch(indices);
        ImageDataset {
            images,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(train, test)` with `train_fraction` of samples in the
    /// train part, shuffled by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < train_fraction < 1.0`.
    pub fn split(&self, train_fraction: f32, seed: u64) -> (ImageDataset, ImageDataset) {
        assert!(
            (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
            "train fraction must be in (0, 1), got {}",
            train_fraction
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng_from_seed(seed));
        let cut = ((self.len() as f32) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Per-channel mean and standard deviation over all pixels.
    pub fn channel_stats(&self) -> ChannelStats {
        let (c, h, w) = self.image_dims();
        let n = self.len();
        let plane = h * w;
        let src = self.images.as_slice();
        let mut mean = vec![0.0f64; c];
        let mut sq = vec![0.0f64; c];
        for i in 0..n {
            for ci in 0..c {
                let off = (i * c + ci) * plane;
                for &v in &src[off..off + plane] {
                    mean[ci] += v as f64;
                    sq[ci] += (v as f64) * (v as f64);
                }
            }
        }
        let count = (n * plane).max(1) as f64;
        let mut std = vec![0.0f32; c];
        let mut mean32 = vec![0.0f32; c];
        for ci in 0..c {
            let m = mean[ci] / count;
            mean32[ci] = m as f32;
            std[ci] = (((sq[ci] / count) - m * m).max(1e-12)).sqrt() as f32;
        }
        ChannelStats { mean: mean32, std }
    }

    /// Returns a normalized copy: `(x - mean) / std` per channel.
    pub fn normalized(&self, stats: &ChannelStats) -> ImageDataset {
        let (c, h, w) = self.image_dims();
        assert_eq!(stats.mean.len(), c, "stats channel count mismatch");
        let plane = h * w;
        let mut data = self.images.as_slice().to_vec();
        for i in 0..self.len() {
            for ci in 0..c {
                let off = (i * c + ci) * plane;
                let (m, s) = (stats.mean[ci], stats.std[ci].max(1e-6));
                for v in &mut data[off..off + plane] {
                    *v = (*v - m) / s;
                }
            }
        }
        ImageDataset {
            images: Tensor::from_vec(data, [self.len(), c, h, w]),
            labels: self.labels.clone(),
            num_classes: self.num_classes,
        }
    }

    /// Histogram of labels (length `num_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> ImageDataset {
        let images = Tensor::from_fn([n, 1, 2, 2], |idx| idx[0] as f32);
        let labels = (0..n).map(|i| i % 2).collect();
        ImageDataset::new(images, labels, 2)
    }

    #[test]
    fn construction_validates_labels() {
        let images = Tensor::zeros([2, 1, 2, 2]);
        let ok = ImageDataset::new(images.clone(), vec![0, 1], 2);
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.image_dims(), (1, 2, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn construction_rejects_bad_labels() {
        ImageDataset::new(Tensor::zeros([1, 1, 2, 2]), vec![5], 2);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            ImageDataset::try_new(Tensor::zeros([2, 2]), vec![0, 0], 2),
            Err(DatasetError::NotImages { rank: 2 })
        );
        assert_eq!(
            ImageDataset::try_new(Tensor::zeros([2, 1, 2, 2]), vec![0], 2),
            Err(DatasetError::LabelCount {
                images: 2,
                labels: 1
            })
        );
        assert_eq!(
            ImageDataset::try_new(Tensor::zeros([1, 1, 2, 2]), vec![0], 0),
            Err(DatasetError::NoClasses)
        );
        assert_eq!(
            ImageDataset::try_new(Tensor::zeros([1, 1, 2, 2]), vec![5], 2),
            Err(DatasetError::LabelOutOfRange {
                label: 5,
                num_classes: 2
            })
        );
        assert!(ImageDataset::try_new(Tensor::zeros([1, 1, 2, 2]), vec![1], 2).is_ok());
    }

    #[test]
    fn batch_gathers_in_order() {
        let d = toy(5);
        let (x, y) = d.batch(&[4, 0, 2]);
        assert_eq!(x.dims(), &[3, 1, 2, 2]);
        assert_eq!(x.at(&[0, 0, 0, 0]), 4.0);
        assert_eq!(x.at(&[1, 0, 0, 0]), 0.0);
        assert_eq!(y, vec![0, 0, 0]);
    }

    #[test]
    fn subset_preserves_classes() {
        let d = toy(6);
        let s = d.subset(&[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[1, 1, 1]);
        assert_eq!(s.num_classes(), 2);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy(10);
        let (train, test) = d.split(0.8, 1);
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(train.len(), 8);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(10);
        let (a, _) = d.split(0.5, 3);
        let (b, _) = d.split(0.5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn channel_stats_of_constant_images() {
        let images = Tensor::full([3, 2, 2, 2], 5.0);
        let d = ImageDataset::new(images, vec![0, 0, 0], 1);
        let stats = d.channel_stats();
        assert!((stats.mean[0] - 5.0).abs() < 1e-5);
        assert!(stats.std[0] < 1e-3);
    }

    #[test]
    fn normalization_zeroes_mean_and_unitizes_std() {
        let images = Tensor::from_fn([4, 1, 4, 4], |idx| {
            (idx[0] * 7 + idx[2] * 3 + idx[3]) as f32
        });
        let d = ImageDataset::new(images, vec![0; 4], 1);
        let stats = d.channel_stats();
        let n = d.normalized(&stats);
        let post = n.channel_stats();
        assert!(post.mean[0].abs() < 1e-4);
        assert!((post.std[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn class_counts_histogram() {
        let d = toy(7);
        assert_eq!(d.class_counts(), vec![4, 3]);
    }
}
