//! K-fold cross-validation splits.

use crate::ImageDataset;
use rand::seq::SliceRandom;
use stsl_tensor::init::rng_from_seed;

/// A deterministic k-fold plan over a dataset.
///
/// Folds are as equal as possible (sizes differ by at most one) and every
/// sample appears in exactly one validation fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Creates a shuffled k-fold plan.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or the dataset has fewer than `k` samples.
    pub fn new(dataset: &ImageDataset, k: usize, seed: u64) -> Self {
        assert!(k >= 2, "k-fold needs at least two folds");
        assert!(
            dataset.len() >= k,
            "cannot make {} folds from {} samples",
            k,
            dataset.len()
        );
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut rng_from_seed(seed));
        let mut folds = vec![Vec::new(); k];
        for (i, sample) in idx.into_iter().enumerate() {
            folds[i % k].push(sample);
        }
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The `(train, validation)` datasets for `fold`.
    ///
    /// # Panics
    ///
    /// Panics if `fold >= k`.
    pub fn split(&self, dataset: &ImageDataset, fold: usize) -> (ImageDataset, ImageDataset) {
        assert!(
            fold < self.k(),
            "fold {} out of range for k = {}",
            fold,
            self.k()
        );
        let validation = dataset.subset(&self.folds[fold]);
        let train_idx: Vec<usize> = self
            .folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (dataset.subset(&train_idx), validation)
    }

    /// Iterates all `(train, validation)` pairs.
    pub fn splits<'d>(
        &'d self,
        dataset: &'d ImageDataset,
    ) -> impl Iterator<Item = (ImageDataset, ImageDataset)> + 'd {
        (0..self.k()).map(move |fold| self.split(dataset, fold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticCifar;

    fn data(n: usize) -> ImageDataset {
        SyntheticCifar::new(0).difficulty(0.0).generate_sized(n, 8)
    }

    #[test]
    fn folds_partition_the_dataset() {
        let d = data(23);
        let kf = KFold::new(&d, 5, 1);
        let total: usize = (0..5).map(|f| kf.split(&d, f).1.len()).sum();
        assert_eq!(total, 23);
        // Sizes differ by at most one.
        let sizes: Vec<usize> = (0..5).map(|f| kf.split(&d, f).1.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn train_and_validation_are_disjoint_and_complete() {
        let d = data(20);
        let kf = KFold::new(&d, 4, 2);
        for fold in 0..4 {
            let (train, val) = kf.split(&d, fold);
            assert_eq!(train.len() + val.len(), 20);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data(15);
        assert_eq!(KFold::new(&d, 3, 7), KFold::new(&d, 3, 7));
        assert_ne!(KFold::new(&d, 3, 7), KFold::new(&d, 3, 8));
    }

    #[test]
    fn splits_iterator_yields_k_pairs() {
        let d = data(12);
        let kf = KFold::new(&d, 3, 0);
        assert_eq!(kf.splits(&d).count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn k_of_one_rejected() {
        KFold::new(&data(10), 1, 0);
    }
}
