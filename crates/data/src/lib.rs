//! Datasets for the spatio-temporal split-learning experiments: a CIFAR-10
//! binary reader, a procedural CIFAR-like synthetic generator (used when
//! the real dataset is unavailable offline — see DESIGN.md §2), seeded
//! batching, augmentation, and the IID / Dirichlet / shard partitioners
//! that carve data across end-systems.
//!
//! # Examples
//!
//! ```
//! use stsl_data::{SyntheticCifar, Partition, BatchPlan};
//!
//! // 10-class, 32×32×3 task, deterministic from the seed.
//! let data = SyntheticCifar::new(42).generate(100);
//! let (train, test) = data.split(0.8, 0);
//!
//! // Four hospitals, IID shards.
//! let shards = Partition::Iid.split(&train, 4, 1);
//! assert_eq!(shards.len(), 4);
//!
//! // Mini-batches for epoch 0.
//! let plan = BatchPlan::new(16, 7);
//! let (images, labels) = plan.epoch(&shards[0], 0).next().unwrap();
//! assert_eq!(images.dim(0), labels.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod batching;
pub mod cifar;
mod dataset;
mod kfold;
mod partition;
mod synthetic;

pub use augment::{hflip, random_crop, standard_augment};
pub use batching::BatchPlan;
pub use dataset::{ChannelStats, DatasetError, ImageDataset};
pub use kfold::KFold;
pub use partition::{label_skew, Partition};
pub use synthetic::{SyntheticCifar, CHANNELS, CLASS_NAMES, IMAGE_SIDE, NUM_CLASSES};
