//! Partitioning a dataset across end-systems.
//!
//! The paper's setting is multiple medical end-systems, each holding local
//! patient data that can never leave the premises. These helpers carve one
//! dataset into per-end-system shards under three regimes:
//!
//! * [`Partition::Iid`] — uniformly random, the paper's implicit setting;
//! * [`Partition::Dirichlet`] — label-skewed shards (the standard non-IID
//!   federated-learning benchmark), for the ablation in DESIGN.md §5;
//! * [`Partition::Shards`] — pathological sort-and-deal label sharding.

use crate::ImageDataset;
use rand::seq::SliceRandom;
use rand::Rng;
use stsl_tensor::init::rng_from_seed;

/// How to distribute samples across end-systems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Independent, identically distributed shards.
    Iid,
    /// Label-skewed shards: each class's samples are split according to a
    /// Dirichlet(α) draw over clients. Small α ⇒ extreme skew.
    Dirichlet {
        /// Dirichlet concentration (must be positive).
        alpha: f32,
    },
    /// Sort by label, deal `shards_per_client` contiguous shards to each
    /// client (McMahan et al.'s pathological non-IID setting).
    Shards {
        /// Number of label-contiguous shards each client receives.
        shards_per_client: usize,
    },
}

impl Partition {
    /// Splits `dataset` into `clients` shards.
    ///
    /// Every sample lands in exactly one shard; shards are never empty as
    /// long as `dataset.len() >= clients`.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`, `dataset.len() < clients`, or parameters
    /// are invalid (`alpha <= 0`, `shards_per_client == 0`).
    pub fn split(&self, dataset: &ImageDataset, clients: usize, seed: u64) -> Vec<ImageDataset> {
        assert!(clients > 0, "need at least one client");
        assert!(
            dataset.len() >= clients,
            "cannot split {} samples across {} clients",
            dataset.len(),
            clients
        );
        let index_sets = self.split_indices(dataset, clients, seed);
        index_sets.iter().map(|idx| dataset.subset(idx)).collect()
    }

    /// Index-level variant of [`Partition::split`].
    pub fn split_indices(
        &self,
        dataset: &ImageDataset,
        clients: usize,
        seed: u64,
    ) -> Vec<Vec<usize>> {
        let mut rng = rng_from_seed(seed);
        let mut sets: Vec<Vec<usize>> = match self {
            Partition::Iid => {
                let mut idx: Vec<usize> = (0..dataset.len()).collect();
                idx.shuffle(&mut rng);
                let mut sets = vec![Vec::new(); clients];
                for (i, sample) in idx.into_iter().enumerate() {
                    sets[i % clients].push(sample);
                }
                sets
            }
            Partition::Dirichlet { alpha } => {
                assert!(*alpha > 0.0, "dirichlet alpha must be positive");
                let mut sets = vec![Vec::new(); clients];
                for class in 0..dataset.num_classes() {
                    let mut members: Vec<usize> = (0..dataset.len())
                        .filter(|&i| dataset.label(i) == class)
                        .collect();
                    members.shuffle(&mut rng);
                    let weights = sample_dirichlet(*alpha, clients, &mut rng);
                    // Convert weights to cumulative sample counts.
                    let mut start = 0usize;
                    let mut cum = 0.0f64;
                    for (c, &w) in weights.iter().enumerate() {
                        cum += w as f64;
                        let end = if c + 1 == clients {
                            members.len()
                        } else {
                            ((members.len() as f64) * cum).round() as usize
                        };
                        let end = end.clamp(start, members.len());
                        sets[c].extend_from_slice(&members[start..end]);
                        start = end;
                    }
                }
                sets
            }
            Partition::Shards { shards_per_client } => {
                assert!(*shards_per_client > 0, "shards_per_client must be positive");
                let mut idx: Vec<usize> = (0..dataset.len()).collect();
                idx.sort_by_key(|&i| dataset.label(i));
                let total_shards = clients * shards_per_client;
                let shard_size = (dataset.len() / total_shards).max(1);
                let mut shard_ids: Vec<usize> = (0..total_shards).collect();
                shard_ids.shuffle(&mut rng);
                let mut sets = vec![Vec::new(); clients];
                for (rank, shard) in shard_ids.into_iter().enumerate() {
                    let client = rank / shards_per_client;
                    let start = shard * shard_size;
                    let end = if shard + 1 == total_shards {
                        dataset.len()
                    } else {
                        ((shard + 1) * shard_size).min(dataset.len())
                    };
                    sets[client].extend_from_slice(&idx[start..end.max(start)]);
                }
                sets
            }
        };
        // Guarantee non-empty shards by stealing from the largest.
        loop {
            let empty = sets.iter().position(|s| s.is_empty());
            let Some(e) = empty else { break };
            let donor = sets
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| s.len())
                .map(|(i, _)| i)
                .expect("at least one set");
            if sets[donor].len() <= 1 {
                break; // nothing to steal; caller asserted len >= clients
            }
            let moved = sets[donor].pop().expect("donor non-empty");
            sets[e].push(moved);
        }
        sets
    }
}

/// Samples a point from a symmetric Dirichlet(α) via normalized Gamma
/// draws (Marsaglia–Tsang for shape ≥ 1, boosted for shape < 1).
fn sample_dirichlet(alpha: f32, k: usize, rng: &mut rand::rngs::StdRng) -> Vec<f32> {
    let draws: Vec<f64> = (0..k).map(|_| sample_gamma(alpha as f64, rng)).collect();
    let total: f64 = draws.iter().sum::<f64>().max(1e-300);
    draws.iter().map(|&d| (d / total) as f32).collect()
}

fn sample_gamma(shape: f64, rng: &mut rand::rngs::StdRng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box-Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Measures label-distribution skew across shards: the mean total-variation
/// distance between each shard's label distribution and the global one.
/// 0 = perfectly IID, approaching 1 = each shard holds disjoint labels.
pub fn label_skew(shards: &[ImageDataset]) -> f32 {
    assert!(!shards.is_empty(), "no shards");
    let classes = shards[0].num_classes();
    let total: usize = shards.iter().map(|s| s.len()).sum();
    let mut global = vec![0.0f32; classes];
    for s in shards {
        for (c, &n) in s.class_counts().iter().enumerate() {
            global[c] += n as f32;
        }
    }
    for g in &mut global {
        *g /= total.max(1) as f32;
    }
    let mut acc = 0.0;
    for s in shards {
        let counts = s.class_counts();
        let n = s.len().max(1) as f32;
        let tv: f32 = counts
            .iter()
            .enumerate()
            .map(|(c, &k)| (k as f32 / n - global[c]).abs())
            .sum::<f32>()
            / 2.0;
        acc += tv;
    }
    acc / shards.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticCifar;

    fn dataset() -> ImageDataset {
        SyntheticCifar::new(0).difficulty(0.0).generate(200)
    }

    #[test]
    fn iid_split_covers_everything_once() {
        let d = dataset();
        let sets = Partition::Iid.split_indices(&d, 4, 1);
        let mut all: Vec<usize> = sets.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
        for s in &sets {
            assert_eq!(s.len(), 50);
        }
    }

    #[test]
    fn iid_split_has_low_skew() {
        let d = dataset();
        let shards = Partition::Iid.split(&d, 4, 2);
        assert!(label_skew(&shards) < 0.2, "skew {}", label_skew(&shards));
    }

    #[test]
    fn dirichlet_low_alpha_is_skewed() {
        let d = dataset();
        let iid = Partition::Iid.split(&d, 4, 3);
        let skewed = Partition::Dirichlet { alpha: 0.1 }.split(&d, 4, 3);
        assert!(label_skew(&skewed) > label_skew(&iid) + 0.1);
    }

    #[test]
    fn dirichlet_covers_everything_once() {
        let d = dataset();
        let sets = Partition::Dirichlet { alpha: 0.5 }.split_indices(&d, 5, 4);
        let mut all: Vec<usize> = sets.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 200);
        all.dedup();
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn shards_partition_is_extremely_skewed() {
        let d = dataset();
        let shards = Partition::Shards {
            shards_per_client: 2,
        }
        .split(&d, 5, 5);
        assert!(label_skew(&shards) > 0.3, "skew {}", label_skew(&shards));
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn no_shard_is_empty() {
        let d = dataset();
        for p in [
            Partition::Iid,
            Partition::Dirichlet { alpha: 0.05 },
            Partition::Shards {
                shards_per_client: 1,
            },
        ] {
            for &clients in &[1usize, 3, 7] {
                let shards = p.split(&d, clients, 6);
                assert_eq!(shards.len(), clients);
                assert!(
                    shards.iter().all(|s| !s.is_empty()),
                    "{:?} clients={}",
                    p,
                    clients
                );
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let d = dataset();
        let a = Partition::Dirichlet { alpha: 0.3 }.split_indices(&d, 4, 9);
        let b = Partition::Dirichlet { alpha: 0.3 }.split_indices(&d, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        Partition::Iid.split(&dataset(), 0, 0);
    }

    #[test]
    fn gamma_sampler_has_correct_mean() {
        let mut rng = rng_from_seed(10);
        for &shape in &[0.5f64, 1.0, 3.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {}: mean {}",
                shape,
                mean
            );
        }
    }
}
