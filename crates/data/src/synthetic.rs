//! A procedural CIFAR-10-like dataset.
//!
//! The paper evaluates on CIFAR-10, which this offline reproduction cannot
//! download. `SyntheticCifar` generates a 10-class, 32×32×3 classification
//! task with the properties that matter for the experiments:
//!
//! * classes are defined by **spatial structure** (stripes, disks, rings,
//!   checkers, crosses, …), not by mean colour, so convolutions — not a
//!   bias term — must do the work;
//! * every sample carries random colours, geometry jitter and additive
//!   noise, so there is real intra-class variance and a train/test gap;
//! * a `difficulty` knob scales the noise, letting experiments place
//!   accuracy away from the ceiling (as in the paper's ~71 %).
//!
//! Generation is fully deterministic given the seed.

use crate::ImageDataset;
use rand::rngs::StdRng;
use rand::Rng;
use stsl_tensor::init::{derive_seed, rng_from_seed};
use stsl_tensor::Tensor;

/// Number of classes (matches CIFAR-10).
pub const NUM_CLASSES: usize = 10;
/// Image side length in pixels (matches CIFAR-10).
pub const IMAGE_SIDE: usize = 32;
/// Number of colour channels (matches CIFAR-10).
pub const CHANNELS: usize = 3;

/// Human-readable class names, mirroring the procedural generators.
pub const CLASS_NAMES: [&str; NUM_CLASSES] = [
    "h-stripes",
    "v-stripes",
    "diagonal",
    "checker",
    "disk",
    "ring",
    "radial",
    "frame",
    "blobs",
    "cross",
];

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticCifar {
    /// Base RNG seed; every sample derives its own stream from it.
    pub seed: u64,
    /// Additive pixel-noise standard deviation (0.0 = clean shapes;
    /// 0.25 ≈ hard). Values in `[0, 1]`.
    pub difficulty: f32,
}

impl SyntheticCifar {
    /// Creates a generator with moderate difficulty (0.15).
    pub fn new(seed: u64) -> Self {
        SyntheticCifar {
            seed,
            difficulty: 0.15,
        }
    }

    /// Overrides the difficulty (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= difficulty <= 1.0`.
    pub fn difficulty(mut self, difficulty: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&difficulty),
            "difficulty must be in [0, 1]"
        );
        self.difficulty = difficulty;
        self
    }

    /// Generates `n` labeled samples with a balanced class distribution.
    pub fn generate(&self, n: usize) -> ImageDataset {
        self.generate_sized(n, IMAGE_SIDE)
    }

    /// Generates `n` samples at a non-standard spatial size `side`
    /// (geometry scales proportionally). Used by fast tests running the
    /// shrunken architecture.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn generate_sized(&self, n: usize, side: usize) -> ImageDataset {
        assert!(side > 0, "image side must be positive");
        let mut data = Vec::with_capacity(n * CHANNELS * side * side);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % NUM_CLASSES;
            let mut rng = rng_from_seed(derive_seed(self.seed, i as u64));
            let img = self.render_sized(class, side, &mut rng);
            data.extend_from_slice(img.as_slice());
            labels.push(class);
        }
        ImageDataset::new(
            Tensor::from_vec(data, [n, CHANNELS, side, side]),
            labels,
            NUM_CLASSES,
        )
    }

    /// Renders one sample of `class` at the standard 32×32 size.
    ///
    /// # Panics
    ///
    /// Panics if `class >= NUM_CLASSES`.
    pub fn render(&self, class: usize, rng: &mut StdRng) -> Tensor {
        self.render_sized(class, IMAGE_SIDE, rng)
    }

    /// Renders one sample of `class` at spatial size `side`, using `rng`
    /// for all stochastic choices. Pixels are in `[0, 1]` before noise.
    ///
    /// # Panics
    ///
    /// Panics if `class >= NUM_CLASSES` or `side == 0`.
    pub fn render_sized(&self, class: usize, side: usize, rng: &mut StdRng) -> Tensor {
        assert!(class < NUM_CLASSES, "class {} out of range", class);
        assert!(side > 0, "image side must be positive");
        let s = side;
        let scale = side as f32 / IMAGE_SIDE as f32;
        // Two contrasting random colours per image.
        let fg: [f32; 3] = [
            rng.gen_range(0.5..1.0),
            rng.gen_range(0.5..1.0),
            rng.gen_range(0.5..1.0),
        ];
        let bg: [f32; 3] = [
            rng.gen_range(0.0..0.4),
            rng.gen_range(0.0..0.4),
            rng.gen_range(0.0..0.4),
        ];
        let cx = rng.gen_range(10.0..22.0_f32) * scale;
        let cy = rng.gen_range(10.0..22.0_f32) * scale;
        let period = (rng.gen_range(4.0..9.0_f32) * scale).max(2.0);
        let phase = rng.gen_range(0.0..period);
        let radius = (rng.gen_range(6.0..12.0_f32) * scale).max(2.0);
        let thickness = (rng.gen_range(2.0..4.5_f32) * scale).max(1.0);
        // Blob centres for class 8.
        let blobs: Vec<(f32, f32, f32)> = (0..4)
            .map(|_| {
                (
                    rng.gen_range(4.0..28.0_f32) * scale,
                    rng.gen_range(4.0..28.0_f32) * scale,
                    (rng.gen_range(2.5..5.0_f32) * scale).max(1.2),
                )
            })
            .collect();

        // mask(x, y) in [0, 1]: 1 = foreground.
        let mask = |x: f32, y: f32| -> f32 {
            match class {
                0 => {
                    if ((y + phase) / period).fract() < 0.5 {
                        1.0
                    } else {
                        0.0
                    }
                }
                1 => {
                    if ((x + phase) / period).fract() < 0.5 {
                        1.0
                    } else {
                        0.0
                    }
                }
                2 => {
                    if ((x + y + phase) / period).fract() < 0.5 {
                        1.0
                    } else {
                        0.0
                    }
                }
                3 => {
                    let a = (((x + phase) / period).fract() < 0.5) as i32;
                    let b = (((y + phase) / period).fract() < 0.5) as i32;
                    (a ^ b) as f32
                }
                4 => {
                    let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
                    if d < radius {
                        1.0
                    } else {
                        0.0
                    }
                }
                5 => {
                    let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
                    if (d - radius).abs() < thickness {
                        1.0
                    } else {
                        0.0
                    }
                }
                6 => {
                    let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
                    (1.0 - d / (s as f32 * 0.75)).clamp(0.0, 1.0)
                }
                7 => {
                    let inset = radius * 0.8;
                    let inside = x > cx - inset - thickness
                        && x < cx + inset + thickness
                        && y > cy - inset - thickness
                        && y < cy + inset + thickness;
                    let core = x > cx - inset + thickness
                        && x < cx + inset - thickness
                        && y > cy - inset + thickness
                        && y < cy + inset - thickness;
                    if inside && !core {
                        1.0
                    } else {
                        0.0
                    }
                }
                8 => {
                    let mut v: f32 = 0.0;
                    for &(bx, by, br) in &blobs {
                        let d2 = (x - bx).powi(2) + (y - by).powi(2);
                        v += (-d2 / (2.0 * br * br)).exp();
                    }
                    v.min(1.0)
                }
                _ => {
                    let horiz = (y - cy).abs() < thickness;
                    let vert = (x - cx).abs() < thickness;
                    if horiz || vert {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        };

        let mut data = vec![0.0f32; CHANNELS * s * s];
        for y in 0..s {
            for x in 0..s {
                let m = mask(x as f32, y as f32);
                for c in 0..CHANNELS {
                    let v = bg[c] + m * (fg[c] - bg[c]);
                    data[c * s * s + y * s + x] = v;
                }
            }
        }
        if self.difficulty > 0.0 {
            let noise = Tensor::randn([CHANNELS * s * s], rng);
            for (v, &n) in data.iter_mut().zip(noise.as_slice()) {
                *v = (*v + self.difficulty * n).clamp(0.0, 1.0);
            }
        }
        Tensor::from_vec(data, [CHANNELS, s, s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_shapes_and_balance() {
        let d = SyntheticCifar::new(0).generate(40);
        assert_eq!(d.len(), 40);
        assert_eq!(d.image_dims(), (3, 32, 32));
        assert_eq!(d.class_counts(), vec![4; 10]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCifar::new(7).generate(20);
        let b = SyntheticCifar::new(7).generate(20);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCifar::new(1).generate(10);
        let b = SyntheticCifar::new(2).generate(10);
        assert_ne!(a, b);
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let d = SyntheticCifar::new(3).difficulty(0.5).generate(30);
        assert!(d.images().min() >= 0.0);
        assert!(d.images().max() <= 1.0);
    }

    #[test]
    fn zero_difficulty_is_noise_free_and_repeatable_structure() {
        let gen = SyntheticCifar::new(5).difficulty(0.0);
        let mut rng = rng_from_seed(9);
        let img = gen.render(0, &mut rng);
        // Horizontal stripes: every row is constant.
        for c in 0..3 {
            for y in 0..32 {
                let first = img.at(&[c, y, 0]);
                for x in 1..32 {
                    assert_eq!(img.at(&[c, y, x]), first);
                }
            }
        }
    }

    #[test]
    fn classes_are_structurally_distinct() {
        // Mean image per class over clean renders differs between classes.
        let gen = SyntheticCifar::new(11).difficulty(0.0);
        let mut means = Vec::new();
        for class in 0..NUM_CLASSES {
            let mut acc = Tensor::zeros([3, 32, 32]);
            for i in 0..8 {
                let mut rng = rng_from_seed(derive_seed(100 + class as u64, i));
                acc.axpy(1.0 / 8.0, &gen.render(class, &mut rng));
            }
            means.push(acc);
        }
        let mut distinct_pairs = 0;
        let mut total_pairs = 0;
        for a in 0..NUM_CLASSES {
            for b in (a + 1)..NUM_CLASSES {
                total_pairs += 1;
                let diff = (&means[a] - &means[b]).sq_norm();
                if diff > 1.0 {
                    distinct_pairs += 1;
                }
            }
        }
        assert!(
            distinct_pairs as f32 > 0.8 * total_pairs as f32,
            "only {}/{} class pairs distinct",
            distinct_pairs,
            total_pairs
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn render_rejects_bad_class() {
        SyntheticCifar::new(0).render(10, &mut rng_from_seed(0));
    }

    #[test]
    fn class_names_cover_all_classes() {
        assert_eq!(CLASS_NAMES.len(), NUM_CLASSES);
    }
}
