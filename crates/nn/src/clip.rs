//! Gradient clipping.

use crate::Sequential;

/// Scales all gradients of `net` so their **global** L2 norm does not
/// exceed `max_norm`. Returns the pre-clip norm.
///
/// Use between `backward` and the optimizer step to tame the occasional
/// exploding batch (deep split pipelines with momentum are prone to it).
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(net: &mut Sequential, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total_sq = net.grad_sq_norm();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / (norm + 1e-12);
        net.visit_params(&mut |p| p.grad.scale_inplace(scale));
    }
    norm
}

/// Clamps every gradient element of `net` into `[-limit, limit]`
/// (element-wise clipping, cruder than norm clipping but cheaper).
///
/// # Panics
///
/// Panics if `limit` is not positive.
pub fn clip_grad_value(net: &mut Sequential, limit: f32) {
    assert!(limit > 0.0, "limit must be positive");
    net.visit_params(&mut |p| p.grad.map_inplace(|g| g.clamp(-limit, limit)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::{Loss, SoftmaxCrossEntropy};
    use crate::Mode;
    use stsl_tensor::init::rng_from_seed;
    use stsl_tensor::Tensor;

    fn net_with_grads(scale: f32) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(4, 3, 0));
        let x = &Tensor::randn([2, 4], &mut rng_from_seed(1)) * scale;
        let logits = net.forward(&x, Mode::Train);
        let out = SoftmaxCrossEntropy::new().forward(&logits, &[0, 1]);
        net.backward(&out.grad);
        net
    }

    #[test]
    fn clipping_caps_global_norm() {
        let mut net = net_with_grads(100.0);
        let before = net.grad_sq_norm().sqrt();
        assert!(before > 1.0, "test needs large gradients, got {}", before);
        let reported = clip_grad_norm(&mut net, 1.0);
        assert!((reported - before).abs() < 1e-3);
        let after = net.grad_sq_norm().sqrt();
        assert!((after - 1.0).abs() < 1e-3, "post-clip norm {}", after);
    }

    #[test]
    fn small_gradients_pass_through_unchanged() {
        let mut net = net_with_grads(0.001);
        let before = net.grad_sq_norm();
        clip_grad_norm(&mut net, 10.0);
        assert_eq!(net.grad_sq_norm(), before);
    }

    #[test]
    fn clipping_preserves_gradient_direction() {
        let mut net = net_with_grads(50.0);
        let mut before = Vec::new();
        net.visit_params(&mut |p| before.push(p.grad.clone()));
        clip_grad_norm(&mut net, 0.5);
        let mut i = 0;
        net.visit_params(&mut |p| {
            // Each clipped gradient is a positive multiple of the original.
            let dot: f32 = p
                .grad
                .as_slice()
                .iter()
                .zip(before[i].as_slice())
                .map(|(a, b)| a * b)
                .sum();
            assert!(dot >= 0.0);
            i += 1;
        });
    }

    #[test]
    fn value_clipping_bounds_elements() {
        let mut net = net_with_grads(100.0);
        clip_grad_value(&mut net, 0.01);
        net.visit_params(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|g| g.abs() <= 0.01 + 1e-9));
        });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_norm_rejected() {
        clip_grad_norm(&mut Sequential::new(), 0.0);
    }
}
