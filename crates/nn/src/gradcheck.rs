//! Finite-difference gradient checking for whole networks.
//!
//! Used by the test suites to validate every layer's backward pass through
//! the exact code paths the trainers use.

use crate::layer::{Mode, ParamView};
use crate::loss::Loss;
use crate::Sequential;
use stsl_tensor::Tensor;

/// Outcome of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum relative error observed across all probed coordinates.
    pub max_rel_error: f32,
    /// Number of coordinates probed.
    pub probes: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradients pass at tolerance `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Compares analytic parameter gradients of `net` against central finite
/// differences of the loss, probing every `stride`-th parameter coordinate.
///
/// # Panics
///
/// Panics if `stride == 0` or the network/loss shapes are inconsistent.
pub fn check_param_gradients(
    net: &mut Sequential,
    input: &Tensor,
    targets: &[usize],
    loss: &dyn Loss,
    stride: usize,
    eps: f32,
) -> GradCheckReport {
    assert!(stride > 0, "stride must be positive");
    // Analytic gradients.
    net.zero_grads();
    let logits = net.forward(input, Mode::Train);
    let out = loss.forward(&logits, targets);
    net.backward(&out.grad);

    // Collect flat copies of params and grads.
    let mut param_snapshot: Vec<Tensor> = Vec::new();
    let mut grad_snapshot: Vec<Tensor> = Vec::new();
    for_each_param(net, &mut |p| {
        param_snapshot.push(p.value.clone());
        grad_snapshot.push(p.grad.clone());
    });

    let mut max_rel = 0.0f32;
    let mut probes = 0usize;
    for (pi, grad) in grad_snapshot.iter().enumerate() {
        for ci in (0..grad.len()).step_by(stride) {
            let ana = grad.as_slice()[ci];
            let orig = param_snapshot[pi].as_slice()[ci];

            set_param_coord(net, pi, ci, orig + eps);
            let lp = eval_loss(net, input, targets, loss);
            set_param_coord(net, pi, ci, orig - eps);
            let lm = eval_loss(net, input, targets, loss);
            set_param_coord(net, pi, ci, orig);

            let num = (lp - lm) / (2.0 * eps);
            let rel = (num - ana).abs() / (1.0 + num.abs().max(ana.abs()));
            if rel > max_rel {
                max_rel = rel;
            }
            probes += 1;
        }
    }
    GradCheckReport {
        max_rel_error: max_rel,
        probes,
    }
}

fn eval_loss(net: &mut Sequential, input: &Tensor, targets: &[usize], loss: &dyn Loss) -> f32 {
    let logits = net.forward(input, Mode::Eval);
    loss.forward(&logits, targets).value
}

fn for_each_param(net: &mut Sequential, f: &mut dyn FnMut(ParamView<'_>)) {
    net.visit_params(f);
}

fn set_param_coord(net: &mut Sequential, target_param: usize, coord: usize, value: f32) {
    let mut i = 0;
    for_each_param(net, &mut |p| {
        if i == target_param {
            p.value.as_mut_slice()[coord] = value;
        }
        i += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Dense, Dropout, Flatten, MaxPool2d, Relu};
    use crate::loss::{MseLoss, SoftmaxCrossEntropy};
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn dense_relu_stack_passes() {
        let mut net = Sequential::new();
        net.push(Dense::new(6, 10, 0));
        net.push(Relu::new());
        net.push(Dense::new(10, 4, 1));
        let x = Tensor::randn([3, 6], &mut rng_from_seed(5));
        let report = check_param_gradients(
            &mut net,
            &x,
            &[0, 1, 3],
            &SoftmaxCrossEntropy::new(),
            7,
            1e-2,
        );
        assert!(
            report.passes(2e-2),
            "max rel error {}",
            report.max_rel_error
        );
        assert!(report.probes > 10);
    }

    #[test]
    fn conv_pool_dense_stack_passes() {
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 2, 3, 2));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2));
        net.push(Flatten::new());
        net.push(Dense::new(2 * 2 * 2, 3, 3));
        let x = Tensor::randn([2, 1, 4, 4], &mut rng_from_seed(6));
        let report =
            check_param_gradients(&mut net, &x, &[0, 2], &SoftmaxCrossEntropy::new(), 5, 1e-2);
        assert!(
            report.passes(3e-2),
            "max rel error {}",
            report.max_rel_error
        );
    }

    #[test]
    fn mse_loss_gradients_pass() {
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, 9));
        let x = Tensor::randn([2, 4], &mut rng_from_seed(7));
        let report = check_param_gradients(&mut net, &x, &[1, 2], &MseLoss::new(), 3, 1e-2);
        assert!(
            report.passes(2e-2),
            "max rel error {}",
            report.max_rel_error
        );
    }

    #[test]
    fn batchnorm_stack_passes_in_train_mode() {
        // The checker computes analytic grads with one Train forward but
        // probes the loss in Eval mode. With momentum 1.0 the running
        // statistics after that Train forward equal the batch statistics,
        // and with the norm as the first layer its input — hence its
        // statistics — is unchanged by any parameter probe, so both modes
        // apply the same normalization and the comparison is exact.
        let mut net = Sequential::new();
        net.push(BatchNorm2d::new(2).momentum(1.0));
        net.push(Conv2d::new(2, 3, 3, 4));
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(Dense::new(3 * 4 * 4, 3, 5));
        let x = Tensor::randn([3, 2, 4, 4], &mut rng_from_seed(9));
        let report = check_param_gradients(
            &mut net,
            &x,
            &[0, 1, 2],
            &SoftmaxCrossEntropy::new(),
            7,
            1e-2,
        );
        assert!(
            report.passes(3e-2),
            "max rel error {}",
            report.max_rel_error
        );
        assert!(report.probes > 10);
    }

    /// Conv + pool + dense driven end to end through the **blocked** tensor
    /// backend: the analytic backward passes (im2col GEMMs, dense GEMMs)
    /// and the finite-difference loss probes all run on the packed
    /// microkernels, so a packing or microtile-edge bug shows up as a
    /// gradient mismatch here even though every unit test above passes on
    /// the reference path.
    #[test]
    fn conv_dense_stack_passes_on_blocked_backend() {
        stsl_tensor::with_backend(stsl_tensor::Backend::Blocked, || {
            let mut net = Sequential::new();
            net.push(Conv2d::new(1, 2, 3, 2));
            net.push(Relu::new());
            net.push(MaxPool2d::new(2));
            net.push(Flatten::new());
            net.push(Dense::new(2 * 2 * 2, 3, 3));
            let x = Tensor::randn([2, 1, 4, 4], &mut rng_from_seed(6));
            let report =
                check_param_gradients(&mut net, &x, &[0, 2], &SoftmaxCrossEntropy::new(), 5, 1e-2);
            assert!(
                report.passes(3e-2),
                "blocked backend: max rel error {}",
                report.max_rel_error
            );
        });
    }

    /// Dense + softmax cross-entropy on the blocked backend, probing every
    /// coordinate (`stride = 1`) so the blocked `log_softmax` denominator
    /// reduction is exercised by every finite-difference evaluation. Also
    /// pins that the reference backend agrees on the same network — both
    /// backends must pass at the same tolerance.
    #[test]
    fn dense_softmax_gradients_pass_on_both_backends() {
        for backend in [
            stsl_tensor::Backend::Reference,
            stsl_tensor::Backend::Blocked,
        ] {
            stsl_tensor::with_backend(backend, || {
                let mut net = Sequential::new();
                net.push(Dense::new(5, 8, 11));
                net.push(Relu::new());
                net.push(Dense::new(8, 4, 12));
                let x = Tensor::randn([3, 5], &mut rng_from_seed(13));
                let report = check_param_gradients(
                    &mut net,
                    &x,
                    &[0, 1, 3],
                    &SoftmaxCrossEntropy::new(),
                    1,
                    1e-2,
                );
                assert!(
                    report.passes(2e-2),
                    "{:?} backend: max rel error {}",
                    backend,
                    report.max_rel_error
                );
                assert!(report.probes > 50);
            });
        }
    }

    #[test]
    fn dropout_in_eval_does_not_break_check() {
        // The check evaluates the loss in Eval mode, where dropout is the
        // identity; analytic grads are computed with Train-mode dropout, so
        // use p=0 here to keep them consistent.
        let mut net = Sequential::new();
        net.push(Dense::new(4, 6, 0));
        net.push(Dropout::new(0.0, 1));
        net.push(Dense::new(6, 2, 2));
        let x = Tensor::randn([2, 4], &mut rng_from_seed(8));
        let report =
            check_param_gradients(&mut net, &x, &[0, 1], &SoftmaxCrossEntropy::new(), 5, 1e-2);
        assert!(
            report.passes(2e-2),
            "max rel error {}",
            report.max_rel_error
        );
    }
}
