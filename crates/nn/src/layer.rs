//! The [`Layer`] abstraction: stateful modules with manual backprop.

use stsl_tensor::Tensor;

/// Whether a forward pass is part of training or evaluation.
///
/// Layers with stochastic behaviour (dropout) act only in [`Mode::Train`];
/// deterministic layers ignore the mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: stochastic regularizers are active and layers cache the
    /// state needed by a subsequent [`Layer::backward`].
    Train,
    /// Inference: deterministic, no state is cached.
    Eval,
}

/// A mutable view of one trainable parameter and its gradient accumulator.
///
/// Produced by [`Layer::visit_params`]; optimizers consume these views to
/// apply updates without the borrow checker seeing two overlapping borrows
/// of the layer.
pub struct ParamView<'a> {
    /// The parameter tensor (updated in place by optimizers).
    pub value: &'a mut Tensor,
    /// The accumulated gradient for this parameter.
    pub grad: &'a mut Tensor,
    /// Stable name within the layer (`"weight"`, `"bias"`), used in
    /// diagnostics and checkpoints.
    pub name: &'static str,
}

/// A neural-network layer with explicit forward and backward passes.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. `forward(input, Mode::Train)` computes the output **and caches**
///    whatever intermediate state `backward` will need;
/// 2. `backward(dout)` consumes that cache, **accumulates** parameter
///    gradients (`+=`, so gradient accumulation across micro-batches works)
///    and returns the gradient w.r.t. the layer input;
/// 3. `zero_grads` resets the accumulators between optimizer steps.
///
/// Layers are deliberately object-safe so a network is just
/// `Vec<Box<dyn Layer>>`, which is what lets the split-learning crate cut a
/// model into client and server halves at an arbitrary layer boundary.
pub trait Layer: std::fmt::Debug + Send {
    /// Human-readable layer kind (e.g. `"conv2d"`), stable across runs.
    fn name(&self) -> &'static str;

    /// Computes the layer output.
    ///
    /// In [`Mode::Train`] the layer caches intermediates for `backward`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Backpropagates `dout` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the input of the most recent training-mode `forward`.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward preceded this call or shapes
    /// mismatch.
    fn backward(&mut self, dout: &Tensor) -> Tensor;

    /// Visits every (parameter, gradient) pair, in a stable order.
    ///
    /// The default is a no-op for parameter-free layers.
    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamView<'_>)) {}

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.grad.fill_zero());
    }

    /// Snapshot of all parameters, in `visit_params` order.
    fn param_tensors(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Overwrites parameters from a snapshot produced by
    /// [`Layer::param_tensors`] on an identically-configured layer.
    ///
    /// Returns the number of tensors consumed from the front of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is too short or shapes mismatch.
    fn load_param_tensors(&mut self, src: &[Tensor]) -> usize {
        let mut i = 0;
        self.visit_params(&mut |p| {
            assert!(i < src.len(), "parameter snapshot too short");
            assert_eq!(
                p.value.shape(),
                src[i].shape(),
                "parameter {} shape mismatch",
                p.name
            );
            *p.value = src[i].clone();
            i += 1;
        });
        i
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Output shape for a given input shape (no batch dimension tricks:
    /// pass the full shape including batch).
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible.
    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal layer used to exercise the trait's default methods.
    #[derive(Debug)]
    struct Scale {
        factor: Tensor,
        grad: Tensor,
    }

    impl Layer for Scale {
        fn name(&self) -> &'static str {
            "scale"
        }
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
            input.map(|x| x * self.factor.item())
        }
        fn backward(&mut self, dout: &Tensor) -> Tensor {
            dout.map(|g| g * self.factor.item())
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(ParamView<'_>)) {
            f(ParamView {
                value: &mut self.factor,
                grad: &mut self.grad,
                name: "factor",
            });
        }
        fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
            input_dims.to_vec()
        }
    }

    #[test]
    fn default_param_helpers_work() {
        let mut s = Scale {
            factor: Tensor::scalar(2.0),
            grad: Tensor::scalar(5.0),
        };
        assert_eq!(s.param_count(), 1);
        s.zero_grads();
        let mut grads = Vec::new();
        s.visit_params(&mut |p| grads.push(p.grad.item()));
        assert_eq!(grads, vec![0.0]);
        let snap = s.param_tensors();
        let mut s2 = Scale {
            factor: Tensor::scalar(0.0),
            grad: Tensor::scalar(0.0),
        };
        assert_eq!(s2.load_param_tensors(&snap), 1);
        assert_eq!(s2.factor.item(), 2.0);
    }

    #[test]
    fn layers_are_object_safe() {
        let boxed: Box<dyn Layer> = Box::new(Scale {
            factor: Tensor::scalar(1.0),
            grad: Tensor::scalar(0.0),
        });
        assert_eq!(boxed.name(), "scale");
    }
}
