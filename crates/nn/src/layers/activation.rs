//! Parameter-free activation and reshaping layers.

use crate::layer::{Layer, Mode};
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("relu backward without cached forward");
        assert_eq!(dout.len(), mask.len(), "relu dout length mismatch");
        let data = dout
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, dout.shape().clone())
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        input_dims.to_vec()
    }
}

/// Leaky rectified linear unit: `y = x` if `x > 0`, else `alpha * x`.
#[derive(Debug)]
pub struct LeakyRelu {
    alpha: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with negative-slope `alpha`.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu { alpha, mask: None }
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        let a = self.alpha;
        input.map(|x| if x > 0.0 { x } else { a * x })
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("leaky_relu backward without cached forward");
        let a = self.alpha;
        let data = dout
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { a * g })
            .collect();
        Tensor::from_vec(data, dout.shape().clone())
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        input_dims.to_vec()
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{-x})`.
#[derive(Debug, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { output: None }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let y = self
            .output
            .take()
            .expect("sigmoid backward without cached forward");
        // dy/dx = y (1 - y)
        dout.zip_map(&y, |g, y| g * y * (1.0 - y))
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        input_dims.to_vec()
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = input.map(f32::tanh);
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let y = self
            .output
            .take()
            .expect("tanh backward without cached forward");
        // dy/dx = 1 - y²
        dout.zip_map(&y, |g, y| g * (1.0 - y * y))
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        input_dims.to_vec()
    }
}

/// Flattens `[n, …]` to `[n, prod(…)]` (the conv→dense transition).
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert!(input.rank() >= 1, "flatten expects a batch dimension");
        if mode == Mode::Train {
            self.input_dims = Some(input.dims().to_vec());
        }
        let n = input.dim(0);
        input.reshape([n, input.len() / n.max(1)])
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .take()
            .expect("flatten backward without cached forward");
        dout.reshape(dims)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        let n = input_dims[0];
        vec![n, input_dims[1..].iter().product()]
    }
}

/// Inverted dropout: in training, zeroes each element with probability `p`
/// and scales survivors by `1/(1-p)`; identity in evaluation.
///
/// The RNG stream is owned by the layer and seeded at construction, so runs
/// are reproducible.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: rand::rngs::StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1), got {}",
            p
        );
        Dropout {
            p,
            rng: rng_from_seed(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            return input.clone();
        }
        use rand::Rng;
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let data = input
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&x, &m)| x * m)
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape().clone())
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        match self.mask.take() {
            None => dout.clone(), // p == 0 path
            Some(mask) => {
                let data = dout
                    .as_slice()
                    .iter()
                    .zip(&mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(data, dout.shape().clone())
            }
        }
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        input_dims.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]);
        assert_eq!(r.forward(&x, Mode::Eval).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], [2]);
        r.forward(&x, Mode::Train);
        let dx = r.backward(&Tensor::from_vec(vec![5.0, 7.0], [2]));
        assert_eq!(dx.as_slice(), &[0.0, 7.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut r = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![-2.0, 4.0], [2]);
        assert_eq!(r.forward(&x, Mode::Eval).as_slice(), &[-0.2, 4.0]);
        r.forward(&x, Mode::Train);
        let dx = r.backward(&Tensor::ones([2]));
        assert_eq!(dx.as_slice(), &[0.1, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], [3]);
        let y = s.forward(&x, Mode::Eval);
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_differences() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0], [3]);
        s.forward(&x, Mode::Train);
        let dx = s.backward(&Tensor::ones([3]));
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (s.forward(&xp, Mode::Eval).as_slice()[i]
                - s.forward(&xm, Mode::Eval).as_slice()[i])
                / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 2.0], [3]);
        let y = t.forward(&x, Mode::Eval);
        assert!((y.as_slice()[0] + y.as_slice()[2]).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 0.0);
        assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let mut t = Tanh::new();
        t.forward(&Tensor::zeros([1]), Mode::Train);
        let dx = t.backward(&Tensor::ones([1]));
        assert!((dx.item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros([2, 3, 4, 4]);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 48]);
        let dx = f.backward(&Tensor::ones([2, 48]));
        assert_eq!(dx.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn dropout_is_identity_in_eval() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::ones([100]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn dropout_preserves_expectation_in_train() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::ones([20_000]);
        let y = d.forward(&x, Mode::Train);
        // E[y] = 1; allow 5% sampling slack.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Survivors are scaled by 2.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::ones([1000]);
        let y = d.forward(&x, Mode::Train);
        let dx = d.backward(&Tensor::ones([1000]));
        // Gradient is zero exactly where the forward output was zero.
        for (o, g) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0, 0);
    }
}
