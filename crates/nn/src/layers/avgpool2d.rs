//! Average-pooling layer.

use crate::layer::{Layer, Mode};
use stsl_tensor::ops::conv::ConvSpec;
use stsl_tensor::ops::pool::{avgpool2d_backward, avgpool2d_forward};
use stsl_tensor::Tensor;

/// 2-D average pooling over `NCHW` activations.
///
/// The paper's CNN uses max pooling; this layer exists for the
/// pooling-type ablation (`pool_ablation` experiment), which tests the
/// paper's Fig. 4 claim that it is specifically *max*-pooling that hides
/// the original image.
#[derive(Debug)]
pub struct AvgPool2d {
    spec: ConvSpec,
    input_dims: Option<(usize, usize, usize, usize)>,
}

impl AvgPool2d {
    /// Creates a `k×k` pool with stride `k` (non-overlapping windows).
    pub fn new(k: usize) -> Self {
        AvgPool2d {
            spec: ConvSpec {
                kh: k,
                kw: k,
                stride: k,
                pad: 0,
            },
            input_dims: None,
        }
    }

    /// Creates a pool with explicit window and stride.
    pub fn with_stride(k: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: ConvSpec {
                kh: k,
                kw: k,
                stride,
                pad: 0,
            },
            input_dims: None,
        }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avgpool2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.input_dims = Some((input.dim(0), input.dim(1), input.dim(2), input.dim(3)));
        }
        avgpool2d_forward(input, self.spec)
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .take()
            .expect("avgpool2d backward without cached forward");
        avgpool2d_backward(dout, dims, self.spec)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        assert_eq!(input_dims.len(), 4, "avgpool2d expects NCHW input");
        let (oh, ow) = self
            .spec
            .output_hw(input_dims[2], input_dims[3])
            .expect("pool window does not fit");
        vec![input_dims[0], input_dims[1], oh, ow]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn halves_spatial_dims() {
        let mut pool = AvgPool2d::new(2);
        let y = pool.forward(&Tensor::zeros([1, 4, 8, 8]), Mode::Eval);
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
        assert_eq!(pool.output_dims(&[1, 4, 8, 8]), vec![1, 4, 4, 4]);
    }

    #[test]
    fn forward_averages_windows() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], [1, 1, 2, 2]);
        let mut pool = AvgPool2d::new(2);
        assert_eq!(pool.forward(&x, Mode::Eval).as_slice(), &[4.0]);
    }

    #[test]
    fn gradient_mass_is_conserved() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng_from_seed(1));
        let y = pool.forward(&x, Mode::Train);
        let dout = Tensor::ones(y.dims().to_vec());
        let dx = pool.backward(&dout);
        assert!((dx.sum() - dout.sum()).abs() < 1e-5);
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn avgpool_keeps_more_detail_than_maxpool_on_smooth_signals() {
        // Reconstruction sanity: average pooling is linear and keeps the
        // low-frequency content; max pooling is a nonlinear envelope.
        let mut avg = AvgPool2d::new(2);
        let mut max = crate::layers::MaxPool2d::new(2);
        let x = Tensor::from_fn([1, 1, 8, 8], |idx| ((idx[2] + idx[3]) % 2) as f32);
        let a = avg.forward(&x, Mode::Eval);
        let m = max.forward(&x, Mode::Eval);
        // Checkerboard: avg gives the true mean (0.5), max saturates at 1.
        assert!(a.as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-6));
        assert!(m.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn has_no_parameters() {
        let mut pool = AvgPool2d::new(2);
        assert_eq!(pool.param_count(), 0);
    }
}
