//! 2-D batch normalization.

use crate::layer::{Layer, Mode, ParamView};
use stsl_parallel::{par_chunks_mut, par_chunks_mut2, par_map_indexed, ChunkPolicy};
use stsl_tensor::Tensor;

/// Batch normalization over `NCHW` activations (per-channel statistics
/// across batch and spatial dimensions), with learnable scale/shift and
/// running statistics for inference.
///
/// Not part of the paper's Fig. 3 CNN, but provided for architecture
/// ablations (normalization interacts interestingly with split learning:
/// batch statistics become *per-end-system* statistics).
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    dgamma: Tensor,
    dbeta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones([channels]),
            beta: Tensor::zeros([channels]),
            dgamma: Tensor::zeros([channels]),
            dbeta: Tensor::zeros([channels]),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Overrides the running-statistics momentum (builder style).
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    fn stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let plane = h * w;
        let count = (n * plane) as f32;
        let src = input.as_slice();
        // Channel-parallel: each channel's reduction is an independent
        // serial loop in (ni, i) ascending order, so the f64 accumulation
        // order — and therefore every rounded f32 — is identical for any
        // thread count.
        let per_channel = par_map_indexed(c, ChunkPolicy::min_chunk(1), |ci| {
            let planes = (0..n).map(|ni| {
                let off = (ni * c + ci) * plane;
                &src[off..off + plane]
            });
            let acc =
                stsl_tensor::sum_f64(planes.clone().flat_map(|p| p.iter().map(|&v| v as f64)));
            let mean = (acc / count as f64) as f32;
            let sq = stsl_tensor::sum_f64(planes.flat_map(|p| {
                p.iter().map(move |&v| {
                    let d = v - mean;
                    (d * d) as f64
                })
            }));
            (mean, (sq / count as f64) as f32)
        });
        per_channel.into_iter().unzip()
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(
            input.rank(),
            4,
            "batchnorm2d expects NCHW, got {}",
            input.shape()
        );
        assert_eq!(input.dim(1), self.channels, "channel mismatch");
        let (c, h, w) = (input.dim(1), input.dim(2), input.dim(3));
        let plane = h * w;
        let (mean, var) = match mode {
            Mode::Train => {
                let (mean, var) = self.stats(input);
                // Update running statistics.
                for ci in 0..c {
                    let rm = self.running_mean.as_mut_slice();
                    rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean[ci];
                    let rv = self.running_var.as_mut_slice();
                    rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * var[ci];
                }
                (mean, var)
            }
            Mode::Eval => (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            ),
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let src = input.as_slice();
        let gamma = self.gamma.as_slice();
        let beta = self.beta.as_slice();
        let mut out = vec![0.0f32; src.len()];
        let mut xhat = vec![0.0f32; src.len()];
        // Batch-parallel elementwise normalization; both outputs are pure
        // per-element writes, so results are partition-invariant.
        let sample = c * plane;
        if !out.is_empty() {
            par_chunks_mut2(
                &mut out,
                &mut xhat,
                sample,
                sample,
                ChunkPolicy::min_chunk(1),
                |ni0, out_band, xhat_band| {
                    for bi in 0..out_band.len() / sample {
                        let ni = ni0 + bi;
                        for ci in 0..c {
                            let off = (ni * c + ci) * plane;
                            let loc = (bi * c + ci) * plane;
                            for i in 0..plane {
                                let xh = (src[off + i] - mean[ci]) * inv_std[ci];
                                xhat_band[loc + i] = xh;
                                out_band[loc + i] = gamma[ci] * xh + beta[ci];
                            }
                        }
                    }
                },
            );
        }
        if mode == Mode::Train {
            self.cache = Some(Cache {
                xhat: Tensor::from_vec(xhat, input.dims().to_vec()),
                inv_std,
                dims: input.dims().to_vec(),
            });
        }
        Tensor::from_vec(out, input.dims().to_vec())
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("batchnorm2d backward without cached forward");
        let dims = cache.dims;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let xhat = cache.xhat.as_slice();
        let g = dout.as_slice();
        let gamma = self.gamma.as_slice();
        // Per-channel reductions, one channel per parallel unit. Each
        // channel's two sums accumulate in the same (ni, i) ascending order
        // as the serial sweep, so no reduction-order drift.
        let (sum_dy, sum_dy_xhat): (Vec<f32>, Vec<f32>) =
            par_map_indexed(c, ChunkPolicy::min_chunk(1), |ci| {
                let offs = (0..n).map(|ni| (ni * c + ci) * plane);
                let dy = stsl_tensor::sum_f32(
                    offs.clone()
                        .flat_map(|off| g[off..off + plane].iter().copied()),
                );
                let dy_xhat = stsl_tensor::sum_f32(offs.flat_map(|off| {
                    g[off..off + plane]
                        .iter()
                        .zip(&xhat[off..off + plane])
                        .map(|(&gv, &xv)| gv * xv)
                }));
                (dy, dy_xhat)
            })
            .into_iter()
            .unzip();
        // Parameter gradients.
        for ci in 0..c {
            self.dbeta.as_mut_slice()[ci] += sum_dy[ci];
            self.dgamma.as_mut_slice()[ci] += sum_dy_xhat[ci];
        }
        // Input gradient: dx = γ/(m·σ) · (m·dy − Σdy − x̂·Σ(dy·x̂)),
        // batch-parallel pure writes.
        let mut dx = vec![0.0f32; g.len()];
        let sample = c * plane;
        if !dx.is_empty() {
            par_chunks_mut(&mut dx, sample, ChunkPolicy::min_chunk(1), |ni0, band| {
                for bi in 0..band.len() / sample {
                    let ni = ni0 + bi;
                    for ci in 0..c {
                        let off = (ni * c + ci) * plane;
                        let loc = (bi * c + ci) * plane;
                        let k = gamma[ci] * cache.inv_std[ci] / count;
                        for i in 0..plane {
                            band[loc + i] = k
                                * (count * g[off + i]
                                    - sum_dy[ci]
                                    - xhat[off + i] * sum_dy_xhat[ci]);
                        }
                    }
                }
            });
        }
        Tensor::from_vec(dx, dims)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamView<'_>)) {
        f(ParamView {
            value: &mut self.gamma,
            grad: &mut self.dgamma,
            name: "gamma",
        });
        f(ParamView {
            value: &mut self.beta,
            grad: &mut self.dbeta,
            name: "beta",
        });
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        assert_eq!(input_dims.len(), 4, "batchnorm2d expects NCHW");
        assert_eq!(input_dims[1], self.channels, "channel mismatch");
        input_dims.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn train_output_is_normalized_per_channel() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn([4, 2, 5, 5], &mut rng_from_seed(0));
        let y = bn.forward(&x, Mode::Train);
        // Each channel of the output has ≈ zero mean and unit variance.
        let (n, plane) = (4, 25);
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..n {
                for i in 0..plane {
                    vals.push(y.at(&[ni, ci, i / 5, i % 5]));
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {}", mean);
            assert!((var - 1.0).abs() < 1e-2, "var {}", var);
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1).momentum(1.0); // running = last batch
        let x = &Tensor::ones([2, 1, 2, 2]) * 3.0;
        // Train once on constant 3s: running_mean = 3, running_var = 0.
        bn.forward(&x, Mode::Train);
        // Eval on 3s must give ≈ 0 (normalized by running stats).
        let y = bn.forward(&x, Mode::Eval);
        assert!(y.as_slice().iter().all(|v| v.abs() < 1e-2), "{:?}", y);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = rng_from_seed(1);
        let x = Tensor::randn([2, 2, 3, 3], &mut rng);
        let m = Tensor::randn([2, 2, 3, 3], &mut rng);
        bn.forward(&x, Mode::Train);
        let dx = bn.backward(&m);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward(x, Mode::Train);
            bn.cache = None; // do not let probe forwards leak caches
            y.as_slice()
                .iter()
                .zip(m.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            let ana = dx.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{}]: {} vs {}",
                i,
                num,
                ana
            );
        }
    }

    #[test]
    fn eval_mode_parameter_gradients_match_finite_differences() {
        // Eval mode never caches, so there is no backward path to probe —
        // but its parameter dependence is the plain affine map
        // y = γ·x̂_run + β, whose gradients under L = Σ m·y have the
        // closed forms dγ_c = Σ m·x̂_run and dβ_c = Σ m. Verify both
        // against central finite differences through the real Eval
        // forward, with non-trivial running statistics.
        let mut bn = BatchNorm2d::new(2);
        let mut rng = rng_from_seed(3);
        let warm = Tensor::randn([4, 2, 3, 3], &mut rng);
        bn.forward(&warm, Mode::Train);
        bn.cache = None;
        let x = Tensor::randn([2, 2, 3, 3], &mut rng);
        let m = Tensor::randn([2, 2, 3, 3], &mut rng);
        let loss = |bn: &mut BatchNorm2d| -> f32 {
            bn.forward(&x, Mode::Eval)
                .as_slice()
                .iter()
                .zip(m.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let (n, c, plane) = (2usize, 2usize, 9usize);
        let fd_eps = 1e-2f32;
        for ci in 0..c {
            let rm = bn.running_mean.as_slice()[ci];
            let rv = bn.running_var.as_slice()[ci];
            let inv = 1.0 / (rv + bn.eps).sqrt();
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for ni in 0..n {
                let off = (ni * c + ci) * plane;
                for i in 0..plane {
                    let xh = (x.as_slice()[off + i] - rm) * inv;
                    dgamma += m.as_slice()[off + i] * xh;
                    dbeta += m.as_slice()[off + i];
                }
            }
            let orig_g = bn.gamma.as_slice()[ci];
            bn.gamma.as_mut_slice()[ci] = orig_g + fd_eps;
            let lp = loss(&mut bn);
            bn.gamma.as_mut_slice()[ci] = orig_g - fd_eps;
            let lm = loss(&mut bn);
            bn.gamma.as_mut_slice()[ci] = orig_g;
            let num_g = (lp - lm) / (2.0 * fd_eps);
            assert!(
                (num_g - dgamma).abs() < 2e-2 * (1.0 + num_g.abs()),
                "dgamma[{}]: {} vs {}",
                ci,
                num_g,
                dgamma
            );
            let orig_b = bn.beta.as_slice()[ci];
            bn.beta.as_mut_slice()[ci] = orig_b + fd_eps;
            let lp = loss(&mut bn);
            bn.beta.as_mut_slice()[ci] = orig_b - fd_eps;
            let lm = loss(&mut bn);
            bn.beta.as_mut_slice()[ci] = orig_b;
            let num_b = (lp - lm) / (2.0 * fd_eps);
            assert!(
                (num_b - dbeta).abs() < 2e-2 * (1.0 + num_b.abs()),
                "dbeta[{}]: {} vs {}",
                ci,
                num_b,
                dbeta
            );
        }
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn([2, 1, 2, 2], &mut rng_from_seed(2));
        bn.forward(&x, Mode::Train);
        bn.backward(&Tensor::ones([2, 1, 2, 2]));
        // dbeta = Σ dout = 8.
        assert!((bn.dbeta.item() - 8.0).abs() < 1e-5);
        bn.zero_grads();
        assert_eq!(bn.dbeta.item(), 0.0);
    }

    #[test]
    fn param_count_is_two_per_channel() {
        let mut bn = BatchNorm2d::new(7);
        assert_eq!(bn.param_count(), 14);
    }
}
