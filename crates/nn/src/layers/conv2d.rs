//! 2-D convolution layer.

use crate::layer::{Layer, Mode, ParamView};
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::ops::conv::{conv2d_backward, conv2d_forward, ConvSpec};
use stsl_tensor::Tensor;

/// A 2-D convolution with bias, He-initialized, `NCHW` activations.
///
/// # Examples
///
/// ```
/// use stsl_nn::layers::Conv2d;
/// use stsl_nn::{Layer, Mode};
/// use stsl_tensor::Tensor;
///
/// let mut conv = Conv2d::new(3, 16, 3, 42).padding_same();
/// let x = Tensor::zeros([2, 3, 32, 32]);
/// let y = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.dims(), &[2, 16, 32, 32]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    spec: ConvSpec,
    in_channels: usize,
    out_channels: usize,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    cols: Tensor,
    input_dims: (usize, usize, usize, usize),
}

impl Conv2d {
    /// Creates a `k×k` convolution from `in_channels` to `out_channels`
    /// with stride 1 and "same" padding, He-initialized from `seed`.
    pub fn new(in_channels: usize, out_channels: usize, k: usize, seed: u64) -> Self {
        Conv2d::with_spec(in_channels, out_channels, ConvSpec::same(k), seed)
    }

    /// Creates a convolution with an explicit [`ConvSpec`].
    pub fn with_spec(in_channels: usize, out_channels: usize, spec: ConvSpec, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let fan_in = in_channels * spec.kh * spec.kw;
        let weight = Tensor::he_normal(
            [out_channels, in_channels, spec.kh, spec.kw],
            fan_in,
            &mut rng,
        );
        let bias = Tensor::zeros([out_channels]);
        Conv2d {
            dweight: Tensor::zeros(weight.shape().clone()),
            dbias: Tensor::zeros(bias.shape().clone()),
            weight,
            bias,
            spec,
            in_channels,
            out_channels,
            cache: None,
        }
    }

    /// Reconfigures to "same" padding (builder style).
    pub fn padding_same(mut self) -> Self {
        self.spec.pad = self.spec.kh / 2;
        self
    }

    /// Reconfigures to "valid" (no) padding (builder style).
    pub fn padding_valid(mut self) -> Self {
        self.spec.pad = 0;
        self
    }

    /// The convolution geometry.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Immutable access to the weight tensor `[oc, ic, kh, kw]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable access to the bias tensor `[oc]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let fwd = conv2d_forward(input, &self.weight, &self.bias, self.spec)
            .expect("conv2d forward shape mismatch");
        if mode == Mode::Train {
            self.cache = Some(Cache {
                cols: fwd.cols,
                input_dims: (input.dim(0), input.dim(1), input.dim(2), input.dim(3)),
            });
        }
        fwd.output
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("conv2d backward without cached forward");
        let grads = conv2d_backward(dout, &cache.cols, &self.weight, cache.input_dims, self.spec);
        self.dweight.axpy(1.0, &grads.dweight);
        self.dbias.axpy(1.0, &grads.dbias);
        grads.dinput
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamView<'_>)) {
        f(ParamView {
            value: &mut self.weight,
            grad: &mut self.dweight,
            name: "weight",
        });
        f(ParamView {
            value: &mut self.bias,
            grad: &mut self.dbias,
            name: "bias",
        });
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        assert_eq!(input_dims.len(), 4, "conv2d expects NCHW input");
        assert_eq!(input_dims[1], self.in_channels, "conv2d channel mismatch");
        let (oh, ow) = self
            .spec
            .output_hw(input_dims[2], input_dims[3])
            .expect("conv window does not fit");
        vec![input_dims[0], self.out_channels, oh, ow]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_same_padding() {
        let mut conv = Conv2d::new(3, 8, 3, 0);
        let y = conv.forward(&Tensor::zeros([2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 8, 16, 16]);
        assert_eq!(conv.output_dims(&[2, 3, 16, 16]), vec![2, 8, 16, 16]);
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.forward(&Tensor::zeros([1, 1, 4, 4]), Mode::Eval);
        assert!(conv.cache.is_none());
    }

    #[test]
    #[should_panic(expected = "without cached forward")]
    fn backward_without_forward_panics() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.backward(&Tensor::zeros([1, 1, 4, 4]));
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut conv = Conv2d::new(1, 1, 3, 1);
        let x = Tensor::ones([1, 1, 4, 4]);
        let dout = Tensor::ones([1, 1, 4, 4]);
        conv.forward(&x, Mode::Train);
        conv.backward(&dout);
        let g1 = conv.dbias.item();
        conv.forward(&x, Mode::Train);
        conv.backward(&dout);
        assert!((conv.dbias.item() - 2.0 * g1).abs() < 1e-5);
        conv.zero_grads();
        assert_eq!(conv.dbias.item(), 0.0);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut conv = Conv2d::new(3, 16, 3, 0);
        assert_eq!(conv.param_count(), 16 * 3 * 3 * 3 + 16);
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let a = Conv2d::new(3, 4, 3, 99);
        let b = Conv2d::new(3, 4, 3, 99);
        assert_eq!(a.weight(), b.weight());
    }
}
