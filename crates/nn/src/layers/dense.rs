//! Fully-connected (dense) layer.

use crate::layer::{Layer, Mode, ParamView};
use stsl_tensor::init::rng_from_seed;
use stsl_tensor::Tensor;

/// A fully-connected layer: `y = x · Wᵀ + b` over `[batch, in]` inputs.
///
/// Weights are `[out, in]` (each row is one output unit), He-initialized.
#[derive(Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    in_features: usize,
    out_features: usize,
    cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer, He-initialized from `seed`.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let weight = Tensor::he_normal([out_features, in_features], in_features, &mut rng);
        let bias = Tensor::zeros([out_features]);
        Dense {
            dweight: Tensor::zeros(weight.shape().clone()),
            dbias: Tensor::zeros(bias.shape().clone()),
            weight,
            bias,
            in_features,
            out_features,
            cache: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the `[out, in]` weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable access to the `[out]` bias.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(
            input.rank(),
            2,
            "dense expects [batch, features], got {}",
            input.shape()
        );
        assert_eq!(input.dim(1), self.in_features, "dense input width mismatch");
        // [n, in] · [out, in]ᵀ -> [n, out] (the GEMM is row-parallel
        // inside stsl-tensor); the bias add is batch-parallel pure writes.
        let mut out = input.matmul_t(&self.weight);
        let bias = self.bias.as_slice();
        let o = out.dim(1);
        let data = out.as_mut_slice();
        if !data.is_empty() {
            stsl_parallel::par_chunks_mut(
                data,
                o,
                stsl_parallel::ChunkPolicy::min_chunk(64),
                |_r0, band| {
                    for row in band.chunks_mut(o) {
                        for (d, &b) in row.iter_mut().zip(bias) {
                            *d += b;
                        }
                    }
                },
            );
        }
        if mode == Mode::Train {
            self.cache = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let input = self
            .cache
            .take()
            .expect("dense backward without cached forward");
        assert_eq!(
            dout.dims(),
            &[input.dim(0), self.out_features],
            "dense dout shape"
        );
        // dW = doutᵀ · x  -> [out, in]
        self.dweight.axpy(1.0, &dout.t_matmul(&input));
        // db = column sums of dout.
        self.dbias.axpy(1.0, &dout.sum_axis(0));
        // dx = dout · W -> [n, in]
        dout.matmul(&self.weight)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamView<'_>)) {
        f(ParamView {
            value: &mut self.weight,
            grad: &mut self.dweight,
            name: "weight",
        });
        f(ParamView {
            value: &mut self.bias,
            grad: &mut self.dbias,
            name: "bias",
        });
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        assert_eq!(input_dims.len(), 2, "dense expects [batch, features]");
        assert_eq!(
            input_dims[1], self.in_features,
            "dense input width mismatch"
        );
        vec![input_dims[0], self.out_features]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn forward_applies_affine_map() {
        let mut d = Dense::new(2, 1, 0);
        // Overwrite params with known values.
        let snap = vec![
            Tensor::from_vec(vec![2.0, -1.0], [1, 2]),
            Tensor::from_vec(vec![0.5], [1]),
        ];
        d.load_param_tensors(&snap);
        let x = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
        let y = d.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = rng_from_seed(2);
        let mut d = Dense::new(4, 3, 7);
        let x = Tensor::randn([2, 4], &mut rng);
        let m = Tensor::randn([2, 3], &mut rng);
        let y = d.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 3]);
        let dx = d.backward(&m);

        let loss = |d: &mut Dense, x: &Tensor| -> f32 {
            let y = d.forward(x, Mode::Eval);
            y.as_slice()
                .iter()
                .zip(m.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        // dx check
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&mut d, &xp) - loss(&mut d, &xm)) / (2.0 * eps);
            assert!((num - dx.as_slice()[i]).abs() < 1e-2 * (1.0 + num.abs()));
        }
        // dW check on a few coordinates
        let dw = d.dweight.clone();
        for i in [0usize, 5, 11] {
            let orig = d.weight.as_slice()[i];
            d.weight.as_mut_slice()[i] = orig + eps;
            let lp = loss(&mut d, &x);
            d.weight.as_mut_slice()[i] = orig - eps;
            let lm = loss(&mut d, &x);
            d.weight.as_mut_slice()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dw.as_slice()[i]).abs() < 1e-2 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut d = Dense::new(2, 2, 1);
        let x = Tensor::zeros([3, 2]);
        d.forward(&x, Mode::Train);
        let dout = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        d.backward(&dout);
        assert_eq!(d.dbias.as_slice(), &[9.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_input_width() {
        let mut d = Dense::new(4, 2, 0);
        d.forward(&Tensor::zeros([1, 3]), Mode::Eval);
    }

    #[test]
    fn output_dims_inference() {
        let d = Dense::new(10, 5, 0);
        assert_eq!(d.output_dims(&[8, 10]), vec![8, 5]);
    }
}
