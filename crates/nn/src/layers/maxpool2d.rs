//! Max-pooling layer.

use crate::layer::{Layer, Mode};
use stsl_tensor::ops::conv::ConvSpec;
use stsl_tensor::ops::pool::{maxpool2d_backward, maxpool2d_forward};
use stsl_tensor::Tensor;

/// 2-D max pooling over `NCHW` activations.
///
/// The paper's CNN (Fig. 3) follows every convolution with a `2×2`,
/// stride-2 max pool, which both downsamples and — as Fig. 4 demonstrates —
/// destroys enough spatial detail to hide the original image.
#[derive(Debug)]
pub struct MaxPool2d {
    spec: ConvSpec,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    argmax: Vec<usize>,
    input_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a `k×k` pool with stride `k` (non-overlapping windows).
    pub fn new(k: usize) -> Self {
        MaxPool2d {
            spec: ConvSpec {
                kh: k,
                kw: k,
                stride: k,
                pad: 0,
            },
            cache: None,
        }
    }

    /// Creates a pool with explicit window and stride.
    pub fn with_stride(k: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: ConvSpec {
                kh: k,
                kw: k,
                stride,
                pad: 0,
            },
            cache: None,
        }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let fwd = maxpool2d_forward(input, self.spec);
        if mode == Mode::Train {
            self.cache = Some(Cache {
                argmax: fwd.argmax,
                input_dims: input.dims().to_vec(),
            });
        }
        fwd.output
    }

    fn backward(&mut self, dout: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("maxpool2d backward without cached forward");
        let len = cache.input_dims.iter().product();
        maxpool2d_backward(dout, &cache.argmax, len).reshape(cache.input_dims)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        assert_eq!(input_dims.len(), 4, "maxpool2d expects NCHW input");
        let (oh, ow) = self
            .spec
            .output_hw(input_dims[2], input_dims[3])
            .expect("pool window does not fit");
        vec![input_dims[0], input_dims[1], oh, ow]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn halves_spatial_dims() {
        let mut pool = MaxPool2d::new(2);
        let y = pool.forward(&Tensor::zeros([1, 4, 8, 8]), Mode::Eval);
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
        assert_eq!(pool.output_dims(&[1, 4, 8, 8]), vec![1, 4, 4, 4]);
    }

    #[test]
    fn backward_restores_input_shape() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::randn([2, 3, 6, 6], &mut rng_from_seed(0));
        let y = pool.forward(&x, Mode::Train);
        let dx = pool.backward(&Tensor::ones(y.dims().to_vec()));
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn gradient_mass_is_conserved() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng_from_seed(1));
        let y = pool.forward(&x, Mode::Train);
        let dout = Tensor::ones(y.dims().to_vec());
        let dx = pool.backward(&dout);
        assert!((dx.sum() - dout.sum()).abs() < 1e-5);
    }

    #[test]
    fn overlapping_pool_with_stride() {
        let mut pool = MaxPool2d::with_stride(3, 1);
        let y = pool.forward(&Tensor::zeros([1, 1, 5, 5]), Mode::Eval);
        assert_eq!(y.dims(), &[1, 1, 3, 3]);
    }

    #[test]
    fn has_no_parameters() {
        let mut pool = MaxPool2d::new(2);
        assert_eq!(pool.param_count(), 0);
        assert!(pool.param_tensors().is_empty());
    }
}
