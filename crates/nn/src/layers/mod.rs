//! Concrete layer implementations.

mod activation;
mod avgpool2d;
mod batchnorm;
mod conv2d;
mod dense;
mod maxpool2d;

pub use activation::{Dropout, Flatten, LeakyRelu, Relu, Sigmoid, Tanh};
pub use avgpool2d::AvgPool2d;
pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use maxpool2d::MaxPool2d;
