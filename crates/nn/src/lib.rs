//! A minimal, from-scratch neural-network stack on [`stsl_tensor`]:
//! layers with manual backprop, losses, optimizers and a [`Sequential`]
//! container that can be **split** into a lower (end-system) and upper
//! (server) half — the primitive the spatio-temporal split-learning crate
//! builds on.
//!
//! Everything is CPU-only `f32`, deterministic given seeds, and validated
//! against finite differences (see [`gradcheck`]).
//!
//! # Examples
//!
//! Train a small classifier:
//!
//! ```
//! use stsl_nn::{Sequential, layers::{Dense, Relu}, loss::SoftmaxCrossEntropy, optim::Sgd};
//! use stsl_tensor::{Tensor, init::rng_from_seed};
//!
//! let mut net = Sequential::new();
//! net.push(Dense::new(8, 16, 0));
//! net.push(Relu::new());
//! net.push(Dense::new(16, 2, 1));
//!
//! let x = Tensor::randn([4, 8], &mut rng_from_seed(7));
//! let y = [0, 1, 0, 1];
//! let mut opt = Sgd::new(0.05);
//! let loss = SoftmaxCrossEntropy::new();
//! let before = net.train_batch(&x, &y, &loss, &mut opt);
//! for _ in 0..50 { net.train_batch(&x, &y, &loss, &mut opt); }
//! let after = net.train_batch(&x, &y, &loss, &mut opt);
//! assert!(after < before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clip;
pub mod gradcheck;
mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
mod model;
pub mod optim;
pub mod summary;

pub use layer::{Layer, Mode, ParamView};
pub use model::Sequential;
