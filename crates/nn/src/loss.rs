//! Loss functions with analytic gradients.

use stsl_tensor::Tensor;

/// Value and gradient of a loss evaluated on a batch.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub value: f32,
    /// Gradient of the mean loss w.r.t. the logits/predictions (same shape
    /// as the network output).
    pub grad: Tensor,
}

/// A differentiable training objective on `[batch, classes]` outputs.
pub trait Loss: std::fmt::Debug + Send {
    /// Computes the mean loss and its gradient w.r.t. `logits`.
    ///
    /// `targets` are class indices, one per row of `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.dim(0)` or a target index is out
    /// of range.
    fn forward(&self, logits: &Tensor, targets: &[usize]) -> LossOutput;
}

/// Softmax cross-entropy on raw logits (the standard classification loss;
/// this is what trains the paper's CIFAR-10 CNN).
///
/// Combining the softmax and the negative log-likelihood yields the
/// numerically pleasant gradient `softmax(logits) - onehot(target)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }
}

impl Loss for SoftmaxCrossEntropy {
    fn forward(&self, logits: &Tensor, targets: &[usize]) -> LossOutput {
        assert_eq!(logits.rank(), 2, "cross-entropy expects [batch, classes]");
        let (n, c) = (logits.dim(0), logits.dim(1));
        assert_eq!(targets.len(), n, "one target per batch row");
        for &t in targets {
            assert!(t < c, "target {} out of range for {} classes", t, c);
        }
        let log_probs = logits.log_softmax_rows();
        let value = -stsl_tensor::sum_f32(
            targets
                .iter()
                .enumerate()
                .map(|(r, &t)| log_probs.at(&[r, t])),
        ) / n as f32;
        // grad = (softmax - onehot) / n
        let mut grad = logits.softmax_rows();
        {
            let g = grad.as_mut_slice();
            for (r, &t) in targets.iter().enumerate() {
                g[r * c + t] -= 1.0;
            }
        }
        grad.scale_inplace(1.0 / n as f32);
        LossOutput { value, grad }
    }
}

/// Mean squared error against one-hot targets (used by ablations and the
/// inversion attack's regression objective).
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        MseLoss
    }

    /// MSE between two same-shaped tensors, with gradient w.r.t. `pred`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn dense(&self, pred: &Tensor, target: &Tensor) -> LossOutput {
        assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
        let n = pred.len().max(1) as f32;
        let diff = pred - target;
        let value = diff.sq_norm() / n;
        let grad = &diff * (2.0 / n);
        LossOutput { value, grad }
    }
}

impl Loss for MseLoss {
    fn forward(&self, logits: &Tensor, targets: &[usize]) -> LossOutput {
        assert_eq!(logits.rank(), 2, "mse expects [batch, classes]");
        let (n, c) = (logits.dim(0), logits.dim(1));
        assert_eq!(targets.len(), n, "one target per batch row");
        let onehot = Tensor::from_fn(
            [n, c],
            |idx| if targets[idx[0]] == idx[1] { 1.0 } else { 0.0 },
        );
        self.dense(logits, &onehot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], [1, 3]);
        let out = SoftmaxCrossEntropy::new().forward(&logits, &[0]);
        assert!(out.value < 1e-3);
    }

    #[test]
    fn cross_entropy_of_uniform_prediction_is_ln_c() {
        let logits = Tensor::zeros([4, 10]);
        let out = SoftmaxCrossEntropy::new().forward(&logits, &[0, 1, 2, 3]);
        assert!((out.value - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let mut rng = rng_from_seed(3);
        let logits = Tensor::randn([5, 7], &mut rng);
        let out = SoftmaxCrossEntropy::new().forward(&logits, &[0, 1, 2, 3, 4]);
        let row_sums = out.grad.sum_axis(1);
        for r in 0..5 {
            assert!(row_sums.at(&[r]).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = rng_from_seed(4);
        let logits = Tensor::randn([3, 4], &mut rng);
        let targets = [1usize, 0, 3];
        let loss = SoftmaxCrossEntropy::new();
        let out = loss.forward(&logits, &targets);
        let eps = 1e-2;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (loss.forward(&lp, &targets).value - loss.forward(&lm, &targets).value)
                / (2.0 * eps);
            let ana = out.grad.as_slice()[i];
            assert!(
                (num - ana).abs() < 1e-3 * (1.0 + num.abs()),
                "grad[{}]: {} vs {}",
                i,
                num,
                ana
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_target() {
        SoftmaxCrossEntropy::new().forward(&Tensor::zeros([1, 3]), &[3]);
    }

    #[test]
    fn mse_dense_value_and_grad() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let target = Tensor::from_vec(vec![0.0, 0.0], [1, 2]);
        let out = MseLoss::new().dense(&pred, &target);
        assert!((out.value - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn mse_classification_uses_onehot() {
        let pred = Tensor::from_vec(vec![1.0, 0.0], [1, 2]);
        let out = MseLoss::new().forward(&pred, &[0]);
        assert!(out.value.abs() < 1e-6);
    }
}
