//! Classification metrics.

use stsl_tensor::Tensor;

/// Fraction of predictions equal to targets.
///
/// # Panics
///
/// Panics if lengths differ or both are empty.
pub fn accuracy(predictions: &[usize], targets: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    assert!(!targets.is_empty(), "accuracy of empty batch");
    let hits = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    hits as f32 / targets.len() as f32
}

/// A `c×c` confusion matrix: `m[true][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(truth, prediction)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(
            truth < self.classes && prediction < self.classes,
            "class index out of range"
        );
        self.counts[truth * self.classes + prediction] += 1;
    }

    /// Records a batch of observations.
    pub fn record_batch(&mut self, truths: &[usize], predictions: &[usize]) {
        assert_eq!(truths.len(), predictions.len(), "batch length mismatch");
        for (&t, &p) in truths.iter().zip(predictions) {
            self.record(t, p);
        }
    }

    /// Count at `(truth, prediction)`.
    pub fn count(&self, truth: usize, prediction: usize) -> u64 {
        self.counts[truth * self.classes + prediction]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total); 0 if nothing recorded.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall: `diag / row sum`, `None` when the class was never
    /// seen as truth.
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u64 = (0..self.classes).map(|j| self.count(class, j)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }

    /// Per-class precision: `diag / column sum`, `None` when the class was
    /// never predicted.
    pub fn precision(&self, class: usize) -> Option<f32> {
        let col: u64 = (0..self.classes).map(|i| self.count(i, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / col as f32)
        }
    }
}

/// Running mean of a scalar stream (loss curves etc.).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, value: f32) {
        self.sum += value as f64;
        self.n += 1;
    }

    /// Current mean, or `None` if empty.
    pub fn mean(&self) -> Option<f32> {
        if self.n == 0 {
            None
        } else {
            Some((self.sum / self.n as f64) as f32)
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Top-k accuracy from raw logits.
///
/// # Panics
///
/// Panics if `k == 0`, shapes mismatch, or `k > classes`.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    assert!(k > 0, "k must be positive");
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert!(k <= c, "k {} exceeds class count {}", k, c);
    assert_eq!(targets.len(), n, "target length mismatch");
    let data = logits.as_slice();
    let mut hits = 0;
    for (r, &t) in targets.iter().enumerate() {
        let row = &data[r * c..(r + 1) * c];
        let target_score = row[t];
        // Count how many classes strictly beat the target.
        let better = row.iter().filter(|&&v| v > target_score).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[0, 1, 2, 2], &[0, 1, 1, 2]), 0.75);
        assert_eq!(accuracy(&[5], &[5]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let mut m = ConfusionMatrix::new(3);
        m.record_batch(&[0, 1, 2, 1], &[0, 1, 0, 1]);
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(2, 0), 1);
        assert_eq!(m.accuracy(), 0.75);
    }

    #[test]
    fn recall_and_precision() {
        let mut m = ConfusionMatrix::new(2);
        // truth 0: predicted 0, 0, 1 — recall 2/3
        m.record_batch(&[0, 0, 0, 1], &[0, 0, 1, 1]);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        // precision of class 1: predicted-1 column has 2 entries, 1 correct.
        assert!((m.precision(1).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn recall_of_unseen_class_is_none() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.recall(3), None);
        assert_eq!(m.precision(3), None);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn running_mean_accumulates() {
        let mut rm = RunningMean::new();
        assert_eq!(rm.mean(), None);
        rm.push(1.0);
        rm.push(3.0);
        assert_eq!(rm.mean(), Some(2.0));
        assert_eq!(rm.count(), 2);
    }

    #[test]
    fn top_k_reduces_to_accuracy_at_one() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.0, 0.2, 0.5, 0.3], [2, 3]);
        let targets = [0usize, 2];
        let t1 = top_k_accuracy(&logits, &targets, 1);
        let preds = logits.argmax_rows();
        assert_eq!(t1, accuracy(&preds, &targets));
        // k=2: row 1 target (0.3) is second best -> hit.
        assert_eq!(top_k_accuracy(&logits, &targets, 2), 1.0);
    }
}
