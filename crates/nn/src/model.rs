//! [`Sequential`]: an ordered stack of layers with end-to-end backprop.

use crate::layer::{Layer, Mode, ParamView};
use crate::loss::Loss;
use crate::optim::Optimizer;
use stsl_tensor::Tensor;

/// A feed-forward network: layers applied in order.
///
/// `Sequential` is the unit the split-learning crate cuts apart: a client
/// holds one `Sequential` (the lower layers), the server holds another (the
/// upper layers plus the loss), and [`Sequential::split_at`] produces both
/// halves from a full model description.
///
/// # Examples
///
/// ```
/// use stsl_nn::{Sequential, Mode};
/// use stsl_nn::layers::{Dense, Relu};
/// use stsl_tensor::Tensor;
///
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 16, 1));
/// net.push(Relu::new());
/// net.push(Dense::new(16, 3, 2));
/// let out = net.forward(&Tensor::zeros([2, 4]), Mode::Eval);
/// assert_eq!(out.dims(), &[2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers (then it is the identity map).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names, in order (useful in logs and checkpoints).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs the network forward. An empty network is the identity.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    /// Runs the network forward, returning the output of **every** layer
    /// in order (the last element equals [`Sequential::forward`]'s
    /// result). Used by the privacy experiments to capture what an
    /// eavesdropper sees after each stage (paper Fig. 4).
    pub fn forward_collect(&mut self, input: &Tensor, mode: Mode) -> Vec<Tensor> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
            outputs.push(x.clone());
        }
        outputs
    }

    /// Backpropagates `dout` through all layers (most recent training-mode
    /// forward), accumulating parameter gradients. Returns the gradient
    /// w.r.t. the network input — which split learning sends back to the
    /// end-system that produced the activations.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward preceded this call.
    pub fn backward(&mut self, dout: &Tensor) -> Tensor {
        let mut g = dout.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Applies one optimizer step to every parameter, then calls
    /// [`Optimizer::finish_step`]. Parameter ids are `base_id + position`,
    /// letting several networks share one optimizer without id collisions
    /// (the split trainer gives each end-system a distinct base).
    pub fn step_with_base(&mut self, opt: &mut dyn Optimizer, base_id: usize) {
        let mut id = base_id;
        for layer in &mut self.layers {
            layer.visit_params(&mut |p: ParamView<'_>| {
                opt.update(id, p.value, p.grad);
                id += 1;
            });
        }
        opt.finish_step();
    }

    /// [`Sequential::step_with_base`] with base 0 (single-network case).
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.step_with_base(opt, 0);
    }

    /// One full training step: zero grads, forward, loss, backward, update.
    /// Returns the batch loss.
    pub fn train_batch(
        &mut self,
        input: &Tensor,
        targets: &[usize],
        loss: &dyn Loss,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        self.zero_grads();
        let logits = self.forward(input, Mode::Train);
        let out = loss.forward(&logits, targets);
        self.backward(&out.grad);
        self.step(opt);
        out.value
    }

    /// Predicted class indices for a batch.
    pub fn predict(&mut self, input: &Tensor) -> Vec<usize> {
        self.forward(input, Mode::Eval).argmax_rows()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.param_count()).sum()
    }

    /// Snapshot of every parameter tensor, in layer order.
    pub fn state_dict(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            out.extend(layer.param_tensors());
        }
        out
    }

    /// Restores parameters from a [`Sequential::state_dict`] snapshot of an
    /// identically-configured network.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has the wrong number of tensors or any shape
    /// mismatches.
    pub fn load_state_dict(&mut self, state: &[Tensor]) {
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.load_param_tensors(&state[off..]);
        }
        assert_eq!(
            off,
            state.len(),
            "state dict has {} extra tensors",
            state.len() - off
        );
    }

    /// Splits the network after layer `k`: returns `(lower, upper)` where
    /// `lower` holds layers `0..k` and `upper` holds `k..`.
    ///
    /// This is the primitive split learning is built on: `lower` goes to an
    /// end-system, `upper` stays at the centralized server.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.len()`.
    pub fn split_at(mut self, k: usize) -> (Sequential, Sequential) {
        assert!(
            k <= self.layers.len(),
            "split index {} beyond {} layers",
            k,
            self.layers.len()
        );
        let upper = self.layers.split_off(k);
        (
            Sequential {
                layers: self.layers,
            },
            Sequential { layers: upper },
        )
    }

    /// Output shape for a given input shape, propagated through all layers.
    pub fn output_dims(&self, input_dims: &[usize]) -> Vec<usize> {
        let mut dims = input_dims.to_vec();
        for layer in &self.layers {
            dims = layer.output_dims(&dims);
        }
        dims
    }

    /// Visits every (parameter, gradient) pair across all layers, in
    /// stable order. This is how optimizers, checkpoints and the gradient
    /// checker reach parameters without holding two borrows of a layer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamView<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Visits every layer in order (diagnostics such as
    /// [`crate::summary::summarize`]).
    pub fn visit_layers(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        for layer in &mut self.layers {
            f(layer.as_mut());
        }
    }

    /// Output shape of the single layer at `index` for `input_dims`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the shape is incompatible.
    pub fn layer_output_dims(&self, index: usize, input_dims: &[usize]) -> Vec<usize> {
        self.layers[index].output_dims(input_dims)
    }

    /// Mean squared gradient norm across all parameters (diagnostic for
    /// exploding/vanishing gradients in the split pipeline).
    pub fn grad_sq_norm(&mut self) -> f32 {
        let mut per_param = Vec::new();
        for layer in &mut self.layers {
            layer.visit_params(&mut |p: ParamView<'_>| per_param.push(p.grad.sq_norm()));
        }
        stsl_tensor::sum_f32(per_param)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::Sgd;
    use stsl_tensor::init::rng_from_seed;

    fn tiny_net(seed: u64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(4, 8, seed));
        net.push(Relu::new());
        net.push(Dense::new(8, 3, seed + 1));
        net
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::arange(0.0, 1.0, 4).reshape([1, 4]);
        assert_eq!(net.forward(&x, Mode::Eval), x);
        assert!(net.is_empty());
    }

    #[test]
    fn forward_shape_inference_agrees_with_execution() {
        let mut net = tiny_net(0);
        let out = net.forward(&Tensor::zeros([5, 4]), Mode::Eval);
        assert_eq!(out.dims(), net.output_dims(&[5, 4]).as_slice());
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut rng = rng_from_seed(10);
        // Three linearly separable clusters.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let class = i % 3;
            let base = [0.0, 4.0, -4.0][class];
            let noise = Tensor::randn([4], &mut rng);
            for j in 0..4 {
                xs.push(base + 0.3 * noise.as_slice()[j]);
            }
            ys.push(class);
        }
        let x = Tensor::from_vec(xs, [30, 4]);
        let mut net = tiny_net(3);
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.1);
        let first = net.train_batch(&x, &ys, &loss, &mut opt);
        let mut last = first;
        for _ in 0..60 {
            last = net.train_batch(&x, &ys, &loss, &mut opt);
        }
        assert!(last < first * 0.2, "loss {} -> {}", first, last);
        let preds = net.predict(&x);
        let acc = preds.iter().zip(&ys).filter(|(p, y)| p == y).count() as f32 / 30.0;
        assert!(acc > 0.9, "accuracy {}", acc);
    }

    #[test]
    fn state_dict_roundtrip_preserves_behaviour() {
        let mut a = tiny_net(5);
        let mut b = tiny_net(99); // different init
        let x = Tensor::randn([3, 4], &mut rng_from_seed(0));
        assert_ne!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
        let state = a.state_dict();
        b.load_state_dict(&state);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
    }

    #[test]
    #[should_panic(expected = "extra tensors")]
    fn load_state_dict_rejects_wrong_length() {
        let mut net = tiny_net(0);
        let mut state = net.state_dict();
        state.push(Tensor::zeros([1]));
        net.load_state_dict(&state);
    }

    #[test]
    fn split_at_partitions_layers() {
        let net = tiny_net(1);
        let (lower, upper) = net.split_at(2);
        assert_eq!(lower.layer_names(), vec!["dense", "relu"]);
        assert_eq!(upper.layer_names(), vec!["dense"]);
    }

    #[test]
    fn split_halves_compose_to_full_network() {
        let mut full = tiny_net(8);
        let x = Tensor::randn([2, 4], &mut rng_from_seed(1));
        let expected = full.forward(&x, Mode::Eval);
        let (mut lower, mut upper) = full.split_at(2);
        let mid = lower.forward(&x, Mode::Eval);
        let got = upper.forward(&mid, Mode::Eval);
        assert_eq!(got, expected);
    }

    #[test]
    fn split_at_zero_gives_identity_lower() {
        let net = tiny_net(2);
        let (lower, upper) = net.split_at(0);
        assert!(lower.is_empty());
        assert_eq!(upper.len(), 3);
    }

    #[test]
    fn backward_through_split_matches_full_backward() {
        // Gradients flowing through (upper ∘ lower) must equal gradients of
        // the unsplit network — the core correctness property of split
        // learning.
        let x = Tensor::randn([2, 4], &mut rng_from_seed(2));
        let targets = [0usize, 2];
        let loss = SoftmaxCrossEntropy::new();

        let mut full = tiny_net(21);
        full.zero_grads();
        let logits = full.forward(&x, Mode::Train);
        let l = loss.forward(&logits, &targets);
        full.backward(&l.grad);
        let full_gnorm = full.grad_sq_norm();

        let (mut lower, mut upper) = tiny_net(21).split_at(2);
        lower.zero_grads();
        upper.zero_grads();
        let smashed = lower.forward(&x, Mode::Train);
        let logits2 = upper.forward(&smashed, Mode::Train);
        let l2 = loss.forward(&logits2, &targets);
        let cut_grad = upper.backward(&l2.grad);
        lower.backward(&cut_grad);
        let split_gnorm = lower.grad_sq_norm() + upper.grad_sq_norm();

        assert!((full_gnorm - split_gnorm).abs() < 1e-4 * (1.0 + full_gnorm));
        assert_eq!(logits, logits2);
    }

    #[test]
    fn flatten_conv_like_pipeline_shapes() {
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Dense::new(16, 2, 0));
        assert_eq!(net.output_dims(&[3, 4, 2, 2]), vec![3, 2]);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut net = tiny_net(0);
        assert_eq!(net.param_count(), (4 * 8 + 8) + (8 * 3 + 3));
    }
}
