//! First-order optimizers.
//!
//! Optimizers are driven through [`crate::Sequential::step`] (or any code
//! that walks a layer stack): for every parameter they receive a stable
//! integer id, the parameter and its gradient, and update the parameter in
//! place. Per-parameter state (momentum, Adam moments) is keyed by that id
//! and allocated lazily.

use std::collections::BTreeMap;
use stsl_tensor::Tensor;

/// A stateful first-order optimizer.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update to `value` given `grad`.
    ///
    /// `param_id` must be stable across steps for the same parameter (the
    /// model guarantees this by enumerating parameters in layer order).
    fn update(&mut self, param_id: usize, value: &mut Tensor, grad: &Tensor);

    /// Signals that one optimization step (covering all parameters) has
    /// completed. Time-dependent optimizers (Adam) advance their step
    /// counter here.
    fn finish_step(&mut self) {}

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum and weight
/// decay: `v = μv + g + λw; w -= η v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: BTreeMap<usize, Tensor>,
}

impl Sgd {
    /// Creates momentum-free SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: BTreeMap::new(),
        }
    }

    /// Adds classical momentum (builder style).
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds L2 weight decay (builder style).
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, param_id: usize, value: &mut Tensor, grad: &Tensor) {
        if self.momentum == 0.0 && self.weight_decay == 0.0 {
            value.axpy(-self.lr, grad);
            return;
        }
        let mut effective = grad.clone();
        if self.weight_decay != 0.0 {
            effective.axpy(self.weight_decay, value);
        }
        if self.momentum != 0.0 {
            let v = self
                .velocity
                .entry(param_id)
                .or_insert_with(|| Tensor::zeros(value.shape().clone()));
            v.scale_inplace(self.momentum);
            v.axpy(1.0, &effective);
            value.axpy(-self.lr, v);
        } else {
            value.axpy(-self.lr, &effective);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    moments: BTreeMap<usize, (Tensor, Tensor)>,
}

impl Adam {
    /// Creates Adam with the canonical defaults β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: BTreeMap::new(),
        }
    }

    /// Overrides the β coefficients (builder style).
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn update(&mut self, param_id: usize, value: &mut Tensor, grad: &Tensor) {
        let (m, v) = self.moments.entry(param_id).or_insert_with(|| {
            (
                Tensor::zeros(value.shape().clone()),
                Tensor::zeros(value.shape().clone()),
            )
        });
        // Step count for bias correction: t is advanced in finish_step, so
        // during the first step self.t == 0 and we correct with t+1.
        let t = (self.t + 1) as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        let ms = m.as_mut_slice();
        let vs = v.as_mut_slice();
        let gs = grad.as_slice();
        let ws = value.as_mut_slice();
        let c1 = 1.0 - b1.powf(t);
        let c2 = 1.0 - b2.powf(t);
        for i in 0..ws.len() {
            ms[i] = b1 * ms[i] + (1.0 - b1) * gs[i];
            vs[i] = b2 * vs[i] + (1.0 - b2) * gs[i] * gs[i];
            let mhat = ms[i] / c1;
            let vhat = vs[i] / c2;
            ws[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn finish_step(&mut self) {
        self.t += 1;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// A step-decay learning-rate schedule: multiplies the optimizer's learning
/// rate by `gamma` every `every` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    base_lr: f32,
    gamma: f32,
    every: usize,
}

impl StepDecay {
    /// Creates a schedule starting from `base_lr`.
    pub fn new(base_lr: f32, gamma: f32, every: usize) -> Self {
        assert!(every > 0, "decay interval must be positive");
        StepDecay {
            base_lr,
            gamma,
            every,
        }
    }

    /// Learning rate for a 0-based `epoch`.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.every) as i32)
    }

    /// Applies the schedule to an optimizer for `epoch`.
    pub fn apply(&self, epoch: usize, opt: &mut dyn Optimizer) {
        opt.set_learning_rate(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_grad(w: &Tensor) -> Tensor {
        // d/dw of 0.5 * ||w||^2 is w.
        w.clone()
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut w = Tensor::from_vec(vec![1.0, -2.0], [2]);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quad_grad(&w);
            opt.update(0, &mut w, &g);
            opt.finish_step();
        }
        assert!(w.sq_norm() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let mut w = Tensor::from_vec(vec![1.0], [1]);
            let mut opt = Sgd::new(0.01).momentum(momentum);
            for _ in 0..50 {
                let g = quad_grad(&w);
                opt.update(0, &mut w, &g);
            }
            w.sq_norm()
        };
        assert!(
            run(0.9) < run(0.0),
            "momentum should converge faster on a quadratic"
        );
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights_with_zero_grad() {
        let mut w = Tensor::from_vec(vec![1.0], [1]);
        let g = Tensor::zeros([1]);
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.update(0, &mut w, &g);
        assert!((w.item() - (1.0 - 0.1 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut w = Tensor::from_vec(vec![3.0, -4.0], [2]);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let g = quad_grad(&w);
            opt.update(0, &mut w, &g);
            opt.finish_step();
        }
        assert!(w.sq_norm() < 1e-3, "norm {}", w.sq_norm());
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        // With bias correction the very first Adam step has magnitude ≈ lr.
        let mut w = Tensor::from_vec(vec![10.0], [1]);
        let g = Tensor::from_vec(vec![0.001], [1]);
        let mut opt = Adam::new(0.1);
        opt.update(0, &mut w, &g);
        assert!((w.item() - (10.0 - 0.1)).abs() < 1e-3, "w = {}", w.item());
    }

    #[test]
    fn adam_state_is_per_parameter() {
        let mut w0 = Tensor::from_vec(vec![1.0], [1]);
        let mut w1 = Tensor::from_vec(vec![1.0], [1]);
        let mut opt = Adam::new(0.1);
        let g = Tensor::from_vec(vec![1.0], [1]);
        opt.update(0, &mut w0, &g);
        opt.update(1, &mut w1, &g);
        assert_eq!(
            w0.item(),
            w1.item(),
            "independent params get identical first steps"
        );
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::new(0.1, 0.5, 10);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(9), 0.1);
        assert_eq!(s.lr_at(10), 0.05);
        assert_eq!(s.lr_at(25), 0.025);
        let mut opt = Sgd::new(0.1);
        s.apply(20, &mut opt);
        assert_eq!(opt.learning_rate(), 0.025);
    }
}
