//! Human-readable model summaries (the `model.summary()` of classic
//! frameworks).

use crate::Sequential;

/// One row of a model summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSummary {
    /// Layer kind.
    pub name: &'static str,
    /// Output shape for the probed input.
    pub output_dims: Vec<usize>,
    /// Trainable parameter count.
    pub params: usize,
}

/// Builds a per-layer summary for an input of shape `input_dims`
/// (including the batch dimension).
///
/// # Panics
///
/// Panics if `input_dims` is incompatible with the network.
pub fn summarize(net: &mut Sequential, input_dims: &[usize]) -> Vec<LayerSummary> {
    let mut rows = Vec::with_capacity(net.len());
    let mut dims = input_dims.to_vec();
    let names = net.layer_names();
    let mut param_counts = Vec::new();
    net.visit_layers(&mut |layer| {
        param_counts.push(layer.param_count());
    });
    for (i, name) in names.into_iter().enumerate() {
        dims = net.layer_output_dims(i, &dims);
        rows.push(LayerSummary {
            name,
            output_dims: dims.clone(),
            params: param_counts[i],
        });
    }
    rows
}

/// Renders the summary as an aligned text table, with a totals line.
pub fn render(rows: &[LayerSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<20} {:>12}\n",
        "layer", "output", "params"
    ));
    let mut total = 0usize;
    for row in rows {
        let dims = row
            .output_dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("×");
        out.push_str(&format!(
            "{:<14} {:<20} {:>12}\n",
            row.name, dims, row.params
        ));
        total += row.params;
    }
    out.push_str(&format!("{:<14} {:<20} {:>12}\n", "total", "", total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};

    fn net() -> Sequential {
        let mut n = Sequential::new();
        n.push(Flatten::new());
        n.push(Dense::new(12, 4, 0));
        n.push(Relu::new());
        n.push(Dense::new(4, 2, 1));
        n
    }

    #[test]
    fn summary_tracks_shapes_and_params() {
        let mut n = net();
        let rows = summarize(&mut n, &[8, 3, 2, 2]);
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0],
            LayerSummary {
                name: "flatten",
                output_dims: vec![8, 12],
                params: 0
            }
        );
        assert_eq!(rows[1].output_dims, vec![8, 4]);
        assert_eq!(rows[1].params, 12 * 4 + 4);
        assert_eq!(rows[3].output_dims, vec![8, 2]);
    }

    #[test]
    fn render_contains_totals() {
        let mut n = net();
        let rows = summarize(&mut n, &[1, 3, 2, 2]);
        let text = render(&rows);
        let total = 12 * 4 + 4 + 4 * 2 + 2;
        assert!(text.contains(&total.to_string()));
        assert!(text.lines().count() == rows.len() + 2);
    }
}
