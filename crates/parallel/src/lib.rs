//! Deterministic scoped thread pool for the STSL workspace.
//!
//! A tiny parallel-for layer built directly on [`std::thread::scope`] — no
//! work stealing, no global registry, no dependencies. The API is shaped
//! like rayon's `scope`/`join`/indexed parallel-for, but the scheduling
//! model is much simpler: every parallel call splits its index space into
//! **contiguous, disjoint blocks** (see [`ChunkPolicy`]) and runs one block
//! per thread.
//!
//! # Determinism guarantee
//!
//! Callers are required to make each output element depend only on its own
//! index — blocks write disjoint slices, there are no atomics and no
//! parallel reductions, and every per-element accumulation loop runs in the
//! same order regardless of how the index space is partitioned. Under that
//! contract the results are **bitwise identical** for every thread count,
//! which `tests/parallel_equivalence.rs` at the workspace root enforces.
//!
//! # Thread-count control
//!
//! The thread budget is resolved per call by [`max_threads`]:
//!
//! 1. a thread-local override installed by [`with_threads`] (tests use this
//!    to compare serial and parallel runs inside one process), else
//! 2. the `STSL_THREADS` environment variable (`1` = exact serial path;
//!    unparsable values fall back to `1`), else
//! 3. [`std::thread::available_parallelism`].
//!
//! Parallelism is one level deep: worker blocks run with an override of `1`
//! so nested kernels (e.g. a GEMM inside a per-client forward pass) do not
//! oversubscribe the machine. A call that stays on the caller's thread
//! leaves the budget untouched, so the innermost *parallelizable* layer
//! still gets the full budget when outer layers have nothing to split.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;

/// Scoped threads, re-exported so downstream crates never spell out
/// `std::thread` for ad-hoc fan-outs.
pub use std::thread::scope;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static SCOPE_CONTEXT: Cell<u64> = const { Cell::new(0) };
}

/// Restores the previous thread-local override when dropped, so overrides
/// nest correctly even across panics.
struct OverrideGuard(Option<usize>);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.0));
    }
}

fn set_override(n: Option<usize>) -> OverrideGuard {
    OverrideGuard(THREAD_OVERRIDE.with(|o| o.replace(n)))
}

/// Runs `f` with the thread budget pinned to 1 (used inside worker blocks).
fn serial<R>(f: impl FnOnce() -> R) -> R {
    let _guard = set_override(Some(1));
    f()
}

/// Restores the previous scope context when dropped.
struct ContextGuard(u64);

impl Drop for ContextGuard {
    fn drop(&mut self) {
        SCOPE_CONTEXT.with(|c| c.set(self.0));
    }
}

fn set_context(bits: u64) -> ContextGuard {
    ContextGuard(SCOPE_CONTEXT.with(|c| c.replace(bits)))
}

/// The ambient scope-context bits for the current thread.
///
/// The context is an opaque `u64` that callers (e.g. `stsl-tensor`'s
/// compute-backend override) stash per-call configuration in. Unlike a
/// plain `thread_local!` in the caller's crate, these bits are
/// **propagated into every worker thread** spawned by the parallel
/// primitives in this crate, so a configuration installed with
/// [`with_scope_context`] is seen by kernels running on pool workers —
/// not just on the installing thread. Zero means "no context".
pub fn scope_context() -> u64 {
    SCOPE_CONTEXT.with(|c| c.get())
}

/// Runs `f` with the ambient scope context set to `bits` on this thread
/// (and, transitively, on every worker any parallel call inside `f`
/// spawns), restoring the previous context afterwards — including on
/// panic. Overrides nest like [`with_threads`].
pub fn with_scope_context<R>(bits: u64, f: impl FnOnce() -> R) -> R {
    let _guard = set_context(bits);
    f()
}

/// Worker-side prologue: adopt the spawning thread's scope context and a
/// serial thread budget, then run the block. Every scoped worker in this
/// crate funnels through here so the two ambient values stay in sync.
fn worker<R>(ctx: u64, f: impl FnOnce() -> R) -> R {
    let _ctx = set_context(ctx);
    let _budget = set_override(Some(1));
    f()
}

/// The thread budget for parallel calls made on the current thread.
///
/// Resolution order: [`with_threads`] override, then `STSL_THREADS`, then
/// [`std::thread::available_parallelism`]. Always at least 1. The
/// environment is consulted on every call (no caching) so tests can flip
/// thread counts within one process.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    match std::env::var("STSL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            // Unparsable or zero: the safe interpretation is exact-serial.
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `f` with the thread budget pinned to `n.max(1)` on this thread,
/// restoring the previous budget afterwards (including on panic).
///
/// This is how the equivalence suite compares `STSL_THREADS=1` against
/// `STSL_THREADS=4` inside a single test process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = set_override(Some(n.max(1)));
    f()
}

/// Runs two closures, potentially in parallel, and returns both results.
///
/// With a budget of 1 this is exactly `(a(), b())`; otherwise `b` runs on a
/// scoped thread while `a` runs on the caller's thread. Panics in either
/// closure propagate to the caller.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    if max_threads() < 2 {
        return (a(), b());
    }
    let ctx = scope_context();
    std::thread::scope(|s| {
        let hb = s.spawn(move || worker(ctx, b));
        let ra = serial(a);
        let rb = match hb.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

/// How a parallel call splits its index space into contiguous blocks.
///
/// `min_chunk` is the smallest number of items worth handing to a thread;
/// an index space of `items` is split into
/// `min(threads, items / min_chunk).max(1)` balanced contiguous ranges.
/// Small problems therefore stay on the caller's thread with zero spawn
/// overhead.
///
/// `tile` (see [`ChunkPolicy::tiles`]) additionally forces every block
/// boundary except the last onto a multiple of the tile size, so
/// cache-blocked kernels never see a microtile split across two threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPolicy {
    /// Minimum items per block; blocks are never smaller than this unless
    /// the whole index space is.
    pub min_chunk: usize,
    /// Block-boundary alignment in items; 1 means unaligned row splits.
    pub tile: usize,
}

impl ChunkPolicy {
    /// Policy with the given minimum block size and unaligned boundaries.
    pub const fn min_chunk(min_chunk: usize) -> Self {
        ChunkPolicy { min_chunk, tile: 1 }
    }

    /// Policy whose block boundaries fall on multiples of `tile`.
    ///
    /// This is the partitioning the blocked tensor kernels use: the index
    /// space is a stack of `tile`-row microtiles, and handing a thread a
    /// range that starts or ends mid-tile would force it to recompute a
    /// partial tile another thread also owns. Boundaries are rounded down
    /// to tile edges (the final block absorbs the ragged tail), and a
    /// block never covers fewer than `min_chunk.max(tile)` items unless
    /// the whole index space does.
    pub const fn tiles(min_chunk: usize, tile: usize) -> Self {
        ChunkPolicy { min_chunk, tile }
    }

    /// The contiguous, disjoint, ascending ranges covering `0..items`.
    ///
    /// Partitioning depends on `threads`, but because callers keep
    /// per-element work independent of the partition, results do not.
    pub fn ranges(&self, items: usize, threads: usize) -> Vec<Range<usize>> {
        if items == 0 {
            return Vec::new();
        }
        let min = self.min_chunk.max(1).max(self.tile);
        let mut blocks = (items / min).clamp(1, threads.max(1));
        let tile = self.tile.max(1);
        if tile > 1 {
            // Never more blocks than whole tiles, or boundaries collide.
            blocks = blocks.min(items.div_ceil(tile));
        }
        if blocks <= 1 {
            // One element, not a range-to-collect: the lint misreads this.
            #[allow(clippy::single_range_in_vec_init)]
            return vec![0..items];
        }
        let mut out = Vec::with_capacity(blocks);
        let mut start = 0;
        if tile == 1 {
            let base = items / blocks;
            let rem = items % blocks;
            for b in 0..blocks {
                let len = base + usize::from(b < rem);
                out.push(start..start + len);
                start += len;
            }
        } else {
            for b in 1..=blocks {
                let end = if b == blocks {
                    items
                } else {
                    (items * b / blocks / tile * tile).clamp(start, items)
                };
                if end > start {
                    out.push(start..end);
                    start = end;
                }
            }
        }
        out
    }
}

/// Splits `data` into row-aligned contiguous chunks and calls
/// `f(first_row, chunk)` for each, potentially in parallel.
///
/// `data.len()` must be a multiple of `row_len`; the chunk passed to `f`
/// starts at row `first_row` and blocks never split a row. Each block owns
/// its slice exclusively (`split_at_mut`), so there is no write contention
/// by construction.
///
/// # Panics
///
/// Panics if `row_len == 0` or `data.len() % row_len != 0`; panics from `f`
/// propagate.
pub fn par_chunks_mut<T, F>(data: &mut [T], row_len: usize, policy: ChunkPolicy, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "data must be whole rows");
    let rows = data.len() / row_len;
    let ranges = policy.ranges(rows, max_threads());
    if ranges.len() <= 1 {
        if rows > 0 {
            f(0, data);
        }
        return;
    }
    let ctx = scope_context();
    std::thread::scope(|s| {
        let f = &f;
        let mut rest = data;
        let mut handles = Vec::new();
        let mut first = None;
        for (bi, r) in ranges.iter().enumerate() {
            let tmp = std::mem::take(&mut rest);
            let (chunk, tail) = tmp.split_at_mut((r.end - r.start) * row_len);
            rest = tail;
            if bi == 0 {
                first = Some((r.start, chunk));
            } else {
                let start = r.start;
                handles.push(s.spawn(move || worker(ctx, || f(start, chunk))));
            }
        }
        let (start, chunk) = first.expect("at least two ranges");
        serial(|| f(start, chunk));
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
}

/// Two-buffer variant of [`par_chunks_mut`]: both slices are split at the
/// same row boundaries (`a` in rows of `a_row`, `b` in rows of `b_row`) and
/// `f(first_row, a_chunk, b_chunk)` runs per block.
///
/// Used where one pass fills two outputs (e.g. batchnorm's normalized
/// activations plus its cached `x̂`).
///
/// # Panics
///
/// Panics if either slice is not whole rows or the row counts differ.
pub fn par_chunks_mut2<A, B, F>(
    a: &mut [A],
    b: &mut [B],
    a_row: usize,
    b_row: usize,
    policy: ChunkPolicy,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(a_row > 0 && b_row > 0, "row lengths must be positive");
    assert_eq!(a.len() % a_row, 0, "a must be whole rows");
    assert_eq!(b.len() % b_row, 0, "b must be whole rows");
    let rows = a.len() / a_row;
    assert_eq!(b.len() / b_row, rows, "row counts must agree");
    let ranges = policy.ranges(rows, max_threads());
    if ranges.len() <= 1 {
        if rows > 0 {
            f(0, a, b);
        }
        return;
    }
    let ctx = scope_context();
    std::thread::scope(|s| {
        let f = &f;
        let mut rest_a = a;
        let mut rest_b = b;
        let mut handles = Vec::new();
        let mut first = None;
        for (bi, r) in ranges.iter().enumerate() {
            let rows_here = r.end - r.start;
            let tmp_a = std::mem::take(&mut rest_a);
            let (chunk_a, tail_a) = tmp_a.split_at_mut(rows_here * a_row);
            rest_a = tail_a;
            let tmp_b = std::mem::take(&mut rest_b);
            let (chunk_b, tail_b) = tmp_b.split_at_mut(rows_here * b_row);
            rest_b = tail_b;
            if bi == 0 {
                first = Some((r.start, chunk_a, chunk_b));
            } else {
                let start = r.start;
                handles.push(s.spawn(move || worker(ctx, || f(start, chunk_a, chunk_b))));
            }
        }
        let (start, chunk_a, chunk_b) = first.expect("at least two ranges");
        serial(|| f(start, chunk_a, chunk_b));
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
}

/// Indexed parallel map: returns `[f(0), f(1), …, f(items-1)]` in index
/// order, computing contiguous blocks of indices potentially in parallel.
pub fn par_map_indexed<R, F>(items: usize, policy: ChunkPolicy, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let ranges = policy.ranges(items, max_threads());
    if ranges.len() <= 1 {
        return (0..items).map(f).collect();
    }
    let ctx = scope_context();
    std::thread::scope(|s| {
        let f = &f;
        let mut iter = ranges.into_iter();
        let head = iter.next().expect("at least two ranges");
        let handles: Vec<_> = iter
            .map(|r| s.spawn(move || worker(ctx, || r.map(f).collect::<Vec<R>>())))
            .collect();
        let mut out = serial(|| head.map(f).collect::<Vec<R>>());
        for h in handles {
            match h.join() {
                Ok(v) => out.extend(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        out
    })
}

/// Parallel map with exclusive mutable access to each item: returns
/// `[f(0, &mut items[0]), …]` in index order.
///
/// This is the fan-out primitive the split trainers use to run every
/// end-system's forward/backward concurrently — each `EndSystem` is one
/// item, touched by exactly one thread.
pub fn par_map_mut<T, R, F>(items: &mut [T], policy: ChunkPolicy, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let ranges = policy.ranges(items.len(), max_threads());
    if ranges.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let ctx = scope_context();
    std::thread::scope(|s| {
        let f = &f;
        let mut rest = items;
        let mut handles = Vec::new();
        let mut first = None;
        for (bi, r) in ranges.iter().enumerate() {
            let tmp = std::mem::take(&mut rest);
            let (chunk, tail) = tmp.split_at_mut(r.end - r.start);
            rest = tail;
            if bi == 0 {
                first = Some((r.start, chunk));
            } else {
                let start = r.start;
                handles.push(s.spawn(move || {
                    worker(ctx, || {
                        chunk
                            .iter_mut()
                            .enumerate()
                            .map(|(i, t)| f(start + i, t))
                            .collect::<Vec<R>>()
                    })
                }));
            }
        }
        let (start, chunk) = first.expect("at least two ranges");
        let mut out = serial(|| {
            chunk
                .iter_mut()
                .enumerate()
                .map(|(i, t)| f(start + i, t))
                .collect::<Vec<R>>()
        });
        for h in handles {
            match h.join() {
                Ok(v) => out.extend(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ranges_cover_exactly_once_and_respect_min_chunk() {
        for items in [0usize, 1, 5, 16, 17, 100] {
            for threads in [1usize, 2, 4, 7] {
                for min in [1usize, 4, 32] {
                    let ranges = ChunkPolicy::min_chunk(min).ranges(items, threads);
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "contiguous ascending");
                        assert!(r.end > r.start, "non-empty");
                        next = r.end;
                    }
                    assert_eq!(next, items, "full coverage");
                    assert!(ranges.len() <= threads.max(1));
                    if ranges.len() > 1 {
                        for r in &ranges {
                            assert!(r.end - r.start >= min);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_ranges_align_all_interior_boundaries() {
        for items in [1usize, 3, 4, 7, 16, 37, 64, 129, 1000] {
            for threads in [1usize, 2, 4, 7] {
                for tile in [2usize, 4, 8] {
                    let ranges = ChunkPolicy::tiles(1, tile).ranges(items, threads);
                    let mut next = 0;
                    for (i, r) in ranges.iter().enumerate() {
                        assert_eq!(r.start, next, "contiguous ascending");
                        assert!(r.end > r.start, "non-empty");
                        if i + 1 < ranges.len() {
                            assert_eq!(r.end % tile, 0, "interior boundary on tile edge");
                        }
                        next = r.end;
                    }
                    assert_eq!(next, items, "full coverage");
                    assert!(ranges.len() <= threads.max(1));
                    assert!(ranges.len() <= items.div_ceil(tile));
                }
            }
        }
    }

    #[test]
    fn scope_context_defaults_to_zero_and_restores() {
        assert_eq!(scope_context(), 0);
        with_scope_context(7, || {
            assert_eq!(scope_context(), 7);
            with_scope_context(9, || assert_eq!(scope_context(), 9));
            assert_eq!(scope_context(), 7);
        });
        assert_eq!(scope_context(), 0);
    }

    #[test]
    fn scope_context_propagates_to_workers() {
        with_threads(4, || {
            with_scope_context(42, || {
                let seen = par_map_indexed(8, ChunkPolicy::min_chunk(1), |_| scope_context());
                assert_eq!(seen, vec![42; 8]);
                let mut buf = vec![0u64; 8];
                par_chunks_mut(&mut buf, 1, ChunkPolicy::min_chunk(1), |_, c| {
                    c.fill(scope_context());
                });
                assert_eq!(buf, vec![42; 8]);
                let (a, b) = join(scope_context, scope_context);
                assert_eq!((a, b), (42, 42));
            });
        });
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(1, || assert_eq!(max_threads(), 1));
            assert_eq!(max_threads(), 3);
        });
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn workers_run_with_serial_budget() {
        with_threads(4, || {
            let budgets = par_map_indexed(4, ChunkPolicy::min_chunk(1), |_| max_threads());
            // Every block (including the caller's own) pins itself to 1 so
            // nested calls cannot oversubscribe.
            assert_eq!(budgets, vec![1, 1, 1, 1]);
        });
    }

    #[test]
    fn par_chunks_mut_matches_serial_fill() {
        let fill = |start: usize, chunk: &mut [usize]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start * 3 + i) * 7;
            }
        };
        let mut serial_out = vec![0usize; 30];
        with_threads(1, || {
            par_chunks_mut(&mut serial_out, 3, ChunkPolicy::min_chunk(1), |s, c| {
                fill(s, c)
            })
        });
        let mut par_out = vec![0usize; 30];
        with_threads(4, || {
            par_chunks_mut(&mut par_out, 3, ChunkPolicy::min_chunk(1), |s, c| {
                fill(s, c)
            })
        });
        assert_eq!(serial_out, par_out);
        // Row 4 starts at element 12, so element 12 is (4*3+0)*7.
        assert_eq!(par_out[12], 84);
    }

    #[test]
    fn par_chunks_mut2_splits_both_buffers_consistently() {
        let mut a = vec![0usize; 12]; // rows of 2
        let mut b = vec![0usize; 18]; // rows of 3
        with_threads(4, || {
            par_chunks_mut2(
                &mut a,
                &mut b,
                2,
                3,
                ChunkPolicy::min_chunk(1),
                |row0, ca, cb| {
                    for (i, v) in ca.iter_mut().enumerate() {
                        *v = row0 * 2 + i;
                    }
                    for (i, v) in cb.iter_mut().enumerate() {
                        *v = row0 * 3 + i;
                    }
                },
            );
        });
        assert_eq!(a, (0..12).collect::<Vec<_>>());
        assert_eq!(b, (0..18).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_preserves_index_order() {
        let mut items: Vec<usize> = (0..11).collect();
        let out = with_threads(4, || {
            par_map_mut(&mut items, ChunkPolicy::min_chunk(1), |i, v| {
                *v += 100;
                i * 2
            })
        });
        assert_eq!(out, (0..11).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(items, (100..111).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_handles_empty_and_tiny() {
        let empty: Vec<usize> =
            with_threads(4, || par_map_indexed(0, ChunkPolicy::min_chunk(1), |i| i));
        assert!(empty.is_empty());
        let one = with_threads(4, || {
            par_map_indexed(1, ChunkPolicy::min_chunk(1), |i| i + 9)
        });
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn join_runs_both_sides() {
        let counter = AtomicUsize::new(0);
        let (a, b) = with_threads(2, || {
            join(
                || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    "left"
                },
                || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    "right"
                },
            )
        });
        assert_eq!((a, b), ("left", "right"));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let mut data = vec![0u8; 8];
        with_threads(4, || {
            par_chunks_mut(&mut data, 1, ChunkPolicy::min_chunk(1), |row0, _| {
                if row0 > 0 {
                    panic!("worker boom");
                }
            });
        });
    }

    #[test]
    fn min_chunk_keeps_small_problems_on_caller_thread() {
        let caller = std::thread::current().id();
        let ids = with_threads(4, || {
            par_map_indexed(3, ChunkPolicy::min_chunk(8), |_| {
                std::thread::current().id()
            })
        });
        assert!(ids.iter().all(|&id| id == caller));
    }
}
