//! Rendering tensors as portable-pixmap images (Fig. 4 artifacts).

use std::io::{self, Write};
use std::path::Path;
use stsl_tensor::Tensor;

/// An 8-bit RGB raster ready to serialize as PPM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    /// Interleaved RGB, row-major.
    pixels: Vec<u8>,
}

impl RgbImage {
    /// Builds an image from a `[3, h, w]` tensor, linearly mapping
    /// `[lo, hi]` to `[0, 255]` (values outside are clamped).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `[3, h, w]` or `lo >= hi`.
    pub fn from_chw(t: &Tensor, lo: f32, hi: f32) -> Self {
        assert_eq!(t.rank(), 3, "expected [3, h, w], got {}", t.shape());
        assert_eq!(t.dim(0), 3, "expected 3 channels, got {}", t.dim(0));
        assert!(lo < hi, "invalid range [{}, {}]", lo, hi);
        let (h, w) = (t.dim(1), t.dim(2));
        let src = t.as_slice();
        let plane = h * w;
        let mut pixels = Vec::with_capacity(3 * plane);
        for i in 0..plane {
            for c in 0..3 {
                let v = (src[c * plane + i] - lo) / (hi - lo);
                pixels.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        RgbImage {
            width: w,
            height: h,
            pixels,
        }
    }

    /// Builds a grayscale-rendered image from a single-channel `[h, w]`
    /// tensor, auto-scaling to its own min/max (feature-map rendering).
    pub fn from_feature_map(t: &Tensor) -> Self {
        assert_eq!(t.rank(), 2, "expected [h, w], got {}", t.shape());
        let (lo, hi) = (t.min(), t.max());
        let range = (hi - lo).max(1e-9);
        let (h, w) = (t.dim(0), t.dim(1));
        let mut pixels = Vec::with_capacity(3 * h * w);
        for &v in t.as_slice() {
            let g = (((v - lo) / range).clamp(0.0, 1.0) * 255.0).round() as u8;
            pixels.extend_from_slice(&[g, g, g]);
        }
        RgbImage {
            width: w,
            height: h,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw interleaved RGB bytes.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Nearest-neighbour upscaling (small feature maps become visible).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn upscale(&self, factor: usize) -> RgbImage {
        assert!(factor > 0, "scale factor must be positive");
        let (w2, h2) = (self.width * factor, self.height * factor);
        let mut pixels = Vec::with_capacity(3 * w2 * h2);
        for y in 0..h2 {
            for x in 0..w2 {
                let src = ((y / factor) * self.width + (x / factor)) * 3;
                pixels.extend_from_slice(&self.pixels[src..src + 3]);
            }
        }
        RgbImage {
            width: w2,
            height: h2,
            pixels,
        }
    }

    /// Serializes as binary PPM (P6).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.pixels)
    }

    /// Writes a PPM file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(file))
    }
}

/// Lays out images left-to-right with a 2-pixel white gutter (the Fig. 4
/// triptych format).
///
/// # Panics
///
/// Panics if `images` is empty or heights differ.
pub fn hstack(images: &[RgbImage]) -> RgbImage {
    assert!(!images.is_empty(), "hstack of no images");
    let h = images[0].height;
    assert!(
        images.iter().all(|i| i.height == h),
        "hstack requires equal heights"
    );
    const GUTTER: usize = 2;
    let w_total: usize =
        images.iter().map(|i| i.width).sum::<usize>() + GUTTER * (images.len() - 1);
    let mut pixels = vec![255u8; 3 * w_total * h];
    let mut x_off = 0;
    for img in images {
        for y in 0..h {
            let dst = (y * w_total + x_off) * 3;
            let src = y * img.width * 3;
            pixels[dst..dst + img.width * 3].copy_from_slice(&img.pixels[src..src + img.width * 3]);
        }
        x_off += img.width + GUTTER;
    }
    RgbImage {
        width: w_total,
        height: h,
        pixels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_chw_maps_range() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.5, 0.5, 0.5], [3, 1, 2]);
        let img = RgbImage::from_chw(&t, 0.0, 1.0);
        assert_eq!(img.width(), 2);
        assert_eq!(img.height(), 1);
        // Pixel 0: (r=0, g=0.5, b=0.5), pixel 1: (r=1, g=0.5, b=0.5)
        assert_eq!(img.pixels(), &[0, 128, 128, 255, 128, 128]);
    }

    #[test]
    fn from_chw_clamps_out_of_range() {
        let t = Tensor::from_vec(vec![-5.0, 5.0, 0.0, 0.0, 0.0, 0.0], [3, 1, 2]);
        let img = RgbImage::from_chw(&t, 0.0, 1.0);
        assert_eq!(img.pixels()[0], 0);
        assert_eq!(img.pixels()[3], 255);
    }

    #[test]
    fn feature_map_autoscales() {
        let t = Tensor::from_vec(vec![2.0, 4.0], [1, 2]);
        let img = RgbImage::from_feature_map(&t);
        assert_eq!(img.pixels(), &[0, 0, 0, 255, 255, 255]);
    }

    #[test]
    fn constant_feature_map_does_not_divide_by_zero() {
        let t = Tensor::full([2, 2], 3.0);
        let img = RgbImage::from_feature_map(&t);
        assert_eq!(img.pixels().len(), 12);
    }

    #[test]
    fn upscale_replicates_pixels() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0], [3, 1, 2]);
        let img = RgbImage::from_chw(&t, 0.0, 1.0).upscale(2);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 2);
        assert_eq!(&img.pixels()[..6], &[0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn ppm_header_and_payload() {
        let t = Tensor::zeros([3, 2, 2]);
        let img = RgbImage::from_chw(&t, 0.0, 1.0);
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(buf.len(), 11 + 12);
    }

    #[test]
    fn hstack_inserts_gutter() {
        let t = Tensor::zeros([3, 2, 2]);
        let a = RgbImage::from_chw(&t, 0.0, 1.0);
        let joined = hstack(&[a.clone(), a]);
        assert_eq!(joined.width(), 2 + 2 + 2);
        assert_eq!(joined.height(), 2);
    }
}
