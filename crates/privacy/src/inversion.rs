//! Model-inversion attack on smashed activations.
//!
//! The honest-but-curious server sees cut-layer activations. To quantify
//! how much of the raw image they leak (experiment E3, backing the
//! qualitative Fig. 4), we train a linear decoder on an *auxiliary*
//! dataset of (activation, image) pairs — the standard
//! regression-inversion attack from the split-learning privacy
//! literature — then measure reconstruction fidelity (PSNR / SSIM /
//! distance correlation) on held-out victims. Deeper cuts destroy more
//! information and yield worse reconstructions: privacy and Table I's
//! accuracy trade off in opposite directions.

use crate::metrics::{distance_correlation, mse, psnr, ssim_global};
use stsl_data::ImageDataset;
use stsl_nn::layers::Dense;
use stsl_nn::loss::MseLoss;
use stsl_nn::optim::{Adam, Optimizer};
use stsl_nn::{Layer, Mode};
use stsl_tensor::Tensor;

/// A trained linear decoder from smashed activations back to images.
#[derive(Debug)]
pub struct InversionAttack {
    decoder: Dense,
    image_dims: Vec<usize>,
}

/// Fidelity of reconstructions on a victim set.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeakageReport {
    /// Mean squared error of reconstructions.
    pub mse: f32,
    /// Peak signal-to-noise ratio (dB); higher = more leakage.
    pub psnr_db: f32,
    /// Global SSIM; higher = more leakage.
    pub ssim: f32,
    /// Distance correlation between raw images and smashed activations;
    /// higher = more statistical dependence = more leakage.
    pub dcor: f32,
}

impl InversionAttack {
    /// Trains the decoder: `encode` is the attacker's oracle access to the
    /// victim's encoder (query-only, as in the honest-but-curious server
    /// threat model), `aux` is public auxiliary data from a similar
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if `aux` is empty or `epochs == 0`.
    pub fn train(
        mut encode: impl FnMut(&Tensor) -> Tensor,
        aux: &ImageDataset,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Self {
        assert!(!aux.is_empty(), "auxiliary dataset is empty");
        assert!(epochs > 0, "need at least one epoch");
        let (c, h, w) = aux.image_dims();
        let image_dims = vec![c, h, w];
        let image_len = c * h * w;
        // Probe the code width with one sample.
        let probe = encode(&aux.image(0).reshape([1, c, h, w]));
        let code_len = probe.len();
        let mut decoder = Dense::new(code_len, image_len, seed);
        let mut opt = Adam::new(lr);
        let loss = MseLoss::new();
        let batch = 16usize;
        for _epoch in 0..epochs {
            let mut start = 0;
            while start < aux.len() {
                let end = (start + batch).min(aux.len());
                let indices: Vec<usize> = (start..end).collect();
                let (images, _) = aux.batch(&indices);
                let n = indices.len();
                let codes = encode(&images).reshape([n, code_len]);
                let flat_targets = images.reshape([n, image_len]);
                decoder.zero_grads();
                let recon = decoder.forward(&codes, Mode::Train);
                let out = loss.dense(&recon, &flat_targets);
                decoder.backward(&out.grad);
                let mut param_id = 0usize;
                decoder.visit_params(&mut |p| {
                    opt.update(param_id, p.value, p.grad);
                    param_id += 1;
                });
                opt.finish_step();
                start = end;
            }
        }
        InversionAttack {
            decoder,
            image_dims,
        }
    }

    /// Reconstructs images from a batch of smashed activations.
    pub fn reconstruct(&mut self, codes: &Tensor) -> Tensor {
        let n = codes.dim(0);
        let code_len = codes.len() / n;
        let flat = self
            .decoder
            .forward(&codes.reshape([n, code_len]), Mode::Eval);
        let mut dims = vec![n];
        dims.extend_from_slice(&self.image_dims);
        flat.reshape(dims)
    }

    /// Measures reconstruction fidelity on a victim set.
    pub fn measure(
        &mut self,
        mut encode: impl FnMut(&Tensor) -> Tensor,
        victims: &ImageDataset,
    ) -> LeakageReport {
        assert!(!victims.is_empty(), "victim dataset is empty");
        let indices: Vec<usize> = (0..victims.len()).collect();
        let (images, _) = victims.batch(&indices);
        let codes = encode(&images);
        let n = images.dim(0);
        let recon = self.reconstruct(&codes);
        LeakageReport {
            mse: mse(&images, &recon),
            psnr_db: psnr(&images, &recon, 1.0),
            ssim: ssim_global(&images, &recon),
            dcor: distance_correlation(
                &images.reshape([n, images.len() / n]),
                &codes.reshape([n, codes.len() / n]),
            ),
        }
    }
}

/// Trains an attack and measures leakage in one call (the E3 sweep body).
pub fn measure_leakage(
    mut encode: impl FnMut(&Tensor) -> Tensor,
    aux: &ImageDataset,
    victims: &ImageDataset,
    epochs: usize,
    seed: u64,
) -> LeakageReport {
    let mut attack = InversionAttack::train(&mut encode, aux, epochs, 1e-2, seed);
    attack.measure(&mut encode, victims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_data::SyntheticCifar;
    use stsl_nn::layers::{Conv2d, MaxPool2d, Relu};
    use stsl_nn::Sequential;

    fn encoder(blocks: usize, seed: u64) -> Sequential {
        let mut m = Sequential::new();
        let mut in_c = 3;
        for b in 0..blocks {
            let out_c = 8 << b;
            m.push(Conv2d::new(in_c, out_c, 3, seed + b as u64));
            m.push(Relu::new());
            m.push(MaxPool2d::new(2));
            in_c = out_c;
        }
        m
    }

    fn aux_and_victims() -> (ImageDataset, ImageDataset) {
        let aux = SyntheticCifar::new(10)
            .difficulty(0.05)
            .generate_sized(80, 16);
        let victims = SyntheticCifar::new(20)
            .difficulty(0.05)
            .generate_sized(24, 16);
        (aux, victims)
    }

    #[test]
    fn identity_encoder_reconstructs_nearly_perfectly() {
        // The regression needs more auxiliary samples than pixel dims to
        // be well-posed, so use small 8×8 images (192 dims, 600 samples).
        let aux = SyntheticCifar::new(10)
            .difficulty(0.05)
            .generate_sized(600, 8);
        let victims = SyntheticCifar::new(20)
            .difficulty(0.05)
            .generate_sized(24, 8);
        let report = measure_leakage(|x| x.clone(), &aux, &victims, 15, 0);
        assert!(report.psnr_db > 14.0, "psnr {}", report.psnr_db);
        assert!(report.dcor > 0.9, "dcor {}", report.dcor);
    }

    #[test]
    fn reconstruction_shape_matches_images() {
        let (aux, victims) = aux_and_victims();
        let mut enc = encoder(1, 0);
        let mut attack = InversionAttack::train(|x| enc.forward(x, Mode::Eval), &aux, 2, 1e-3, 0);
        let (images, _) = victims.batch(&[0, 1, 2]);
        let codes = enc.forward(&images, Mode::Eval);
        let recon = attack.reconstruct(&codes);
        assert_eq!(recon.dims(), images.dims());
    }

    #[test]
    fn deeper_cuts_leak_less() {
        let (aux, victims) = aux_and_victims();
        let mut shallow = encoder(1, 5);
        let mut deep = encoder(3, 5);
        let r_shallow = measure_leakage(|x| shallow.forward(x, Mode::Eval), &aux, &victims, 20, 1);
        let r_deep = measure_leakage(|x| deep.forward(x, Mode::Eval), &aux, &victims, 20, 1);
        assert!(
            r_shallow.psnr_db > r_deep.psnr_db,
            "shallow {} dB should leak more than deep {} dB",
            r_shallow.psnr_db,
            r_deep.psnr_db
        );
        assert!(
            r_shallow.dcor >= r_deep.dcor - 0.05,
            "dcor shallow {} vs deep {}",
            r_shallow.dcor,
            r_deep.dcor
        );
    }

    #[test]
    #[should_panic(expected = "auxiliary dataset is empty")]
    fn empty_aux_rejected() {
        let victims = SyntheticCifar::new(0).generate_sized(4, 16);
        let empty = victims.subset(&[]);
        InversionAttack::train(|x| x.clone(), &empty, 1, 1e-3, 0);
    }
}
