//! Privacy evaluation for spatio-temporal split learning.
//!
//! Reproduces and quantifies the paper's Fig. 4 ("image capture during
//! deep neural network computation"):
//!
//! * [`visualize`] — capture the activation after each client layer and
//!   render the original / post-`Conv2D(L1)` / post-`L1` triptych;
//! * [`inversion`] — a regression model-inversion attack measuring how
//!   well an honest-but-curious server can reconstruct raw images from
//!   smashed activations at each cut depth;
//! * [`metrics`] — MSE, PSNR, global SSIM, pixel correlation and distance
//!   correlation;
//! * [`image`] — dependency-free PPM rendering of tensors.
//!
//! # Examples
//!
//! ```
//! use stsl_privacy::{visualize, metrics};
//! use stsl_nn::{Sequential, layers::{Conv2d, Relu, MaxPool2d}};
//! use stsl_data::SyntheticCifar;
//! use stsl_tensor::init::rng_from_seed;
//!
//! let mut client = Sequential::new();
//! client.push(Conv2d::new(3, 8, 3, 0));
//! client.push(Relu::new());
//! client.push(MaxPool2d::new(2));
//!
//! let img = SyntheticCifar::new(0).render_sized(4, 16, &mut rng_from_seed(1));
//! let stages = visualize::capture_stages(&mut client, &img);
//! assert_eq!(stages[0].label, "original");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod inversion;
pub mod metrics;
pub mod visualize;

pub use image::{hstack, RgbImage};
pub use inversion::{measure_leakage, InversionAttack, LeakageReport};
pub use visualize::{capture_stages, fig4_triptych, render_stage, stage_similarity, CapturePoint};
