//! Leakage metrics: how much of the original image survives in (or can be
//! recovered from) the smashed representation.

use stsl_tensor::Tensor;

/// Mean squared error between two same-shaped tensors.
///
/// # Panics
///
/// Panics if shapes differ or tensors are empty.
pub fn mse(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    assert!(!a.is_empty(), "mse of empty tensors");
    let diff = a - b;
    diff.sq_norm() / a.len() as f32
}

/// Peak signal-to-noise ratio in dB for signals with peak value `peak`
/// (1.0 for our unit-range images). Higher = more faithful = **more
/// leakage** when measuring reconstructions.
///
/// Returns `f32::INFINITY` for identical inputs.
///
/// # Panics
///
/// Panics if shapes differ or `peak <= 0`.
pub fn psnr(reference: &Tensor, reconstruction: &Tensor, peak: f32) -> f32 {
    assert!(peak > 0.0, "peak must be positive");
    let err = mse(reference, reconstruction);
    if err == 0.0 {
        return f32::INFINITY;
    }
    10.0 * (peak * peak / err).log10()
}

/// Global structural similarity (single-window SSIM) between two images.
///
/// A simplified SSIM that treats the whole image as one window — adequate
/// for ranking reconstruction quality across cut depths. Returns a value
/// in `[-1, 1]`; 1 means structurally identical.
///
/// # Panics
///
/// Panics if shapes differ or tensors are empty.
pub fn ssim_global(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "ssim shape mismatch");
    assert!(!a.is_empty(), "ssim of empty tensors");
    let n = a.len() as f32;
    let ma = a.mean();
    let mb = b.mean();
    let va = a
        .as_slice()
        .iter()
        .map(|&x| (x - ma) * (x - ma))
        .sum::<f32>()
        / n;
    let vb = b
        .as_slice()
        .iter()
        .map(|&x| (x - mb) * (x - mb))
        .sum::<f32>()
        / n;
    let cov = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f32>()
        / n;
    const C1: f32 = 0.01 * 0.01;
    const C2: f32 = 0.03 * 0.03;
    ((2.0 * ma * mb + C1) * (2.0 * cov + C2)) / ((ma * ma + mb * mb + C1) * (va + vb + C2))
}

/// Pearson correlation between the flattened pixels of two tensors.
///
/// # Panics
///
/// Panics if shapes differ or either tensor is constant.
pub fn pixel_correlation(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "correlation shape mismatch");
    let ma = a.mean();
    let mb = b.mean();
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    assert!(va > 0.0 && vb > 0.0, "correlation of constant tensor");
    // The 1/n factors cancel between covariance and the two variances.
    cov / (va.sqrt() * vb.sqrt())
}

/// Bias-corrected distance correlation (Székely & Rizzo 2014, U-centered)
/// between two batches of (possibly different-width) feature vectors —
/// the standard measure of *any* statistical dependence between raw
/// inputs and smashed activations in the split-learning privacy
/// literature. ≈ 0 for independent samples (the naive estimator has large
/// positive bias at small n), 1 for fully dependent; negative estimates
/// are clamped to 0.
///
/// `a` and `b` are `[n, *]` tensors with matching leading dimension;
/// cost is O(n²) in the batch size.
///
/// # Panics
///
/// Panics if leading dimensions differ or `n < 4` (the U-statistic needs
/// four samples).
pub fn distance_correlation(a: &Tensor, b: &Tensor) -> f32 {
    let n = a.dim(0);
    assert_eq!(n, b.dim(0), "batch dimension mismatch");
    assert!(n >= 4, "distance correlation needs at least four samples");
    let da = pairwise_distances(a);
    let db = pairwise_distances(b);
    let ca = u_center(&da, n);
    let cb = u_center(&db, n);
    let mut dcov2 = 0.0f64;
    let mut dvar_a = 0.0f64;
    let mut dvar_b = 0.0f64;
    for i in 0..n * n {
        dcov2 += ca[i] * cb[i];
        dvar_a += ca[i] * ca[i];
        dvar_b += cb[i] * cb[i];
    }
    let denom = (dvar_a * dvar_b).sqrt();
    if denom <= 1e-12 {
        return 0.0;
    }
    ((dcov2 / denom).max(0.0)).sqrt() as f32
}

/// U-centering: `Ã_ij = A_ij - r_i/(n-2) - c_j/(n-2) + g/((n-1)(n-2))`
/// off-diagonal, 0 on the diagonal.
fn u_center(d: &[f32], n: usize) -> Vec<f64> {
    let mut row = vec![0.0f64; n];
    let mut grand = 0.0f64;
    for i in 0..n {
        let sum: f64 = d[i * n..(i + 1) * n].iter().map(|&v| v as f64).sum();
        row[i] = sum;
        grand += sum;
    }
    let nf = n as f64;
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            c[i * n + j] = d[i * n + j] as f64 - row[i] / (nf - 2.0) - row[j] / (nf - 2.0)
                + grand / ((nf - 1.0) * (nf - 2.0));
        }
    }
    c
}

fn pairwise_distances(t: &Tensor) -> Vec<f32> {
    let n = t.dim(0);
    let width = t.len() / n;
    let data = t.as_slice();
    let mut d = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let (ri, rj) = (
                &data[i * width..(i + 1) * width],
                &data[j * width..(j + 1) * width],
            );
            let dist = ri
                .iter()
                .zip(rj)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt();
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn mse_of_identical_is_zero() {
        let t = Tensor::randn([3, 4], &mut rng_from_seed(0));
        assert_eq!(mse(&t, &t), 0.0);
    }

    #[test]
    fn psnr_of_identical_is_infinite() {
        let t = Tensor::ones([4]);
        assert!(psnr(&t, &t, 1.0).is_infinite());
    }

    #[test]
    fn psnr_drops_with_noise() {
        let mut rng = rng_from_seed(1);
        let t = Tensor::rand_uniform([256], 0.0, 1.0, &mut rng);
        let small_noise = &t + &(&Tensor::randn([256], &mut rng) * 0.01);
        let big_noise = &t + &(&Tensor::randn([256], &mut rng) * 0.3);
        assert!(psnr(&t, &small_noise, 1.0) > psnr(&t, &big_noise, 1.0));
    }

    #[test]
    fn ssim_identical_is_one() {
        let t = Tensor::rand_uniform([64], 0.0, 1.0, &mut rng_from_seed(2));
        assert!((ssim_global(&t, &t) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ssim_penalizes_structural_destruction() {
        let mut rng = rng_from_seed(3);
        let t = Tensor::rand_uniform([100], 0.0, 1.0, &mut rng);
        let shuffledish = Tensor::rand_uniform([100], 0.0, 1.0, &mut rng);
        assert!(ssim_global(&t, &t) > ssim_global(&t, &shuffledish) + 0.3);
    }

    #[test]
    fn correlation_of_negated_signal_is_minus_one() {
        let t = Tensor::randn([50], &mut rng_from_seed(4));
        let neg = -&t;
        assert!((pixel_correlation(&t, &neg) + 1.0).abs() < 1e-4);
    }

    #[test]
    fn dcor_of_identical_batches_is_one() {
        let t = Tensor::randn([10, 6], &mut rng_from_seed(5));
        let d = distance_correlation(&t, &t);
        assert!((d - 1.0).abs() < 1e-3, "dcor {}", d);
    }

    #[test]
    fn dcor_of_independent_batches_is_small() {
        // The bias-corrected estimator should hover near zero for
        // independent samples even at modest n.
        let mut rng = rng_from_seed(6);
        let a = Tensor::randn([60, 8], &mut rng);
        let b = Tensor::randn([60, 8], &mut rng);
        let d = distance_correlation(&a, &b);
        assert!(d < 0.2, "dcor {} too high for independent data", d);
    }

    #[test]
    fn dcor_detects_nonlinear_dependence() {
        // b = a², which Pearson-style measures can miss but dCor catches.
        let a = Tensor::randn([60, 4], &mut rng_from_seed(7));
        let b = a.map(|x| x * x);
        let dep = distance_correlation(&a, &b);
        let mut rng = rng_from_seed(8);
        let indep = Tensor::randn([60, 4], &mut rng);
        assert!(dep > distance_correlation(&a, &indep) + 0.2, "dep {}", dep);
    }

    #[test]
    fn dcor_different_widths_allowed() {
        let mut rng = rng_from_seed(9);
        let a = Tensor::randn([12, 4], &mut rng);
        let b = Tensor::randn([12, 16], &mut rng);
        let _ = distance_correlation(&a, &b); // must not panic
    }
}
