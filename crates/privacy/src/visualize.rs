//! Fig. 4: "image capture during deep neural network computation".
//!
//! The paper shows (a) an original CIFAR-10 image, (b) the activation
//! after the `Conv2D` of `L_1` — still recognizable, if blurred — and
//! (c) the activation after the full `L_1` block (conv + max-pool), which
//! "can definitely hide original images". These helpers capture those
//! stages from any client model and render them side by side.

use crate::image::{hstack, RgbImage};
use stsl_nn::{Mode, Sequential};
use stsl_tensor::Tensor;

/// One captured stage of the computation.
#[derive(Debug, Clone)]
pub struct CapturePoint {
    /// Stage label (`"original"`, `"conv2d#0"`, `"maxpool2d#2"`, …).
    pub label: String,
    /// Activation tensor, `[c, h, w]`.
    pub activation: Tensor,
}

/// Runs `image` (`[3, h, w]`) through every layer of `model`, returning
/// the original plus each layer's output as capture points.
///
/// # Panics
///
/// Panics if `image` is not `[c, h, w]`.
pub fn capture_stages(model: &mut Sequential, image: &Tensor) -> Vec<CapturePoint> {
    assert_eq!(
        image.rank(),
        3,
        "expected [c, h, w] image, got {}",
        image.shape()
    );
    let batched = {
        let mut dims = vec![1];
        dims.extend_from_slice(image.dims());
        image.reshape(dims)
    };
    let mut points = vec![CapturePoint {
        label: "original".to_string(),
        activation: image.clone(),
    }];
    let names = model.layer_names();
    for (i, out) in model
        .forward_collect(&batched, Mode::Eval)
        .into_iter()
        .enumerate()
    {
        if out.rank() != 4 {
            break; // flatten/dense stages have no spatial rendering
        }
        points.push(CapturePoint {
            label: format!("{}#{}", names[i], i),
            activation: out.index_axis0(0),
        });
    }
    points
}

/// Renders a `[c, h, w]` activation: RGB for 3-channel tensors, the
/// channel-mean as grayscale otherwise.
///
/// # Panics
///
/// Panics if the tensor is not rank 3.
pub fn render_stage(activation: &Tensor) -> RgbImage {
    assert_eq!(
        activation.rank(),
        3,
        "expected [c, h, w], got {}",
        activation.shape()
    );
    if activation.dim(0) == 3 {
        RgbImage::from_chw(
            activation,
            activation.min(),
            activation.max().max(activation.min() + 1e-6),
        )
    } else {
        RgbImage::from_feature_map(&activation.mean_axis(0))
    }
}

/// The channel-mean of a `[c, h, w]` activation, upsampled (nearest
/// neighbour) to `side×side` — a common canvas for comparing stages.
pub fn mean_map_upsampled(activation: &Tensor, side: usize) -> Tensor {
    let mean = activation.mean_axis(0);
    let (h, w) = (mean.dim(0), mean.dim(1));
    Tensor::from_fn([side, side], |idx| {
        let y = (idx[0] * h) / side;
        let x = (idx[1] * w) / side;
        mean.at(&[y.min(h - 1), x.min(w - 1)])
    })
}

/// How much of the original image's spatial structure survives in a
/// stage's activation: the **best single channel's** absolute Pearson
/// correlation (after nearest-neighbour upsampling) with the original's
/// luminance, in `[0, 1]`.
///
/// Per-channel, not channel-mean, because an eavesdropper inspects
/// channels individually — exactly what the paper's Fig. 4(b) shows: one
/// `Conv2D` feature map in which the image is still recognizable. High
/// values mean the stage still exposes the image.
pub fn stage_similarity(original: &Tensor, activation: &Tensor) -> f32 {
    assert_eq!(
        activation.rank(),
        3,
        "expected [c, h, w], got {}",
        activation.shape()
    );
    let side = original.dim(1);
    let lum = original.mean_axis(0);
    if is_constant(&lum) {
        return 0.0;
    }
    let mut best = 0.0f32;
    for c in 0..activation.dim(0) {
        let channel = activation.index_axis0(c);
        let single = channel.reshape([1, channel.dim(0), channel.dim(1)]);
        let map = mean_map_upsampled(&single, side);
        if is_constant(&map) {
            continue;
        }
        best = best.max(crate::metrics::pixel_correlation(&lum, &map).abs());
    }
    best
}

fn is_constant(t: &Tensor) -> bool {
    (t.max() - t.min()).abs() < 1e-9
}

/// Renders the Fig. 4 triptych — original, post-`Conv2D(L1)`, post-`L1` —
/// upscaled by `scale` for visibility.
///
/// # Panics
///
/// Panics if `model` does not start with a `[conv, relu, pool]` block or
/// `scale == 0`.
pub fn fig4_triptych(model: &mut Sequential, image: &Tensor, scale: usize) -> RgbImage {
    let stages = capture_stages(model, image);
    assert!(
        stages.len() >= 4,
        "model must contain at least one full conv block, got {} capture points",
        stages.len()
    );
    // stages: [original, conv, relu, pool, ...]
    let original = render_stage(&stages[0].activation).upscale(scale);
    let conv = render_stage(&stages[1].activation).upscale(scale);
    let pooled_scale = scale * (stages[0].activation.dim(1) / stages[3].activation.dim(1)).max(1);
    let pooled = render_stage(&stages[3].activation).upscale(pooled_scale);
    hstack(&[original, conv, pooled])
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_data::SyntheticCifar;
    use stsl_nn::layers::{Conv2d, MaxPool2d, Relu};
    use stsl_tensor::init::rng_from_seed;

    fn one_block_model(seed: u64) -> Sequential {
        let mut m = Sequential::new();
        m.push(Conv2d::new(3, 8, 3, seed));
        m.push(Relu::new());
        m.push(MaxPool2d::new(2));
        m
    }

    fn sample_image(class: usize) -> Tensor {
        SyntheticCifar::new(0)
            .difficulty(0.0)
            .render_sized(class, 16, &mut rng_from_seed(3))
    }

    #[test]
    fn capture_includes_original_and_block_stages() {
        let mut m = one_block_model(1);
        let points = capture_stages(&mut m, &sample_image(4));
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].label, "original");
        assert!(points[1].label.starts_with("conv2d"));
        assert!(points[3].label.starts_with("maxpool2d"));
        assert_eq!(points[3].activation.dims(), &[8, 8, 8]);
    }

    #[test]
    fn capture_stops_at_flatten() {
        let mut m = one_block_model(1);
        m.push(stsl_nn::layers::Flatten::new());
        m.push(stsl_nn::layers::Dense::new(8 * 8 * 8, 4, 0));
        let points = capture_stages(&mut m, &sample_image(0));
        assert_eq!(points.len(), 4); // original + conv + relu + pool only
    }

    #[test]
    fn render_rgb_vs_feature_map() {
        let rgb = render_stage(&Tensor::zeros([3, 4, 4]));
        assert_eq!(rgb.width(), 4);
        let fm = render_stage(&Tensor::zeros([8, 4, 4]));
        assert_eq!(fm.width(), 4);
    }

    #[test]
    fn mean_map_upsampling_shape() {
        let t = Tensor::randn([5, 4, 4], &mut rng_from_seed(0));
        let up = mean_map_upsampled(&t, 16);
        assert_eq!(up.dims(), &[16, 16]);
    }

    #[test]
    fn conv_stage_is_more_similar_than_pool_stage() {
        // The core Fig. 4 claim: the conv output still mirrors the image's
        // structure; pooling degrades it. Average over several images to
        // smooth out per-image variance.
        let mut m = one_block_model(7);
        let mut conv_sim = 0.0;
        let mut pool_sim = 0.0;
        for class in [0usize, 1, 2, 3, 7, 9] {
            let img = sample_image(class);
            let stages = capture_stages(&mut m, &img);
            conv_sim += stage_similarity(&img, &stages[1].activation);
            pool_sim += stage_similarity(&img, &stages[3].activation);
        }
        assert!(
            conv_sim > pool_sim,
            "conv similarity {} should exceed pool similarity {}",
            conv_sim,
            pool_sim
        );
    }

    #[test]
    fn triptych_has_three_panels() {
        let mut m = one_block_model(2);
        let img = sample_image(5);
        let trip = fig4_triptych(&mut m, &img, 2);
        // 3 panels of 32 px (16×2 upscale) + 2 gutters of 2 px.
        assert_eq!(trip.width(), 32 * 3 + 4);
        assert_eq!(trip.height(), 32);
    }

    #[test]
    fn stage_similarity_of_identity_is_high() {
        let img = sample_image(3);
        let sim = stage_similarity(&img, &img);
        assert!(sim > 0.95, "self similarity {}", sim);
    }
}
