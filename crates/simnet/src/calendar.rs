//! A calendar (bucket) priority queue for fleet-scale event volumes.
//!
//! The classic calendar queue (Brown 1988) hashes each event into a
//! circular array of time buckets of equal width; `pop` scans forward
//! from the bucket covering "now". With bucket count and width tracking
//! the pending-set size and spread, both `insert` and `pop` are O(1)
//! amortized — in the worst case (everything hashed into one bucket, or
//! a lap over empty buckets) they degrade gracefully to O(n) while
//! remaining exactly ordered.
//!
//! # Ordering contract
//!
//! Pops are globally ordered by `(time, seq)`, bitwise identical to the
//! `BinaryHeap` reference in [`crate::EventQueue`]. Two facts make the
//! forward bucket scan sufficient:
//!
//! * Every entry is *placed* at `max(event time, queue clock at insert)`
//!   — the clamp [`crate::EventQueue::pop`] applies at fire time, applied
//!   eagerly. The raw event `time` is preserved for ordering and for the
//!   fired timestamp; only the bucket placement is clamped.
//! * The queue clock only advances to timestamps that have been popped,
//!   so every pending placement is `>= now`: the scan from the bucket
//!   covering `now` never has live entries behind it, and the first
//!   bucket holding an entry *native to its current lap* contains the
//!   global `(time, seq)` minimum.
//!
//! If a full lap over the bucket array finds nothing native (all pending
//! events live laps in the future — the sparse far-future case), a
//! direct O(n) scan finds the global minimum instead of spinning over
//! future laps.
//!
//! Storage is plain `Vec`s end to end — no hash maps, no wall clock — so
//! the structure is deterministic and passes the R1 audit rules for this
//! crate.

use crate::SimTime;

/// A pending event: the caller-visible `(time, seq, payload)` plus the
/// clamped placement key that decides which bucket holds it.
#[derive(Debug)]
pub(crate) struct CalEntry<T> {
    pub time: SimTime,
    pub seq: u64,
    placement_us: u64,
    pub payload: T,
}

/// Smallest bucket array; stays this size for tiny queues.
const MIN_BUCKETS: usize = 8;
/// Largest bucket array (2^20 slots ≈ 8 MiB of Vec headers); beyond this
/// the per-bucket chains just get longer, which is still correct.
const MAX_BUCKETS: usize = 1 << 20;
/// Upper bound on the bucket-width exponent: 2^40 µs ≈ 12.7 simulated
/// days per bucket is wider than any span the trainers generate.
const MAX_SHIFT: u32 = 40;

/// The calendar backing store. Ordering-policy-free: [`crate::EventQueue`]
/// owns `seq` assignment and the monotone clock, and passes `now` in.
#[derive(Debug)]
pub(crate) struct CalendarQueue<T> {
    /// Power-of-two circular bucket array.
    buckets: Vec<Vec<CalEntry<T>>>,
    /// Bucket width is `1 << shift` microseconds.
    shift: u32,
    /// Total pending entries across all buckets.
    len: usize,
}

impl<T> CalendarQueue<T> {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: 10, // 1.024 ms buckets: a sane width for link latencies
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    fn bucket_of(&self, placement_us: u64) -> usize {
        ((placement_us >> self.shift) as usize) & (self.buckets.len() - 1)
    }

    /// Inserts an entry. `now` is the queue clock at insert time; events
    /// scheduled in the past are placed at `now` (they fire immediately)
    /// while keeping their raw `time` for the `(time, seq)` order.
    pub fn insert(&mut self, time: SimTime, seq: u64, now: SimTime, payload: T) {
        if self.len + 1 > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize((self.len + 1).next_power_of_two());
        }
        let placement_us = time.as_micros().max(now.as_micros());
        let b = self.bucket_of(placement_us);
        self.buckets[b].push(CalEntry {
            time,
            seq,
            placement_us,
            payload,
        });
        self.len += 1;
    }

    /// Removes and returns the `(time, seq)`-minimal entry, or `None` if
    /// empty. `now` is the queue clock (every placement is `>= now`).
    pub fn pop(&mut self, now: SimTime) -> Option<CalEntry<T>> {
        let (b, i) = self.find_min(now)?;
        let entry = self.buckets[b].swap_remove(i);
        self.len -= 1;
        if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.len.max(1).next_power_of_two());
        }
        Some(entry)
    }

    /// Raw timestamp of the `(time, seq)`-minimal pending entry.
    pub fn peek_time(&self, now: SimTime) -> Option<SimTime> {
        self.find_min(now).map(|(b, i)| self.buckets[b][i].time)
    }

    /// Locates the `(time, seq)`-minimal entry as `(bucket, index)`.
    ///
    /// Scans one lap forward from the bucket covering `now`, considering
    /// only entries native to the current lap (placement day == scanned
    /// day); the first bucket with a native entry holds the global
    /// minimum (see the module docs for why). A dry lap means all
    /// entries are laps ahead — fall back to a direct scan.
    fn find_min(&self, now: SimTime) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut day = now.as_micros() >> self.shift;
        for _ in 0..self.buckets.len() {
            let b = (day as usize) & mask;
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                if e.placement_us >> self.shift != day {
                    continue;
                }
                let key = (e.time, e.seq);
                if best.is_none_or(|(t, s, _)| key < (t, s)) {
                    best = Some((e.time, e.seq, i));
                }
            }
            if let Some((_, _, i)) = best {
                return Some((b, i));
            }
            day += 1;
        }
        self.global_min()
    }

    /// Direct O(n) scan for the `(time, seq)` minimum — the sparse
    /// far-future fallback.
    fn global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(SimTime, u64, usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                let key = (e.time, e.seq);
                if best.is_none_or(|(t, s, _, _)| key < (t, s)) {
                    best = Some((e.time, e.seq, b, i));
                }
            }
        }
        best.map(|(_, _, b, i)| (b, i))
    }

    /// Rebuilds the bucket array at `target` slots (clamped to a power of
    /// two in `[MIN_BUCKETS, MAX_BUCKETS]`), re-deriving the bucket width
    /// from the placement spread so the pending set stays roughly one
    /// entry per bucket. Fully determined by queue contents — no
    /// sampling, no clocks — so resize points are reproducible.
    fn resize(&mut self, target: usize) {
        let nbuckets = target.clamp(MIN_BUCKETS, MAX_BUCKETS).next_power_of_two();
        let mut min_p = u64::MAX;
        let mut max_p = 0u64;
        for bucket in &self.buckets {
            for e in bucket {
                min_p = min_p.min(e.placement_us);
                max_p = max_p.max(e.placement_us);
            }
        }
        let span = max_p.saturating_sub(min_p);
        // Average inter-event gap, so ~one lap covers the whole spread.
        let gap = (span / self.len.max(1) as u64).max(1);
        let mut shift = 0u32;
        while (1u64 << shift) < gap && shift < MAX_SHIFT {
            shift += 1;
        }
        let old = std::mem::replace(
            &mut self.buckets,
            (0..nbuckets).map(|_| Vec::new()).collect(),
        );
        self.shift = shift;
        for bucket in old {
            for e in bucket {
                let b = self.bucket_of(e.placement_us);
                self.buckets[b].push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        while let Some(e) = q.pop(now) {
            now = now.max(e.time);
            out.push((e.time.as_micros(), e.seq));
        }
        out
    }

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = CalendarQueue::new();
        q.insert(SimTime::from_micros(500), 0, SimTime::ZERO, 0);
        q.insert(SimTime::from_micros(100), 1, SimTime::ZERO, 1);
        q.insert(SimTime::from_micros(100), 2, SimTime::ZERO, 2);
        q.insert(SimTime::from_micros(300), 3, SimTime::ZERO, 3);
        assert_eq!(drain(&mut q), vec![(100, 1), (100, 2), (300, 3), (500, 0)]);
    }

    #[test]
    fn resize_preserves_order_across_growth() {
        let mut q = CalendarQueue::new();
        // Enough inserts to force several grow cycles, with clustered and
        // spread timestamps.
        for i in 0..200u64 {
            let t = (i * 37) % 1000;
            q.insert(SimTime::from_micros(t), i, SimTime::ZERO, i as u32);
        }
        let out = drain(&mut q);
        assert_eq!(out.len(), 200);
        for w in out.windows(2) {
            assert!(w[0] < w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn far_future_event_found_by_fallback() {
        let mut q = CalendarQueue::new();
        // Far beyond one lap of 8 buckets at any reasonable width.
        q.insert(SimTime::from_micros(u64::MAX / 2), 0, SimTime::ZERO, 7);
        let e = q.pop(SimTime::ZERO).unwrap();
        assert_eq!(e.payload, 7);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn past_insert_is_placed_at_now() {
        let mut q = CalendarQueue::new();
        let now = SimTime::from_micros(10_000);
        q.insert(SimTime::from_micros(5), 0, now, 1);
        // The entry must be findable from the bucket covering `now`.
        let e = q.pop(now).unwrap();
        assert_eq!(e.time, SimTime::from_micros(5));
    }
}
