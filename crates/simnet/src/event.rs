//! A deterministic discrete-event queue with a selectable backing store.
//!
//! Two implementations sit behind one API, mirroring the `Backend` seam
//! in `stsl-tensor`:
//!
//! * [`QueueKind::Reference`] — the original `BinaryHeap`, the ordering
//!   oracle. O(log n) per op with excellent constants at small n.
//! * [`QueueKind::Calendar`] — a calendar/bucket queue (see
//!   [`crate::calendar`]) with O(1) amortized ops, built for fleet-scale
//!   simulations where the pending set reaches hundreds of thousands.
//!
//! Both deliver the exact same `(time, insertion seq)` total order, so a
//! simulation trace is bitwise identical whichever backing is active —
//! `tests/queue_equivalence.rs` proves it by property test and by
//! diffing full trainer traces.
//!
//! # Selection
//!
//! Resolution order, at queue construction:
//!
//! 1. a scope override installed by [`with_queue_kind`] (rides the
//!    `stsl-parallel` scope context, on bits disjoint from the tensor
//!    backend's, so the two seams compose);
//! 2. the `STSL_QUEUE` environment variable (`calendar`/`bucket` or
//!    `reference`/`heap`; an unparsable value falls back to the
//!    reference heap);
//! 3. the default: [`QueueKind::Calendar`].

use crate::calendar::CalendarQueue;
use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which backing store services a simulation's event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The original `BinaryHeap` path: the ordering oracle.
    Reference,
    /// Calendar/bucket queue: O(1) amortized, fleet-scale default.
    #[default]
    Calendar,
}

/// Scope-context bit pattern for a pinned reference (heap) queue.
/// Bits 2–3; bits 0–1 belong to `stsl-tensor`'s backend seam.
const CTX_QUEUE_REFERENCE: u64 = 1 << 2;
/// Scope-context bit pattern for a pinned calendar queue.
const CTX_QUEUE_CALENDAR: u64 = 2 << 2;
/// Mask of the scope-context bits owned by queue selection.
const CTX_QUEUE_MASK: u64 = 0b11 << 2;

impl QueueKind {
    /// The backing store a new [`EventQueue`] adopts on this thread,
    /// resolved as documented at the [module level](self).
    pub fn active() -> QueueKind {
        match stsl_parallel::scope_context() & CTX_QUEUE_MASK {
            CTX_QUEUE_REFERENCE => QueueKind::Reference,
            CTX_QUEUE_CALENDAR => QueueKind::Calendar,
            _ => Self::from_env(),
        }
    }

    /// Parses a queue-kind name: `reference`/`heap` or `calendar`/`bucket`
    /// (ASCII case-insensitive).
    pub fn parse(name: &str) -> Option<QueueKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "reference" | "heap" => Some(QueueKind::Reference),
            "calendar" | "bucket" => Some(QueueKind::Calendar),
            _ => None,
        }
    }

    /// Stable lower-case name, the spelling `STSL_QUEUE` accepts and the
    /// bench envelopes report.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::Reference => "reference",
            QueueKind::Calendar => "calendar",
        }
    }

    /// Environment-level selection: `STSL_QUEUE`, else the default.
    /// Unparsable values resolve to the reference heap.
    fn from_env() -> QueueKind {
        match std::env::var("STSL_QUEUE") {
            Ok(v) => QueueKind::parse(&v).unwrap_or(QueueKind::Reference),
            Err(_) => QueueKind::default(),
        }
    }
}

/// Runs `f` with the event-queue backing pinned to `kind` for every
/// [`EventQueue`] constructed inside, restoring the previous selection
/// afterwards (including on panic). Rides the `stsl-parallel` scope
/// context, so the pin reaches queues built on pool worker threads too.
pub fn with_queue_kind<R>(kind: QueueKind, f: impl FnOnce() -> R) -> R {
    let bits = match kind {
        QueueKind::Reference => CTX_QUEUE_REFERENCE,
        QueueKind::Calendar => CTX_QUEUE_CALENDAR,
    };
    let ctx = (stsl_parallel::scope_context() & !CTX_QUEUE_MASK) | bits;
    stsl_parallel::with_scope_context(ctx, f)
}

/// An event queue delivering payloads in `(time, insertion order)` order.
///
/// Ties at the same timestamp are broken by insertion sequence number, so
/// a simulation run is bit-reproducible regardless of queue internals —
/// and regardless of which [`QueueKind`] backs it.
#[derive(Debug)]
pub struct EventQueue<T> {
    backing: Backing<T>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
enum Backing<T> {
    Heap(BinaryHeap<Entry<T>>),
    Calendar(CalendarQueue<T>),
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero, backed per
    /// [`QueueKind::active`].
    pub fn new() -> Self {
        Self::with_kind(QueueKind::active())
    }

    /// Creates an empty queue at time zero with an explicit backing,
    /// ignoring scope and environment selection.
    pub fn with_kind(kind: QueueKind) -> Self {
        let backing = match kind {
            QueueKind::Reference => Backing::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Backing::Calendar(CalendarQueue::new()),
        };
        EventQueue {
            backing,
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Which backing store this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backing {
            Backing::Heap(_) => QueueKind::Reference,
            Backing::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Heap(h) => h.len(),
            Backing::Calendar(c) => c.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is allowed (the event fires "now"): clock
    /// monotonicity is enforced at pop time by clamping to `now`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backing {
            Backing::Heap(h) => h.push(Entry {
                time: at,
                seq,
                payload,
            }),
            Backing::Calendar(c) => c.insert(at, seq, self.now, payload),
        }
    }

    /// Pops the earliest event, advancing the clock to its timestamp
    /// (clamped to be monotone).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let (time, payload) = match &mut self.backing {
            Backing::Heap(h) => h.pop().map(|e| (e.time, e.payload))?,
            Backing::Calendar(c) => c.pop(self.now).map(|e| (e.time, e.payload))?,
        };
        let fire_at = time.max(self.now);
        self.now = fire_at;
        Some((fire_at, payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backing {
            Backing::Heap(h) => h.peek().map(|e| e.time),
            Backing::Calendar(c) => c.peek_time(self.now),
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [QueueKind; 2] = [QueueKind::Reference, QueueKind::Calendar];

    #[test]
    fn pops_in_time_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_micros(30), "c");
            q.schedule(SimTime::from_micros(10), "a");
            q.schedule(SimTime::from_micros(20), "b");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec!["a", "b", "c"], "kind {kind:?}");
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_micros(5);
            for i in 0..10 {
                q.schedule(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "kind {kind:?}");
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_micros(100), ());
            q.pop();
            assert_eq!(q.now(), SimTime::from_micros(100));
            // An event scheduled in the past fires at the current clock.
            q.schedule(SimTime::from_micros(50), ());
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_micros(100), "kind {kind:?}");
            assert_eq!(q.now(), SimTime::from_micros(100));
        }
    }

    #[test]
    fn empty_queue_behaviour() {
        for kind in BOTH {
            let mut q: EventQueue<()> = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
            assert_eq!(q.peek_time(), None);
            assert_eq!(q.now(), SimTime::ZERO);
        }
    }

    #[test]
    fn peek_does_not_advance_clock() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_micros(42), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(42)));
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn kinds_report_and_parse() {
        assert_eq!(QueueKind::parse("reference"), Some(QueueKind::Reference));
        assert_eq!(QueueKind::parse("HEAP"), Some(QueueKind::Reference));
        assert_eq!(QueueKind::parse(" calendar "), Some(QueueKind::Calendar));
        assert_eq!(QueueKind::parse("bucket"), Some(QueueKind::Calendar));
        assert_eq!(QueueKind::parse("wheel"), None);
        for k in BOTH {
            assert_eq!(QueueKind::parse(k.name()), Some(k));
            assert_eq!(EventQueue::<()>::with_kind(k).kind(), k);
        }
    }

    #[test]
    fn with_queue_kind_pins_and_restores() {
        let outer = QueueKind::active();
        with_queue_kind(QueueKind::Reference, || {
            assert_eq!(QueueKind::active(), QueueKind::Reference);
            assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Reference);
            with_queue_kind(QueueKind::Calendar, || {
                assert_eq!(QueueKind::active(), QueueKind::Calendar);
            });
            assert_eq!(QueueKind::active(), QueueKind::Reference);
        });
        assert_eq!(QueueKind::active(), outer);
    }

    #[test]
    fn queue_kind_bits_compose_with_backend_bits() {
        // The queue seam owns bits 2–3; anything living in bits 0–1 (the
        // tensor backend pin) must survive a nested queue-kind pin.
        stsl_parallel::with_scope_context(0b01, || {
            with_queue_kind(QueueKind::Reference, || {
                assert_eq!(stsl_parallel::scope_context() & 0b11, 0b01);
                assert_eq!(QueueKind::active(), QueueKind::Reference);
            });
        });
    }

    #[test]
    fn interleaved_schedule_pop_matches_reference() {
        // Deterministic stress: both kinds run the same script of
        // schedules (some past, some far future, bursts of ties) and
        // interleaved pops; the pop streams must match exactly.
        let script: Vec<(u64, bool)> = (0..500)
            .map(|i: u64| {
                let t = (i * 7919) % 10_000
                    + if i.is_multiple_of(17) {
                        1_000_000_000
                    } else {
                        0
                    };
                (t, i.is_multiple_of(3))
            })
            .collect();
        let mut runs: Vec<Vec<(SimTime, u64)>> = Vec::new();
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            let mut out = Vec::new();
            for (i, &(t, pop)) in script.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i as u64);
                if pop {
                    if let Some(e) = q.pop() {
                        out.push(e);
                    }
                }
            }
            while let Some(e) = q.pop() {
                out.push(e);
            }
            runs.push(out);
        }
        assert_eq!(runs[0], runs[1]);
    }
}
