//! A deterministic discrete-event queue.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue delivering payloads in `(time, insertion order)` order.
///
/// Ties at the same timestamp are broken by insertion sequence number, so a
/// simulation run is bit-reproducible regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is allowed (the event fires "now"): clock
    /// monotonicity is enforced at pop time by clamping to `now`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Pops the earliest event, advancing the clock to its timestamp
    /// (clamped to be monotone).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let entry = self.heap.pop()?;
        let fire_at = entry.time.max(self.now);
        self.now = fire_at;
        Some((fire_at, entry.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(100));
        // An event scheduled in the past fires at the current clock.
        q.schedule(SimTime::from_micros(50), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(100));
        assert_eq!(q.now(), SimTime::from_micros(100));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}
