//! Deterministic fault injection: scheduled fault episodes layered on top
//! of the link models.
//!
//! A [`FaultPlan`] is a list of [`FaultEpisode`]s, each active over a
//! half-open simulated-time window `[from, until)`. Trainers consult the
//! plan at event time — the plan itself holds no mutable state, so the
//! same plan plus the same seed reproduces the same run bit-for-bit.
//!
//! The fault kinds cover the failure modes a geo-distributed split
//! deployment sees in practice: total link outages, loss-rate surges,
//! latency spikes with jitter, end-system crash→recover windows, server
//! stalls, payload corruption, membership churn (join/leave/rejoin), and
//! Byzantine adversary personas ([`AttackSpec`]) that poison update
//! *content* while staying protocol-valid.

use crate::{EndSystemId, Link, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stsl_tensor::init::{derive_seed, rng_from_seed};

/// What goes wrong during an episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Every transfer on the client's link fails.
    LinkOutage {
        /// Affected end-system.
        client: EndSystemId,
    },
    /// The client's link loses packets at (at least) the given rate,
    /// compounded with the link's base loss.
    LossSurge {
        /// Affected end-system.
        client: EndSystemId,
        /// Additional loss probability in `[0, 1)`.
        loss: f64,
    },
    /// Transfers on the client's link take extra time.
    LatencySpike {
        /// Affected end-system.
        client: EndSystemId,
        /// Added latency in milliseconds.
        extra_ms: f64,
        /// Uniform jitter amplitude in milliseconds (each transfer adds
        /// `U[0, jitter_ms)` on top of `extra_ms`).
        jitter_ms: f64,
    },
    /// The end-system crashes at `from` and recovers at `until`.
    ClientCrash {
        /// Affected end-system.
        client: EndSystemId,
    },
    /// The server processes nothing during the window.
    ServerStall,
    /// Each transfer on the client's link is delivered, but its payload is
    /// garbled with probability `rate` (random bit flips or truncation —
    /// see [`corrupt_payload`]). Unlike [`FaultKind::LossSurge`] the bytes
    /// still arrive; whether the receiver notices is up to the protocol's
    /// integrity checks.
    PayloadCorruption {
        /// Affected end-system.
        client: EndSystemId,
        /// Per-transfer corruption probability in `(0, 1]`.
        rate: f64,
    },
    /// The end-system joins the fleet at `from`. Before that instant it is
    /// dormant (declared in the config but not yet participating); membership
    /// admits it mid-training with a server-seeded warm start.
    ClientJoin {
        /// Joining end-system.
        client: EndSystemId,
    },
    /// The end-system departs the fleet at `from` (a deliberate leave, not
    /// a crash: its outstanding work is abandoned and it stops producing
    /// batches until a matching [`FaultKind::ClientRejoin`], if any).
    ClientLeave {
        /// Departing end-system.
        client: EndSystemId,
    },
    /// A departed end-system rejoins at `from`, resyncing from its last
    /// acked batch.
    ClientRejoin {
        /// Rejoining end-system.
        client: EndSystemId,
    },
    /// The end-system behaves Byzantinely while the episode is active: it
    /// follows the protocol (valid frames, finite values, plausible norms)
    /// but perturbs the *content* of every activation batch it sends
    /// according to [`AttackSpec`]. Unlike [`FaultKind::PayloadCorruption`]
    /// nothing on the wire is damaged — the poison is semantic, so only
    /// statistical defenses at the aggregation point can catch it.
    Adversary {
        /// Attacking end-system.
        client: EndSystemId,
        /// How it perturbs its updates.
        attack: AttackSpec,
    },
}

/// How a Byzantine end-system perturbs the activation batches it sends
/// (see [`FaultKind::Adversary`]). All perturbations keep values finite
/// and frames wire-valid — they are crafted to sail past CRC and
/// plausibility checks and must be caught statistically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackSpec {
    /// Sends `-gain × activations`: the classic gradient-reversal attack
    /// that pushes the shared model away from the descent direction.
    SignFlip {
        /// Magnitude multiplier (applied together with the sign flip).
        gain: f64,
    },
    /// Sends `factor × activations`: a boosting attacker that inflates its
    /// own influence on the aggregate.
    Scale {
        /// Magnitude multiplier, `> 1` to boost.
        factor: f64,
    },
    /// Adds zero-mean Gaussian noise whose amplitude grows as
    /// `sigma × √k` over the attacker's `k`-th poisoned batch — a slow
    /// drift engineered to stay under per-batch plausibility thresholds.
    GaussianDrift {
        /// Base noise amplitude.
        sigma: f64,
    },
    /// Replaces the activations with `gain ×` a pseudorandom direction
    /// derived from `(clique, batch)` — every member of the same clique
    /// sends the *same* malicious direction for the same batch index, so
    /// colluders corroborate each other against distance-based defenses.
    Collude {
        /// Clique identifier; members sharing it coordinate.
        clique: u64,
        /// Magnitude multiplier of the shared direction.
        gain: f64,
    },
}

impl FaultKind {
    /// The end-system this fault targets, if it is client-scoped.
    pub fn client(&self) -> Option<EndSystemId> {
        match *self {
            FaultKind::LinkOutage { client }
            | FaultKind::LossSurge { client, .. }
            | FaultKind::LatencySpike { client, .. }
            | FaultKind::ClientCrash { client }
            | FaultKind::PayloadCorruption { client, .. }
            | FaultKind::ClientJoin { client }
            | FaultKind::ClientLeave { client }
            | FaultKind::ClientRejoin { client }
            | FaultKind::Adversary { client, .. } => Some(client),
            FaultKind::ServerStall => None,
        }
    }
}

/// One scheduled fault, active over `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEpisode {
    /// What goes wrong.
    pub kind: FaultKind,
    /// When it starts (inclusive).
    pub from: SimTime,
    /// When it ends (exclusive).
    pub until: SimTime,
}

impl FaultEpisode {
    /// Creates an episode, validating the window.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`, or on out-of-range fault parameters.
    pub fn new(kind: FaultKind, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "fault episode window must be non-empty");
        if let FaultKind::LossSurge { loss, .. } = kind {
            assert!((0.0..1.0).contains(&loss), "surge loss must be in [0, 1)");
        }
        if let FaultKind::LatencySpike {
            extra_ms,
            jitter_ms,
            ..
        } = kind
        {
            assert!(
                extra_ms >= 0.0 && jitter_ms >= 0.0,
                "latency spike must be non-negative"
            );
        }
        if let FaultKind::PayloadCorruption { rate, .. } = kind {
            assert!(
                rate > 0.0 && rate <= 1.0,
                "corruption rate must be in (0, 1]"
            );
        }
        if let FaultKind::Adversary { attack, .. } = kind {
            let magnitude = match attack {
                AttackSpec::SignFlip { gain } => gain,
                AttackSpec::Scale { factor } => factor,
                AttackSpec::GaussianDrift { sigma } => sigma,
                AttackSpec::Collude { gain, .. } => gain,
            };
            assert!(
                magnitude.is_finite() && magnitude > 0.0,
                "attack magnitude must be finite and positive"
            );
        }
        FaultEpisode { kind, from, until }
    }

    /// Whether the episode is active at `at`.
    pub fn active_at(&self, at: SimTime) -> bool {
        self.from <= at && at < self.until
    }
}

/// A deterministic schedule of fault episodes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    episodes: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an episode (builder style).
    pub fn with(mut self, episode: FaultEpisode) -> Self {
        self.episodes.push(episode);
        self
    }

    /// Adds a link outage on `client` over `[from, until)`.
    pub fn link_outage(self, client: EndSystemId, from: SimTime, until: SimTime) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::LinkOutage { client },
            from,
            until,
        ))
    }

    /// Adds a loss surge on `client` over `[from, until)`.
    pub fn loss_surge(self, client: EndSystemId, loss: f64, from: SimTime, until: SimTime) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::LossSurge { client, loss },
            from,
            until,
        ))
    }

    /// Adds a latency spike on `client` over `[from, until)`.
    pub fn latency_spike(
        self,
        client: EndSystemId,
        extra_ms: f64,
        jitter_ms: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::LatencySpike {
                client,
                extra_ms,
                jitter_ms,
            },
            from,
            until,
        ))
    }

    /// Adds a crash→recover window for `client`.
    pub fn client_crash(self, client: EndSystemId, from: SimTime, until: SimTime) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::ClientCrash { client },
            from,
            until,
        ))
    }

    /// Adds a server stall over `[from, until)`.
    pub fn server_stall(self, from: SimTime, until: SimTime) -> Self {
        self.with(FaultEpisode::new(FaultKind::ServerStall, from, until))
    }

    /// Adds a payload-corruption episode on `client` over `[from, until)`.
    pub fn payload_corruption(
        self,
        client: EndSystemId,
        rate: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::PayloadCorruption { client, rate },
            from,
            until,
        ))
    }

    /// Adds a mid-training join for `client` at `at`. Churn transitions
    /// are instants, modeled as minimum-width episodes so they share the
    /// episode machinery.
    pub fn client_join(self, client: EndSystemId, at: SimTime) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::ClientJoin { client },
            at,
            at + SimDuration::from_micros(1),
        ))
    }

    /// Adds a deliberate departure for `client` at `at`.
    pub fn client_leave(self, client: EndSystemId, at: SimTime) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::ClientLeave { client },
            at,
            at + SimDuration::from_micros(1),
        ))
    }

    /// Adds a rejoin for a previously departed `client` at `at`.
    pub fn client_rejoin(self, client: EndSystemId, at: SimTime) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::ClientRejoin { client },
            at,
            at + SimDuration::from_micros(1),
        ))
    }

    /// Adds an adversarial persona on `client` over `[from, until)`: while
    /// active, every activation batch the client produces is perturbed per
    /// `attack` before it hits the wire. Attack-free clients (and windows)
    /// consume no attack randomness, so an attack-free plan reproduces the
    /// exact event stream of a plan-free run — the same discipline as
    /// [`FaultPlan::payload_corruption`].
    pub fn adversary(
        self,
        client: EndSystemId,
        attack: AttackSpec,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.with(FaultEpisode::new(
            FaultKind::Adversary { client, attack },
            from,
            until,
        ))
    }

    /// Gives each of the first `attackers` end-systems the same adversarial
    /// persona over `[from, until)` — the poison-sweep benchmark's
    /// fixed-fraction attacker cohort.
    pub fn adversaries(
        mut self,
        attackers: usize,
        attack: AttackSpec,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        for i in 0..attackers {
            self = self.adversary(EndSystemId(i), attack, from, until);
        }
        self
    }

    /// Adds the same payload-corruption episode to every one of `clients`
    /// links — the corruption-sweep benchmark's uniform-noise scenario.
    pub fn payload_corruption_all(
        mut self,
        clients: usize,
        rate: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        for i in 0..clients {
            self = self.payload_corruption(EndSystemId(i), rate, from, until);
        }
        self
    }

    /// Generates a random but fully seed-determined plan over `[0,
    /// horizon)` for `clients` end-systems. `intensity` in `[0, 1]` scales
    /// how many episodes each client receives: at `0.0` the plan is empty,
    /// at `1.0` every client gets roughly one episode of every kind.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]` or `horizon` is zero.
    pub fn random(clients: usize, horizon: SimDuration, seed: u64, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "intensity must be in [0, 1]"
        );
        assert!(horizon > SimDuration::ZERO, "horizon must be positive");
        // Stream 1 of the caller's seed: `random` and `churn` fed the
        // same parent seed must not alias the same RNG stream.
        let mut rng = rng_from_seed(derive_seed(seed, 1));
        let mut plan = FaultPlan::new();
        let h = horizon.as_micros();
        // Episodes last 5–20 % of the horizon.
        let window = |rng: &mut StdRng| {
            let len = rng.gen_range(h / 20..=h / 5).max(1);
            let start = rng.gen_range(0..h.saturating_sub(len).max(1));
            (
                SimTime::from_micros(start),
                SimTime::from_micros(start + len),
            )
        };
        for i in 0..clients {
            let client = EndSystemId(i);
            if rng.gen_bool(intensity) {
                let (from, until) = window(&mut rng);
                let loss = rng.gen_range(0.05..0.5);
                plan = plan.loss_surge(client, loss, from, until);
            }
            if rng.gen_bool(intensity * 0.8) {
                let (from, until) = window(&mut rng);
                let extra = rng.gen_range(20.0..200.0);
                let jitter = rng.gen_range(0.0..extra);
                plan = plan.latency_spike(client, extra, jitter, from, until);
            }
            if rng.gen_bool(intensity * 0.5) {
                let (from, until) = window(&mut rng);
                plan = plan.link_outage(client, from, until);
            }
            if rng.gen_bool(intensity * 0.5) {
                let (from, until) = window(&mut rng);
                plan = plan.client_crash(client, from, until);
            }
        }
        if rng.gen_bool(intensity * 0.5) {
            let (from, until) = window(&mut rng);
            plan = plan.server_stall(from, until);
        }
        plan
    }

    /// Generates a seeded churn arrival process over `[0, horizon)`.
    ///
    /// `members` end-systems (ids `0..members`) start active; each leaves
    /// with probability `turnover` at a time uniform in the middle of the
    /// horizon, and a leaver rejoins after a uniform gap when that still
    /// lands inside the horizon. `joiners` additional end-systems (ids
    /// `members..members + joiners`) start dormant and join in the first
    /// half of the horizon. Same seed, same plan, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `turnover` is outside `[0, 1]` or `horizon` is zero.
    pub fn churn(
        members: usize,
        joiners: usize,
        horizon: SimDuration,
        seed: u64,
        turnover: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&turnover),
            "turnover must be in [0, 1]"
        );
        assert!(horizon > SimDuration::ZERO, "horizon must be positive");
        // Stream 2: see `random`.
        let mut rng = rng_from_seed(derive_seed(seed, 2));
        let mut plan = FaultPlan::new();
        let h = horizon.as_micros().max(10);
        for i in 0..members {
            let client = EndSystemId(i);
            if rng.gen_bool(turnover) {
                let leave = rng.gen_range(h / 5..4 * h / 5);
                plan = plan.client_leave(client, SimTime::from_micros(leave));
                let gap = rng.gen_range(h / 20..h / 5).max(2);
                let back = leave.saturating_add(gap);
                if back < h {
                    plan = plan.client_rejoin(client, SimTime::from_micros(back));
                }
            }
        }
        for j in 0..joiners {
            let client = EndSystemId(members + j);
            let at = rng.gen_range(h / 10..h / 2);
            plan = plan.client_join(client, SimTime::from_micros(at));
        }
        plan
    }

    /// All scheduled joins as `(client, at)`, ascending by `(at, client)`.
    pub fn join_events(&self) -> Vec<(EndSystemId, SimTime)> {
        self.churn_events(|k| matches!(k, FaultKind::ClientJoin { .. }))
    }

    /// All scheduled departures as `(client, at)`, ascending by
    /// `(at, client)`.
    pub fn leave_events(&self) -> Vec<(EndSystemId, SimTime)> {
        self.churn_events(|k| matches!(k, FaultKind::ClientLeave { .. }))
    }

    /// All scheduled rejoins as `(client, at)`, ascending by
    /// `(at, client)`.
    pub fn rejoin_events(&self) -> Vec<(EndSystemId, SimTime)> {
        self.churn_events(|k| matches!(k, FaultKind::ClientRejoin { .. }))
    }

    fn churn_events(&self, select: impl Fn(&FaultKind) -> bool) -> Vec<(EndSystemId, SimTime)> {
        let mut out: Vec<(EndSystemId, SimTime)> = self
            .episodes
            .iter()
            .filter(|e| select(&e.kind))
            .filter_map(|e| e.kind.client().map(|c| (c, e.from)))
            .collect();
        out.sort_by_key(|&(c, at)| (at, c.0));
        out
    }

    /// All episodes, in insertion order.
    pub fn episodes(&self) -> &[FaultEpisode] {
        &self.episodes
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// Whether the plan has no episodes.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// The end of the last episode (time after which no fault is active).
    pub fn horizon(&self) -> SimTime {
        self.episodes
            .iter()
            .map(|e| e.until)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether `client`'s link is fully down at `at`.
    pub fn link_down(&self, client: EndSystemId, at: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            e.active_at(at) && matches!(e.kind, FaultKind::LinkOutage { client: c } if c == client)
        })
    }

    /// Additional loss probability on `client`'s link at `at` (compounded
    /// over concurrent surges).
    pub fn surge_loss(&self, client: EndSystemId, at: SimTime) -> f64 {
        let mut pass = 1.0;
        for e in &self.episodes {
            if let FaultKind::LossSurge { client: c, loss } = e.kind {
                if c == client && e.active_at(at) {
                    pass *= 1.0 - loss;
                }
            }
        }
        1.0 - pass
    }

    /// Probability that a transfer on `client`'s link at `at` is delivered
    /// with a garbled payload (compounded over concurrent corruption
    /// episodes, like [`FaultPlan::surge_loss`]).
    pub fn corruption_rate(&self, client: EndSystemId, at: SimTime) -> f64 {
        let mut pass = 1.0;
        for e in &self.episodes {
            if let FaultKind::PayloadCorruption { client: c, rate } = e.kind {
                if c == client && e.active_at(at) {
                    pass *= 1.0 - rate;
                }
            }
        }
        1.0 - pass
    }

    /// The adversarial persona active on `client` at `at`, if any. With
    /// overlapping episodes the earliest-inserted one wins — personas do
    /// not compound the way loss or corruption rates do, because two
    /// simultaneous content perturbations have no physical analogue.
    pub fn attack(&self, client: EndSystemId, at: SimTime) -> Option<AttackSpec> {
        self.episodes.iter().find_map(|e| match e.kind {
            FaultKind::Adversary { client: c, attack } if c == client && e.active_at(at) => {
                Some(attack)
            }
            _ => None,
        })
    }

    /// Whether the plan schedules any adversarial persona at all (used to
    /// skip attack bookkeeping entirely on benign plans).
    pub fn has_attacks(&self) -> bool {
        self.episodes
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Adversary { .. }))
    }

    /// Whether `client` is crashed at `at`.
    pub fn client_crashed(&self, client: EndSystemId, at: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            e.active_at(at) && matches!(e.kind, FaultKind::ClientCrash { client: c } if c == client)
        })
    }

    /// All crash windows, as `(client, from, until)` triples.
    pub fn crash_windows(&self) -> Vec<(EndSystemId, SimTime, SimTime)> {
        self.episodes
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::ClientCrash { client } => Some((client, e.from, e.until)),
                _ => None,
            })
            .collect()
    }

    /// Whether the server is stalled at `at`.
    pub fn server_stalled(&self, at: SimTime) -> bool {
        self.episodes
            .iter()
            .any(|e| e.active_at(at) && matches!(e.kind, FaultKind::ServerStall))
    }

    /// When the server stall covering `at` ends (the latest `until` among
    /// overlapping stall episodes), if any.
    pub fn server_stall_end(&self, at: SimTime) -> Option<SimTime> {
        self.episodes
            .iter()
            .filter(|e| e.active_at(at) && matches!(e.kind, FaultKind::ServerStall))
            .map(|e| e.until)
            .max()
    }

    /// Samples a transfer on `client`'s link at `at` with all active
    /// faults applied: `None` when the link is down or the (compounded)
    /// loss fires, otherwise the base transfer time plus any latency-spike
    /// penalty.
    pub fn transfer_through(
        &self,
        link: &Link,
        client: EndSystemId,
        bytes: usize,
        at: SimTime,
        rng: &mut StdRng,
    ) -> Option<SimDuration> {
        if self.link_down(client, at) {
            return None;
        }
        let surge = self.surge_loss(client, at);
        let mut faulted = *link;
        if surge > 0.0 {
            faulted.loss = 1.0 - (1.0 - faulted.loss) * (1.0 - surge);
        }
        let base = faulted.transfer(bytes, rng)?;
        // Summed via the sanctioned seam, in episode order with each
        // episode contributing its base spike then its jitter draw —
        // the same addend sequence as the old accumulation loop.
        let extra_ms = stsl_tensor::sum_f64(self.episodes.iter().flat_map(|e| {
            let mut parts = [None, None];
            if let FaultKind::LatencySpike {
                client: c,
                extra_ms: ms,
                jitter_ms,
            } = e.kind
            {
                if c == client && e.active_at(at) {
                    parts[0] = Some(ms);
                    if jitter_ms > 0.0 {
                        parts[1] = Some(rng.gen_range(0.0..jitter_ms));
                    }
                }
            }
            parts.into_iter().flatten()
        }));
        Some(base + SimDuration::from_secs_f64(extra_ms / 1e3))
    }
}

/// Garbles a wire payload in place, deterministically given the RNG state:
/// with probability 1/4 the buffer is truncated at a random point,
/// otherwise 1–16 random bits are flipped. Models the two damage shapes a
/// WAN actually produces — partial delivery and in-flight bit errors.
///
/// Empty buffers are returned untouched (there is nothing to garble).
pub fn corrupt_payload(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    if bytes.is_empty() {
        return;
    }
    if rng.gen_bool(0.25) {
        let keep = rng.gen_range(0..bytes.len());
        bytes.truncate(keep);
    } else {
        let flips = rng.gen_range(1..=16usize);
        for _ in 0..flips {
            let idx = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u8);
            bytes[idx] ^= 1 << bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new().link_outage(EndSystemId(0), t(10), t(20));
        assert!(!plan.link_down(EndSystemId(0), t(9)));
        assert!(plan.link_down(EndSystemId(0), t(10)));
        assert!(plan.link_down(EndSystemId(0), t(19)));
        assert!(!plan.link_down(EndSystemId(0), t(20)));
        assert!(!plan.link_down(EndSystemId(1), t(15)));
    }

    #[test]
    fn loss_surges_compound() {
        let plan = FaultPlan::new()
            .loss_surge(EndSystemId(0), 0.5, t(0), t(100))
            .loss_surge(EndSystemId(0), 0.5, t(50), t(100));
        assert!((plan.surge_loss(EndSystemId(0), t(10)) - 0.5).abs() < 1e-12);
        assert!((plan.surge_loss(EndSystemId(0), t(60)) - 0.75).abs() < 1e-12);
        assert_eq!(plan.surge_loss(EndSystemId(1), t(60)), 0.0);
    }

    #[test]
    fn outage_blocks_every_transfer() {
        let plan = FaultPlan::new().link_outage(EndSystemId(0), t(0), t(100));
        let link = Link::ideal();
        let mut rng = rng_from_seed(1);
        for _ in 0..20 {
            assert_eq!(
                plan.transfer_through(&link, EndSystemId(0), 100, t(5), &mut rng),
                None
            );
        }
        assert!(plan
            .transfer_through(&link, EndSystemId(0), 100, t(100), &mut rng)
            .is_some());
    }

    #[test]
    fn latency_spike_inflates_transfers() {
        let plan = FaultPlan::new().latency_spike(EndSystemId(0), 100.0, 0.0, t(0), t(100));
        let link = Link::wan(5.0, 100.0);
        let mut rng = rng_from_seed(2);
        let base = link.transfer(1000, &mut rng).unwrap();
        let spiked = plan
            .transfer_through(&link, EndSystemId(0), 1000, t(5), &mut rng)
            .unwrap();
        assert_eq!(spiked, base + SimDuration::from_millis(100));
        let after = plan
            .transfer_through(&link, EndSystemId(0), 1000, t(200), &mut rng)
            .unwrap();
        assert_eq!(after, base);
    }

    #[test]
    fn crash_windows_are_reported() {
        let plan = FaultPlan::new()
            .client_crash(EndSystemId(1), t(10), t(30))
            .server_stall(t(40), t(50));
        assert!(plan.client_crashed(EndSystemId(1), t(15)));
        assert!(!plan.client_crashed(EndSystemId(0), t(15)));
        assert_eq!(plan.crash_windows(), vec![(EndSystemId(1), t(10), t(30))]);
        assert!(plan.server_stalled(t(45)));
        assert_eq!(plan.server_stall_end(t(45)), Some(t(50)));
        assert_eq!(plan.server_stall_end(t(55)), None);
        assert_eq!(plan.horizon(), t(50));
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(4, SimDuration::from_millis(10_000), 9, 0.8);
        let b = FaultPlan::random(4, SimDuration::from_millis(10_000), 9, 0.8);
        let c = FaultPlan::random(4, SimDuration::from_millis(10_000), 10, 0.8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn zero_intensity_is_empty() {
        let plan = FaultPlan::random(8, SimDuration::from_millis(1000), 3, 0.0);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn plans_serialize_roundtrip() {
        let plan = FaultPlan::new()
            .loss_surge(EndSystemId(0), 0.1, t(0), t(10))
            .client_crash(EndSystemId(1), t(5), t(15))
            .server_stall(t(1), t(2));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        FaultEpisode::new(FaultKind::ServerStall, t(5), t(5));
    }

    #[test]
    fn corruption_rate_compounds_and_scopes_to_client() {
        let plan = FaultPlan::new()
            .payload_corruption(EndSystemId(0), 0.5, t(0), t(100))
            .payload_corruption(EndSystemId(0), 0.5, t(50), t(100));
        assert!((plan.corruption_rate(EndSystemId(0), t(10)) - 0.5).abs() < 1e-12);
        assert!((plan.corruption_rate(EndSystemId(0), t(60)) - 0.75).abs() < 1e-12);
        assert_eq!(plan.corruption_rate(EndSystemId(0), t(100)), 0.0);
        assert_eq!(plan.corruption_rate(EndSystemId(1), t(60)), 0.0);
        assert_eq!(
            plan.episodes()[0].kind.client(),
            Some(EndSystemId(0)),
            "corruption faults are client-scoped"
        );
    }

    #[test]
    fn payload_corruption_all_covers_every_client() {
        let plan = FaultPlan::new().payload_corruption_all(3, 0.2, t(0), t(10));
        assert_eq!(plan.len(), 3);
        for i in 0..3 {
            assert!((plan.corruption_rate(EndSystemId(i), t(5)) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "corruption rate")]
    fn zero_corruption_rate_rejected() {
        FaultPlan::new().payload_corruption(EndSystemId(0), 0.0, t(0), t(10));
    }

    #[test]
    fn churn_plans_are_seed_deterministic_and_ordered() {
        let a = FaultPlan::churn(5, 2, SimDuration::from_millis(10_000), 11, 0.5);
        let b = FaultPlan::churn(5, 2, SimDuration::from_millis(10_000), 11, 0.5);
        let c = FaultPlan::churn(5, 2, SimDuration::from_millis(10_000), 12, 0.5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.join_events().len(), 2, "every joiner gets a join event");
        for w in a.leave_events().windows(2) {
            assert!((w[0].1, w[0].0 .0) <= (w[1].1, w[1].0 .0));
        }
        // Every rejoin follows that client's leave.
        for (client, back) in a.rejoin_events() {
            let leave = a
                .leave_events()
                .into_iter()
                .find(|&(c, _)| c == client)
                .expect("rejoiner must have left");
            assert!(back > leave.1);
        }
    }

    #[test]
    fn zero_turnover_churn_only_joins() {
        let plan = FaultPlan::churn(4, 1, SimDuration::from_millis(1_000), 3, 0.0);
        assert!(plan.leave_events().is_empty());
        assert!(plan.rejoin_events().is_empty());
        assert_eq!(plan.join_events().len(), 1);
        assert_eq!(plan.join_events()[0].0, EndSystemId(4));
    }

    #[test]
    fn churn_builders_are_client_scoped_instants() {
        let plan = FaultPlan::new()
            .client_join(EndSystemId(2), t(10))
            .client_leave(EndSystemId(0), t(20))
            .client_rejoin(EndSystemId(0), t(30));
        assert_eq!(plan.join_events(), vec![(EndSystemId(2), t(10))]);
        assert_eq!(plan.leave_events(), vec![(EndSystemId(0), t(20))]);
        assert_eq!(plan.rejoin_events(), vec![(EndSystemId(0), t(30))]);
        for e in plan.episodes() {
            assert!(e.kind.client().is_some());
        }
        // Churn does not count as a crash or link fault.
        assert!(!plan.client_crashed(EndSystemId(0), t(20)));
        assert!(!plan.link_down(EndSystemId(0), t(20)));
        assert!(plan.crash_windows().is_empty());
    }

    #[test]
    fn adversary_windows_scope_to_client_and_time() {
        let plan = FaultPlan::new()
            .adversary(
                EndSystemId(0),
                AttackSpec::SignFlip { gain: 3.0 },
                t(10),
                t(20),
            )
            .adversary(
                EndSystemId(1),
                AttackSpec::Collude {
                    clique: 7,
                    gain: 2.0,
                },
                t(0),
                t(100),
            );
        assert!(plan.has_attacks());
        assert_eq!(plan.attack(EndSystemId(0), t(9)), None);
        assert_eq!(
            plan.attack(EndSystemId(0), t(10)),
            Some(AttackSpec::SignFlip { gain: 3.0 })
        );
        assert_eq!(plan.attack(EndSystemId(0), t(20)), None);
        assert!(matches!(
            plan.attack(EndSystemId(1), t(50)),
            Some(AttackSpec::Collude { clique: 7, .. })
        ));
        assert_eq!(plan.attack(EndSystemId(2), t(50)), None);
        // Attacks are not link faults: transfers still flow.
        assert!(!plan.link_down(EndSystemId(0), t(15)));
        assert!(!plan.client_crashed(EndSystemId(0), t(15)));
        // Overlap resolution: earliest-inserted persona wins.
        let overlapped = plan.adversary(
            EndSystemId(1),
            AttackSpec::Scale { factor: 9.0 },
            t(0),
            t(100),
        );
        assert!(matches!(
            overlapped.attack(EndSystemId(1), t(50)),
            Some(AttackSpec::Collude { .. })
        ));
    }

    #[test]
    fn adversaries_covers_prefix_cohort() {
        let plan = FaultPlan::new().adversaries(3, AttackSpec::Scale { factor: 4.0 }, t(0), t(10));
        assert_eq!(plan.len(), 3);
        for i in 0..3 {
            assert!(plan.attack(EndSystemId(i), t(5)).is_some());
        }
        assert!(plan.attack(EndSystemId(3), t(5)).is_none());
        assert!(FaultPlan::new()
            .adversaries(0, AttackSpec::SignFlip { gain: 1.0 }, t(0), t(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "attack magnitude")]
    fn non_positive_attack_magnitude_rejected() {
        FaultPlan::new().adversary(
            EndSystemId(0),
            AttackSpec::GaussianDrift { sigma: 0.0 },
            t(0),
            t(10),
        );
    }

    #[test]
    fn adversary_plans_serialize_roundtrip() {
        let plan = FaultPlan::new()
            .adversary(
                EndSystemId(2),
                AttackSpec::GaussianDrift { sigma: 0.5 },
                t(1),
                t(9),
            )
            .adversaries(2, AttackSpec::SignFlip { gain: 2.0 }, t(0), t(4));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn corrupt_payload_is_deterministic_and_always_damages() {
        let original: Vec<u8> = (0u8..=255).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        corrupt_payload(&mut a, &mut rng_from_seed(7));
        corrupt_payload(&mut b, &mut rng_from_seed(7));
        assert_eq!(a, b, "same seed, same damage");

        // Over many draws both damage shapes occur, and nearly every draw
        // visibly changes the buffer (an even number of flips landing on
        // the same bit can cancel, so "always" is not guaranteed).
        let mut rng = rng_from_seed(1);
        let mut saw_truncation = false;
        let mut saw_flip = false;
        let mut damaged = 0;
        for _ in 0..100 {
            let mut buf = original.clone();
            corrupt_payload(&mut buf, &mut rng);
            if buf != original {
                damaged += 1;
            }
            if buf.len() < original.len() {
                saw_truncation = true;
            } else {
                saw_flip = true;
            }
        }
        assert!(saw_truncation && saw_flip);
        assert!(damaged >= 90, "only {damaged}/100 draws caused damage");

        let mut empty: Vec<u8> = Vec::new();
        corrupt_payload(&mut empty, &mut rng_from_seed(3));
        assert!(empty.is_empty());
    }
}
