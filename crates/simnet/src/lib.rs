//! A deterministic discrete-event network simulator for geo-distributed
//! split learning.
//!
//! The paper (§II) observes that with spatially separated end-systems,
//! "parameters from the end-system can arrive at the server lately or
//! sparsely", requiring an arrival queue and a scheduling policy. This
//! crate provides the machinery to *measure* that claim: simulated time,
//! a tie-stable event queue, link models (latency distribution + bandwidth
//! serialization + loss), geographic star topologies with
//! distance-derived latency, and delivery statistics.
//!
//! Everything is deterministic given a seed; two runs produce identical
//! event orders.
//!
//! # Examples
//!
//! ```
//! use stsl_simnet::{SimNetwork, StarTopology, Link, EndSystemId, Direction, SimTime};
//!
//! // Two hospitals: one nearby (5 ms), one across an ocean (80 ms).
//! let topology = StarTopology::new(vec![Link::wan(5.0, 100.0), Link::wan(80.0, 100.0)]);
//! let mut net: SimNetwork<&str> = SimNetwork::new(topology, 7);
//! net.send(EndSystemId(0), Direction::Uplink, 1024, SimTime::ZERO, "near");
//! net.send(EndSystemId(1), Direction::Uplink, 1024, SimTime::ZERO, "far");
//! let (_, first) = net.recv().unwrap();
//! assert_eq!(first.payload, "near"); // the far site arrives late — the
//!                                    // queueing problem the paper names
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod event;
mod fault;
mod link;
mod network;
mod stats;
mod time;
mod topology;
mod trace;

pub use event::{with_queue_kind, EventQueue, QueueKind};
pub use fault::{corrupt_payload, AttackSpec, FaultEpisode, FaultKind, FaultPlan};
pub use link::{LatencyModel, Link};
pub use network::{Delivery, Direction, SimNetwork};
pub use stats::{LatencyStats, TrafficCounter};
pub use time::{SimDuration, SimTime};
pub use topology::{EndSystemId, GeoPoint, StarTopology};
pub use trace::{TraceEvent, TraceKind, TraceLog};
