//! Link models: latency distributions, bandwidth, jitter and loss.

use crate::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A one-way propagation-latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed latency.
    Constant {
        /// Latency in milliseconds.
        ms: f64,
    },
    /// Uniform in `[lo_ms, hi_ms]`.
    Uniform {
        /// Lower bound (ms).
        lo_ms: f64,
        /// Upper bound (ms).
        hi_ms: f64,
    },
    /// Normal with mean `mean_ms` and standard deviation `std_ms`,
    /// truncated at zero.
    Normal {
        /// Mean (ms).
        mean_ms: f64,
        /// Standard deviation (ms).
        std_ms: f64,
    },
}

impl LatencyModel {
    /// Samples one latency.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (negative, or `lo > hi`).
    pub fn sample(&self, rng: &mut StdRng) -> SimDuration {
        let ms = match *self {
            LatencyModel::Constant { ms } => {
                assert!(ms >= 0.0, "latency must be non-negative");
                ms
            }
            LatencyModel::Uniform { lo_ms, hi_ms } => {
                assert!(0.0 <= lo_ms && lo_ms <= hi_ms, "invalid uniform range");
                if lo_ms == hi_ms {
                    lo_ms
                } else {
                    rng.gen_range(lo_ms..hi_ms)
                }
            }
            LatencyModel::Normal { mean_ms, std_ms } => {
                assert!(mean_ms >= 0.0 && std_ms >= 0.0, "invalid normal parameters");
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean_ms + std_ms * z).max(0.0)
            }
        };
        SimDuration::from_secs_f64(ms / 1e3)
    }

    /// The mean latency of the model.
    pub fn mean(&self) -> SimDuration {
        let ms = match *self {
            LatencyModel::Constant { ms } => ms,
            LatencyModel::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            LatencyModel::Normal { mean_ms, .. } => mean_ms,
        };
        SimDuration::from_secs_f64(ms / 1e3)
    }
}

/// A simulated network link.
///
/// Transfer time = propagation latency (sampled) + serialization delay
/// (`bytes / bandwidth`). Packets are dropped i.i.d. with `loss`
/// probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Propagation-latency distribution.
    pub latency: LatencyModel,
    /// Bandwidth in bytes per second. `f64::INFINITY` disables the
    /// serialization-delay term.
    pub bandwidth_bps: f64,
    /// Probability a transfer is lost entirely.
    pub loss: f64,
}

impl Link {
    /// An ideal link: zero latency, infinite bandwidth, no loss.
    pub fn ideal() -> Self {
        Link {
            latency: LatencyModel::Constant { ms: 0.0 },
            bandwidth_bps: f64::INFINITY,
            loss: 0.0,
        }
    }

    /// A symmetric WAN-like link with a constant one-way latency and a
    /// bandwidth in megabits per second.
    ///
    /// # Panics
    ///
    /// Panics on negative arguments.
    pub fn wan(latency_ms: f64, mbps: f64) -> Self {
        assert!(latency_ms >= 0.0 && mbps > 0.0, "invalid wan parameters");
        Link {
            latency: LatencyModel::Constant { ms: latency_ms },
            bandwidth_bps: mbps * 1e6 / 8.0,
            loss: 0.0,
        }
    }

    /// Overrides the latency model (builder style).
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the loss probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss < 1.0`.
    pub fn loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.loss = loss;
        self
    }

    /// Samples the transfer outcome for a message of `bytes`:
    /// `Some(duration)` on delivery, `None` if lost.
    pub fn transfer(&self, bytes: usize, rng: &mut StdRng) -> Option<SimDuration> {
        if self.loss > 0.0 && rng.gen::<f64>() < self.loss {
            return None;
        }
        let prop = self.latency.sample(rng);
        let ser = if self.bandwidth_bps.is_finite() {
            SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
        } else {
            SimDuration::ZERO
        };
        Some(prop + ser)
    }

    /// Expected transfer duration for `bytes` (mean latency +
    /// serialization; ignores loss).
    pub fn expected_transfer(&self, bytes: usize) -> SimDuration {
        let ser = if self.bandwidth_bps.is_finite() {
            SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
        } else {
            SimDuration::ZERO
        };
        self.latency.mean() + ser
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor_seed::rng_from_seed;

    // Tiny shim so tests don't depend on stsl-tensor: a local copy of the
    // seeded-rng constructor contract.
    mod stsl_tensor_seed {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        pub fn rng_from_seed(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    #[test]
    fn constant_latency_is_exact() {
        let mut rng = rng_from_seed(0);
        let l = LatencyModel::Constant { ms: 5.0 };
        assert_eq!(l.sample(&mut rng), SimDuration::from_millis(5));
        assert_eq!(l.mean(), SimDuration::from_millis(5));
    }

    #[test]
    fn uniform_latency_respects_bounds() {
        let mut rng = rng_from_seed(1);
        let l = LatencyModel::Uniform {
            lo_ms: 2.0,
            hi_ms: 8.0,
        };
        for _ in 0..100 {
            let d = l.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(2) && d <= SimDuration::from_millis(8));
        }
        assert_eq!(l.mean(), SimDuration::from_millis(5));
    }

    #[test]
    fn normal_latency_never_negative() {
        let mut rng = rng_from_seed(2);
        let l = LatencyModel::Normal {
            mean_ms: 1.0,
            std_ms: 5.0,
        };
        for _ in 0..200 {
            let _ = l.sample(&mut rng); // from_secs_f64 would clamp anyway;
                                        // sampling must not panic
        }
    }

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let mut rng = rng_from_seed(3);
        let link = Link::ideal();
        assert_eq!(link.transfer(1 << 20, &mut rng), Some(SimDuration::ZERO));
    }

    #[test]
    fn wan_serialization_delay_scales_with_bytes() {
        let link = Link::wan(10.0, 8.0); // 8 Mbps = 1 MB/s
        let d = link.expected_transfer(1_000_000);
        // 10 ms propagation + 1 s serialization.
        assert_eq!(d.as_millis(), 1_010);
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut rng = rng_from_seed(4);
        let link = Link::ideal().loss(0.3);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| link.transfer(1, &mut rng).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {}", rate);
    }

    #[test]
    #[should_panic(expected = "loss")]
    fn loss_of_one_rejected() {
        Link::ideal().loss(1.0);
    }
}
