//! [`SimNetwork`]: topology + event queue + per-link randomness + stats.

use crate::{EndSystemId, EventQueue, LatencyStats, SimTime, StarTopology, TrafficCounter};
use rand::rngs::StdRng;
use stsl_telemetry::{JournalKind, MetricId, TelemetryHub};
use stsl_tensor::init::rng_from_seed;

/// Direction of a transfer in the star topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// End-system → centralized server (smashed activations).
    Uplink,
    /// Server → end-system (cut-layer gradients).
    Downlink,
}

/// A message delivered by the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<T> {
    /// The end-system at the non-server end of the link.
    pub end_system: EndSystemId,
    /// Transfer direction.
    pub direction: Direction,
    /// Payload size used for the serialization-delay term.
    pub bytes: usize,
    /// Time the message was handed to the network.
    pub sent_at: SimTime,
    /// The payload.
    pub payload: T,
}

/// A deterministic simulated star network carrying typed messages between
/// end-systems and the centralized server.
///
/// Drive it by calling [`SimNetwork::send`] with explicit send timestamps
/// and draining deliveries with [`SimNetwork::recv`]; deliveries come out
/// in arrival-time order with deterministic tie-breaking.
#[derive(Debug)]
pub struct SimNetwork<T> {
    topology: StarTopology,
    queue: EventQueue<Delivery<T>>,
    rngs: Vec<StdRng>,
    uplink: Vec<TrafficCounter>,
    downlink: Vec<TrafficCounter>,
    latency: Vec<LatencyStats>,
    telemetry: Option<TelemetryHub>,
}

impl<T> SimNetwork<T> {
    /// Creates a network over `topology`; per-link randomness derives from
    /// `seed`.
    pub fn new(topology: StarTopology, seed: u64) -> Self {
        let n = topology.len();
        let rngs = (0..n)
            .map(|i| rng_from_seed(seed ^ (0x5851_F42D_4C95_7F2D_u64.wrapping_mul(i as u64 + 1))))
            .collect();
        SimNetwork {
            topology,
            queue: EventQueue::new(),
            rngs,
            uplink: vec![TrafficCounter::new(); n],
            downlink: vec![TrafficCounter::new(); n],
            latency: (0..n).map(|_| LatencyStats::new()).collect(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry hub; every subsequent transfer records its
    /// delivery latency ([`MetricId::UplinkLatency`] /
    /// [`MetricId::DownlinkLatency`]) and every link-level loss is
    /// journaled as [`JournalKind::NetworkDrop`].
    pub fn attach_telemetry(&mut self, hub: TelemetryHub) {
        self.telemetry = Some(hub);
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<&TelemetryHub> {
        self.telemetry.as_ref()
    }

    /// Detaches and returns the telemetry hub (e.g. to export after a
    /// run).
    pub fn take_telemetry(&mut self) -> Option<TelemetryHub> {
        self.telemetry.take()
    }

    /// The topology the network runs over.
    pub fn topology(&self) -> &StarTopology {
        &self.topology
    }

    /// Current simulated time (timestamp of the last delivery).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Sends `payload` of `bytes` across end-system `id`'s link at
    /// simulated time `at`. Returns `true` if the message entered the
    /// network, `false` if the link dropped it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the topology.
    pub fn send(
        &mut self,
        id: EndSystemId,
        direction: Direction,
        bytes: usize,
        at: SimTime,
        payload: T,
    ) -> bool {
        let link = *self.topology.link(id);
        let rng = &mut self.rngs[id.0];
        let counter = match direction {
            Direction::Uplink => &mut self.uplink[id.0],
            Direction::Downlink => &mut self.downlink[id.0],
        };
        match link.transfer(bytes, rng) {
            None => {
                counter.record_drop();
                if let Some(hub) = &mut self.telemetry {
                    hub.journal(at.as_micros(), JournalKind::NetworkDrop, id.0 as u64);
                }
                false
            }
            Some(dur) => {
                counter.record_delivery(bytes);
                self.latency[id.0].record(dur);
                if let Some(hub) = &mut self.telemetry {
                    let metric = match direction {
                        Direction::Uplink => MetricId::UplinkLatency,
                        Direction::Downlink => MetricId::DownlinkLatency,
                    };
                    hub.record(metric, id.0 as u64, dur.as_micros());
                }
                self.queue.schedule(
                    at + dur,
                    Delivery {
                        end_system: id,
                        direction,
                        bytes,
                        sent_at: at,
                        payload,
                    },
                );
                true
            }
        }
    }

    /// Pops the next delivery in arrival order, advancing the clock.
    pub fn recv(&mut self) -> Option<(SimTime, Delivery<T>)> {
        self.queue.pop()
    }

    /// Arrival time of the next pending delivery.
    pub fn peek_arrival(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Uplink traffic counter for end-system `id`.
    pub fn uplink_traffic(&self, id: EndSystemId) -> &TrafficCounter {
        &self.uplink[id.0]
    }

    /// Downlink traffic counter for end-system `id`.
    pub fn downlink_traffic(&self, id: EndSystemId) -> &TrafficCounter {
        &self.downlink[id.0]
    }

    /// Sampled transfer-latency statistics for end-system `id`.
    pub fn latency_stats_mut(&mut self, id: EndSystemId) -> &mut LatencyStats {
        &mut self.latency[id.0]
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink
            .iter()
            .chain(&self.downlink)
            .map(|c| c.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Link;

    fn net(latency_ms: &[f64]) -> SimNetwork<&'static str> {
        let links = latency_ms.iter().map(|&ms| Link::wan(ms, 1000.0)).collect();
        SimNetwork::new(StarTopology::new(links), 0)
    }

    #[test]
    fn deliveries_arrive_in_latency_order() {
        let mut n = net(&[50.0, 5.0]);
        let t0 = SimTime::ZERO;
        n.send(EndSystemId(0), Direction::Uplink, 0, t0, "slow");
        n.send(EndSystemId(1), Direction::Uplink, 0, t0, "fast");
        let (t1, d1) = n.recv().unwrap();
        let (t2, d2) = n.recv().unwrap();
        assert_eq!(d1.payload, "fast");
        assert_eq!(d2.payload, "slow");
        assert!(t1 < t2);
        assert_eq!(t1.as_micros(), 5_000);
        assert_eq!(t2.as_micros(), 50_000);
    }

    #[test]
    fn serialization_delay_applies() {
        // 1000 Mbps = 125e6 B/s; 125_000 B take 1 ms.
        let mut n = net(&[0.0]);
        n.send(
            EndSystemId(0),
            Direction::Uplink,
            125_000,
            SimTime::ZERO,
            "x",
        );
        let (t, _) = n.recv().unwrap();
        assert_eq!(t.as_micros(), 1_000);
    }

    #[test]
    fn counters_track_traffic() {
        let mut n = net(&[1.0, 1.0]);
        n.send(EndSystemId(0), Direction::Uplink, 10, SimTime::ZERO, "a");
        n.send(EndSystemId(0), Direction::Downlink, 20, SimTime::ZERO, "b");
        assert_eq!(n.uplink_traffic(EndSystemId(0)).bytes, 10);
        assert_eq!(n.downlink_traffic(EndSystemId(0)).bytes, 20);
        assert_eq!(n.uplink_traffic(EndSystemId(1)).messages, 0);
        assert_eq!(n.total_bytes(), 30);
    }

    #[test]
    fn lossy_link_reports_drop() {
        let links = vec![Link::ideal().loss(0.999999)];
        let mut n: SimNetwork<()> = SimNetwork::new(StarTopology::new(links), 1);
        let ok = n.send(EndSystemId(0), Direction::Uplink, 1, SimTime::ZERO, ());
        assert!(!ok);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.uplink_traffic(EndSystemId(0)).dropped, 1);
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let run = || {
            let top = StarTopology::latency_gradient(3, 1.0, 50.0, 100.0);
            let mut n: SimNetwork<usize> = SimNetwork::new(top, 42);
            for i in 0..30 {
                n.send(
                    EndSystemId(i % 3),
                    Direction::Uplink,
                    1000,
                    SimTime::ZERO,
                    i,
                );
            }
            let mut order = Vec::new();
            while let Some((t, d)) = n.recv() {
                order.push((t, d.payload));
            }
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn attached_telemetry_sees_latencies_and_drops() {
        let mut n = net(&[10.0, 2.0]);
        n.attach_telemetry(TelemetryHub::new(16));
        n.send(EndSystemId(0), Direction::Uplink, 0, SimTime::ZERO, "a");
        n.send(EndSystemId(1), Direction::Downlink, 0, SimTime::ZERO, "b");
        let hub = n.telemetry().unwrap();
        let up = hub
            .registry()
            .histogram(MetricId::UplinkLatency, 0)
            .unwrap();
        assert_eq!(up.count(), 1);
        assert_eq!(up.max(), Some(10_000));
        let down = hub
            .registry()
            .histogram(MetricId::DownlinkLatency, 1)
            .unwrap();
        assert_eq!(down.max(), Some(2_000));

        let links = vec![Link::ideal().loss(0.999999)];
        let mut lossy: SimNetwork<()> = SimNetwork::new(StarTopology::new(links), 1);
        lossy.attach_telemetry(TelemetryHub::new(16));
        lossy.send(EndSystemId(0), Direction::Uplink, 1, SimTime::ZERO, ());
        let hub = lossy.take_telemetry().unwrap();
        assert_eq!(hub.journal_log().count(JournalKind::NetworkDrop), 1);
    }

    #[test]
    fn send_after_recv_uses_later_clock() {
        let mut n = net(&[10.0]);
        n.send(EndSystemId(0), Direction::Uplink, 0, SimTime::ZERO, "first");
        let (t1, _) = n.recv().unwrap();
        // Reply sent at the delivery time arrives one latency later.
        n.send(EndSystemId(0), Direction::Downlink, 0, t1, "reply");
        let (t2, d) = n.recv().unwrap();
        assert_eq!(d.direction, Direction::Downlink);
        assert_eq!(t2.as_micros(), 20_000);
    }
}
