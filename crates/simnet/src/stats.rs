//! Delivery statistics: latency histograms and throughput counters.

use crate::SimDuration;

/// An online accumulator of transfer-latency observations with quantiles.
///
/// Stores all observations (experiments here are small); quantiles are
/// exact.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples_us: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_us.push(d.as_micros());
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples_us.len()
    }

    /// Mean latency, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples_us.is_empty() {
            return None;
        }
        let sum: u128 = self.samples_us.iter().map(|&v| v as u128).sum();
        Some(SimDuration::from_micros(
            (sum / self.samples_us.len() as u128) as u64,
        ))
    }

    /// Exact quantile `q ∈ [0, 1]` (nearest-rank), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples_us.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples_us.sort_unstable();
            self.sorted = true;
        }
        let rank = ((self.samples_us.len() as f64 - 1.0) * q).round() as usize;
        Some(SimDuration::from_micros(self.samples_us[rank]))
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples_us
            .iter()
            .max()
            .map(|&v| SimDuration::from_micros(v))
    }
}

/// Byte and message counters for one direction of a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounter {
    /// Messages delivered.
    pub messages: u64,
    /// Bytes delivered.
    pub bytes: u64,
    /// Messages dropped by the link.
    pub dropped: u64,
}

impl TrafficCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        TrafficCounter::default()
    }

    /// Records a delivered message of `bytes`.
    pub fn record_delivery(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Records a dropped message.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Delivery ratio in `[0, 1]`; 1.0 when nothing was sent.
    pub fn delivery_ratio(&self) -> f64 {
        let sent = self.messages + self.dropped;
        if sent == 0 {
            1.0
        } else {
            self.messages as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_quantiles() {
        let mut s = LatencyStats::new();
        for ms in [1u64, 2, 3, 4, 5] {
            s.record(SimDuration::from_millis(ms));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean().unwrap().as_millis(), 3);
        assert_eq!(s.quantile(0.0).unwrap().as_millis(), 1);
        assert_eq!(s.quantile(0.5).unwrap().as_millis(), 3);
        assert_eq!(s.quantile(1.0).unwrap().as_millis(), 5);
        assert_eq!(s.max().unwrap().as_millis(), 5);
    }

    #[test]
    fn empty_stats_return_none() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn recording_after_quantile_resorts() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_millis(10));
        assert_eq!(s.quantile(1.0).unwrap().as_millis(), 10);
        s.record(SimDuration::from_millis(1));
        assert_eq!(s.quantile(0.0).unwrap().as_millis(), 1);
    }

    #[test]
    fn traffic_counter_ratios() {
        let mut c = TrafficCounter::new();
        assert_eq!(c.delivery_ratio(), 1.0);
        c.record_delivery(100);
        c.record_delivery(50);
        c.record_drop();
        assert_eq!(c.messages, 2);
        assert_eq!(c.bytes, 150);
        assert!((c.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
