//! Delivery statistics: latency histograms and throughput counters.

use crate::SimDuration;

/// Upper bound on retained quantile samples. Below this every
/// observation is kept and quantiles are exact; beyond it the reservoir
/// decimates deterministically (see [`LatencyStats::record`]) so a
/// 100k-client fleet run holds a bounded sample set per stats instance
/// instead of one row per delivery.
const SAMPLE_CAP: usize = 65_536;

/// An online accumulator of transfer-latency observations with quantiles.
///
/// `count`, `mean`, and `max` are exact over every observation (integer
/// running aggregates). Quantiles are exact up to a fixed sample cap,
/// then computed over a deterministic systematic subsample: when the
/// reservoir fills, every other retained sample is dropped and the
/// keep-stride doubles, so memory stays O(1) in the observation count
/// and two identical runs retain identical samples.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples_us: Vec<u64>,
    sorted: bool,
    /// Total observations ever recorded (not just retained).
    total: u64,
    /// Exact running sum of all observations, for the mean.
    sum_us: u128,
    /// Exact running maximum of all observations.
    max_us: u64,
    /// Keep one sample per `stride` observations; powers of two.
    stride: u64,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            stride: 1,
            ..LatencyStats::default()
        }
    }

    /// Records one observation.
    pub fn record(&mut self, d: SimDuration) {
        let v = d.as_micros();
        if self.total.is_multiple_of(self.stride.max(1)) {
            self.samples_us.push(v);
            self.sorted = false;
            if self.samples_us.len() >= SAMPLE_CAP {
                // Halve the reservoir and double the stride. Which
                // elements survive depends only on the record sequence,
                // so the subsample is reproducible across runs.
                let mut keep_odd = false;
                self.samples_us.retain(|_| {
                    keep_odd = !keep_odd;
                    keep_odd
                });
                self.stride = self.stride.max(1) * 2;
            }
        }
        self.total += 1;
        self.sum_us += v as u128;
        self.max_us = self.max_us.max(v);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> usize {
        self.total as usize
    }

    /// Number of samples currently retained for quantile estimation
    /// (equals [`Self::count`] until the decimation cap is reached).
    pub fn retained(&self) -> usize {
        self.samples_us.len()
    }

    /// Mean latency (exact over all observations), or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        Some(SimDuration::from_micros(
            (self.sum_us / self.total as u128) as u64,
        ))
    }

    /// Quantile `q ∈ [0, 1]` (nearest-rank), or `None` if empty. Exact
    /// while all observations are retained; a systematic-subsample
    /// estimate past the cap.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples_us.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples_us.sort_unstable();
            self.sorted = true;
        }
        let rank = ((self.samples_us.len() as f64 - 1.0) * q).round() as usize;
        Some(SimDuration::from_micros(self.samples_us[rank]))
    }

    /// Maximum observation (exact over all observations), or `None` if
    /// empty.
    pub fn max(&self) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        Some(SimDuration::from_micros(self.max_us))
    }
}

/// Byte and message counters for one direction of a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounter {
    /// Messages delivered.
    pub messages: u64,
    /// Bytes delivered.
    pub bytes: u64,
    /// Messages dropped by the link.
    pub dropped: u64,
}

impl TrafficCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        TrafficCounter::default()
    }

    /// Records a delivered message of `bytes`.
    pub fn record_delivery(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Records a dropped message.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Delivery ratio in `[0, 1]`; 1.0 when nothing was sent.
    pub fn delivery_ratio(&self) -> f64 {
        let sent = self.messages + self.dropped;
        if sent == 0 {
            1.0
        } else {
            self.messages as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_quantiles() {
        let mut s = LatencyStats::new();
        for ms in [1u64, 2, 3, 4, 5] {
            s.record(SimDuration::from_millis(ms));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.retained(), 5);
        assert_eq!(s.mean().unwrap().as_millis(), 3);
        assert_eq!(s.quantile(0.0).unwrap().as_millis(), 1);
        assert_eq!(s.quantile(0.5).unwrap().as_millis(), 3);
        assert_eq!(s.quantile(1.0).unwrap().as_millis(), 5);
        assert_eq!(s.max().unwrap().as_millis(), 5);
    }

    #[test]
    fn empty_stats_return_none() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn recording_after_quantile_resorts() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_millis(10));
        assert_eq!(s.quantile(1.0).unwrap().as_millis(), 10);
        s.record(SimDuration::from_millis(1));
        assert_eq!(s.quantile(0.0).unwrap().as_millis(), 1);
    }

    #[test]
    fn decimation_bounds_memory_and_keeps_aggregates_exact() {
        let mut s = LatencyStats::new();
        let n: u64 = 200_000;
        for i in 0..n {
            s.record(SimDuration::from_micros(i + 1));
        }
        assert_eq!(s.count(), n as usize);
        assert!(s.retained() < SAMPLE_CAP, "reservoir must stay bounded");
        // Exact aggregates survive decimation.
        assert_eq!(s.mean().unwrap().as_micros(), n.div_ceil(2));
        assert_eq!(s.max().unwrap().as_micros(), n);
        // The subsampled median of a uniform ramp stays near the middle.
        let med = s.quantile(0.5).unwrap().as_micros();
        assert!(
            med.abs_diff(n / 2) < n / 50,
            "median {med} too far from {}",
            n / 2
        );
    }

    #[test]
    fn decimation_is_deterministic() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        for i in 0..150_000u64 {
            let v = SimDuration::from_micros((i * 31) % 9973);
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.retained(), b.retained());
        assert_eq!(a.quantile(0.9), b.quantile(0.9));
    }

    #[test]
    fn traffic_counter_ratios() {
        let mut c = TrafficCounter::new();
        assert_eq!(c.delivery_ratio(), 1.0);
        c.record_delivery(100);
        c.record_delivery(50);
        c.record_drop();
        assert_eq!(c.messages, 2);
        assert_eq!(c.bytes, 150);
        assert!((c.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
