//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
///
/// A newtype (never a bare `u64`) so wall-clock instants, durations and
/// byte counts cannot be confused.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds (rounded to microseconds,
    /// saturating at zero for negative input).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncated).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100) + SimDuration::from_micros(50);
        assert_eq!(t.as_micros(), 150);
        assert_eq!((t - SimTime::from_micros(100)).as_micros(), 50);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(30);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_micros(500).to_string(), "500µs");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.50ms");
        assert_eq!(SimDuration::from_micros(1_500_000).to_string(), "1.500s");
    }
}
