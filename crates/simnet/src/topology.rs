//! Geo-distributed star topologies (end-systems around one server).

use crate::{LatencyModel, Link};
use serde::{Deserialize, Serialize};

/// A point on the globe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if latitude or longitude is out of range.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude {} out of range",
            lat
        );
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {} out of range",
            lon
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        const R: f64 = 6371.0;
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().atan2((1.0 - a).sqrt())
    }

    /// One-way propagation latency to `other` in milliseconds, assuming
    /// light in fibre (≈ 200 000 km/s) over a route 1.5× the great-circle
    /// distance — the standard WAN rule of thumb.
    pub fn propagation_ms(&self, other: &GeoPoint) -> f64 {
        const FIBRE_KM_PER_MS: f64 = 200.0;
        const ROUTE_STRETCH: f64 = 1.5;
        self.distance_km(other) * ROUTE_STRETCH / FIBRE_KM_PER_MS
    }
}

/// Identifier of an end-system in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndSystemId(pub usize);

impl std::fmt::Display for EndSystemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "es{}", self.0)
    }
}

/// A star topology: `n` end-systems, one centralized server, one
/// (symmetric) link each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StarTopology {
    links: Vec<Link>,
    labels: Vec<String>,
}

impl StarTopology {
    /// Creates a topology from per-end-system uplinks.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub fn new(links: Vec<Link>) -> Self {
        assert!(!links.is_empty(), "topology needs at least one end-system");
        let labels = (0..links.len()).map(|i| format!("es{}", i)).collect();
        StarTopology { links, labels }
    }

    /// A homogeneous topology: every end-system gets the same link.
    pub fn uniform(n: usize, link: Link) -> Self {
        StarTopology::new(vec![link; n.max(1)])
    }

    /// Builds a topology from geographic sites: propagation latency is
    /// derived from great-circle distance to the server; all links share
    /// `mbps` bandwidth. Labels are taken from the site names.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty or `mbps <= 0`.
    pub fn from_geo(server: GeoPoint, sites: &[(String, GeoPoint)], mbps: f64) -> Self {
        assert!(!sites.is_empty(), "topology needs at least one end-system");
        assert!(mbps > 0.0, "bandwidth must be positive");
        let links = sites
            .iter()
            .map(|(_, p)| Link::wan(server.propagation_ms(p), mbps))
            .collect();
        let labels = sites.iter().map(|(name, _)| name.clone()).collect();
        StarTopology { links, labels }
    }

    /// Number of end-systems.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the topology has no end-systems (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The uplink/downlink of end-system `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: EndSystemId) -> &Link {
        &self.links[id.0]
    }

    /// Human-readable label of end-system `id`.
    pub fn label(&self, id: EndSystemId) -> &str {
        &self.labels[id.0]
    }

    /// Iterates end-system ids.
    pub fn ids(&self) -> impl Iterator<Item = EndSystemId> {
        (0..self.links.len()).map(EndSystemId)
    }

    /// The spread between the fastest and slowest mean link latencies —
    /// the "spatial separation" the paper's queueing discussion is about.
    pub fn latency_spread(&self) -> crate::SimDuration {
        let means: Vec<_> = self.links.iter().map(|l| l.latency.mean()).collect();
        let max = means.iter().max().copied().unwrap_or_default();
        let min = means.iter().min().copied().unwrap_or_default();
        crate::SimDuration::from_micros(max.as_micros() - min.as_micros())
    }

    /// A heterogeneous benchmark topology: latencies spread linearly from
    /// `lo_ms` to `hi_ms` across end-systems with ±10 % jitter.
    pub fn latency_gradient(n: usize, lo_ms: f64, hi_ms: f64, mbps: f64) -> Self {
        assert!(n > 0, "topology needs at least one end-system");
        assert!(0.0 <= lo_ms && lo_ms <= hi_ms, "invalid latency range");
        let links = (0..n)
            .map(|i| {
                let frac = if n == 1 {
                    0.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                let mean = lo_ms + frac * (hi_ms - lo_ms);
                Link::wan(mean, mbps).latency(LatencyModel::Normal {
                    mean_ms: mean,
                    std_ms: mean * 0.1,
                })
            })
            .collect();
        StarTopology::new(links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        let seoul = GeoPoint::new(37.57, 126.98);
        let tokyo = GeoPoint::new(35.68, 139.69);
        let d = seoul.distance_km(&tokyo);
        assert!((d - 1160.0).abs() < 30.0, "seoul-tokyo {} km", d);
        assert!(seoul.distance_km(&seoul) < 1e-9);
    }

    #[test]
    fn propagation_latency_scales_with_distance() {
        let a = GeoPoint::new(0.0, 0.0);
        let near = GeoPoint::new(1.0, 0.0);
        let far = GeoPoint::new(40.0, 0.0);
        assert!(a.propagation_ms(&far) > 10.0 * a.propagation_ms(&near));
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn geo_point_validates() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn uniform_topology() {
        let t = StarTopology::uniform(4, Link::wan(5.0, 100.0));
        assert_eq!(t.len(), 4);
        assert_eq!(t.latency_spread(), crate::SimDuration::ZERO);
        assert_eq!(t.label(EndSystemId(2)), "es2");
    }

    #[test]
    fn geo_topology_orders_latencies_by_distance() {
        let server = GeoPoint::new(37.57, 126.98); // Seoul
        let sites = vec![
            ("busan".to_string(), GeoPoint::new(35.18, 129.08)),
            ("frankfurt".to_string(), GeoPoint::new(50.11, 8.68)),
        ];
        let t = StarTopology::from_geo(server, &sites, 100.0);
        let busan = t.link(EndSystemId(0)).latency.mean();
        let frankfurt = t.link(EndSystemId(1)).latency.mean();
        assert!(frankfurt > busan);
        assert_eq!(t.label(EndSystemId(1)), "frankfurt");
    }

    #[test]
    fn latency_gradient_spans_range() {
        let t = StarTopology::latency_gradient(5, 1.0, 101.0, 50.0);
        assert_eq!(t.len(), 5);
        let spread = t.latency_spread();
        assert!(
            (spread.as_millis() as i64 - 100).abs() <= 1,
            "spread {}",
            spread
        );
    }

    #[test]
    fn ids_iterate_all_end_systems() {
        let t = StarTopology::uniform(3, Link::ideal());
        let ids: Vec<_> = t.ids().collect();
        assert_eq!(ids, vec![EndSystemId(0), EndSystemId(1), EndSystemId(2)]);
    }
}
