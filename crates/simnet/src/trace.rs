//! Event tracing: a bounded, queryable log of simulation events.
//!
//! Experiments attach a `TraceLog` to record what happened when (arrivals,
//! services, drops) and later slice it by time window or end-system —
//! useful for plotting queue dynamics without re-running the simulation.

use crate::{EndSystemId, SimTime};

/// The kinds of events worth tracing in a split-learning simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Activations arrived at the server.
    Arrival,
    /// The server began processing a batch.
    ServiceStart,
    /// A gradient was delivered back to an end-system.
    GradientDelivered,
    /// The scheduler discarded a stale batch.
    SchedulerDrop,
    /// The network lost a message.
    NetworkDrop,
    /// A lost message was retransmitted after a backoff.
    Retransmit,
    /// A message exhausted its retry budget and its batch was abandoned.
    RetryExhausted,
    /// An end-system crashed.
    ClientCrash,
    /// A crashed end-system recovered and rejoined.
    ClientRecover,
    /// Training state was checkpointed.
    CheckpointSave,
    /// An end-system was restored from a checkpoint.
    CheckpointRestore,
    /// A fault garbled an in-flight payload.
    PayloadCorrupted,
    /// The integrity guard rejected a frame (checksum/structure failure).
    CorruptRejected,
    /// Ingress validation rejected a non-finite or norm-exploding update.
    AnomalyRejected,
    /// An end-system was quarantined after repeated anomalies.
    Quarantine,
    /// A quarantined end-system finished probation and rejoined.
    QuarantineRelease,
    /// An update from a quarantined end-system was dropped.
    QuarantineDrop,
    /// The health watchdog rolled training back to an earlier checkpoint.
    Rollback,
    /// A telemetry snapshot was emitted.
    SnapshotEmit,
    /// The telemetry journal evicted its oldest event to make room.
    JournalDrop,
    /// A new end-system joined the fleet mid-training.
    ClientJoin,
    /// An end-system departed the fleet.
    ClientLeave,
    /// A departed end-system rejoined and resynced from its last acked
    /// batch.
    ClientRejoin,
    /// The bounded ingress queue shed a batch under overload.
    IngressShed,
    /// A per-link circuit breaker tripped open after repeated delivery
    /// failures.
    BreakerTrip,
    /// A round deadline fired and the partial quorum was applied.
    DeadlinePartialApply,
    /// An adversarial persona poisoned an outgoing update.
    AttackInjected,
    /// The robust aggregator combined a full window of updates.
    RobustApply,
    /// The robust aggregator flagged a sender as a statistical outlier.
    RobustOutlier,
    /// A cohort model replica completed one real training step on behalf
    /// of its sharded end-systems (fleet path).
    CohortStep,
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Which end-system it concerned.
    pub end_system: EndSystemId,
}

/// An append-only, optionally bounded event log.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl TraceLog {
    /// Creates an unbounded log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Creates a log that keeps only the first `capacity` events (and
    /// counts the rest).
    pub fn with_capacity_limit(capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Appends an event.
    pub fn record(&mut self, at: SimTime, kind: TraceKind, end_system: EndSystemId) {
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(TraceEvent {
            at,
            kind,
            end_system,
        });
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events silently dropped because of the capacity limit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of events of `kind`.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Count of events of `kind` for one end-system.
    pub fn count_for(&self, kind: TraceKind, end_system: EndSystemId) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == kind && e.end_system == end_system)
            .count()
    }

    /// Events with `from <= at < to`, in recording order.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<TraceEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.at >= from && e.at < to)
            .collect()
    }

    /// Renders the log as CSV (`time_us,kind,end_system`) for external
    /// plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_us,kind,end_system\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{:?},{}\n",
                e.at.as_micros(),
                e.kind,
                e.end_system.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_and_counts() {
        let mut log = TraceLog::new();
        log.record(t(1), TraceKind::Arrival, EndSystemId(0));
        log.record(t(2), TraceKind::Arrival, EndSystemId(1));
        log.record(t(3), TraceKind::ServiceStart, EndSystemId(0));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(TraceKind::Arrival), 2);
        assert_eq!(log.count_for(TraceKind::Arrival, EndSystemId(0)), 1);
        assert_eq!(log.count(TraceKind::NetworkDrop), 0);
    }

    #[test]
    fn window_is_half_open() {
        let mut log = TraceLog::new();
        for ms in [1u64, 5, 10, 15] {
            log.record(t(ms), TraceKind::Arrival, EndSystemId(0));
        }
        let w = log.window(t(5), t(15));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].at, t(5));
        assert_eq!(w[1].at, t(10));
    }

    #[test]
    fn capacity_limit_counts_overflow() {
        let mut log = TraceLog::with_capacity_limit(2);
        for ms in 0..5u64 {
            log.record(t(ms), TraceKind::Arrival, EndSystemId(0));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut log = TraceLog::new();
        log.record(t(2), TraceKind::SchedulerDrop, EndSystemId(3));
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "time_us,kind,end_system");
        assert_eq!(lines[1], "2000,SchedulerDrop,3");
    }
}
