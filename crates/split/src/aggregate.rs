//! Byzantine-robust gradient aggregation.
//!
//! The data-plane guard (PR 3) rejects *random* corruption: non-finite
//! values and norm explosions. A CRC-valid, finite, plausible-RMS but
//! adversarially *crafted* update sails straight through it into the
//! optimizer. This module closes that gap with statistical defenses at
//! the aggregation point — the only place where updates from many
//! end-systems meet and an individual liar becomes an outlier.
//!
//! The seam is an [`AggregationPolicy`] applied to a window of flattened
//! server-side gradients *before* the optimizer step:
//!
//! * [`AggregationPolicy::Mean`] — the undefended baseline; a single
//!   attacker shifts it arbitrarily.
//! * [`AggregationPolicy::CoordinateMedian`] — coordinate-wise median,
//!   tolerant of up to ⌈n/2⌉−1 arbitrary updates per coordinate.
//! * [`AggregationPolicy::TrimmedMean`] — drops the `trim` fraction from
//!   each end of every coordinate's sorted column, then averages.
//! * [`AggregationPolicy::NormClippedMean`] — rescales every update whose
//!   L2 norm exceeds the window's median norm down to that median, then
//!   averages (defeats scaling/boosting attacks while keeping honest
//!   directions intact).
//! * [`AggregationPolicy::Krum`] — a windowed Multi-Krum selector: score
//!   every update by the sum of squared distances to its `n − f − 2`
//!   nearest neighbours, keep the `n − f − 2` best-scored updates and
//!   average them (Blanchard et al., adapted to the async arrival
//!   buffer). Unlike the coordinate-wise policies it filters on *whole
//!   vectors*, so an attacker moderate on every coordinate but wrong as
//!   a direction is still excluded.
//!
//! Every policy combines each coordinate's column in a canonical sorted
//! order ([`f32::total_cmp`]), so aggregation is **bitwise invariant
//! under permutation** of the window — the property the proptests pin
//! and the reason results stay byte-identical across `STSL_THREADS`.

use serde::{Deserialize, Serialize};

/// How a full window of per-batch gradients is combined into the single
/// gradient the optimizer consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregationPolicy {
    /// Plain coordinate-wise mean — the undefended baseline.
    Mean,
    /// Coordinate-wise median.
    CoordinateMedian,
    /// Coordinate-wise trimmed mean: drop the `trim` fraction of values
    /// from each end of every sorted column, average the rest.
    TrimmedMean {
        /// Fraction (of the window) trimmed from *each* side, in
        /// `[0, 0.5)`. At `0.0` this is exactly [`AggregationPolicy::Mean`].
        trim: f32,
    },
    /// Mean after rescaling every update whose L2 norm exceeds the
    /// window's median norm down to that median.
    NormClippedMean,
    /// Windowed Multi-Krum: average the `n − f − 2` updates with the best
    /// Krum scores, assuming at most `assumed_attackers` Byzantine
    /// members in any window.
    Krum {
        /// The `f` in Krum's `n − f − 2` neighbour and selection counts.
        assumed_attackers: usize,
    },
}

impl AggregationPolicy {
    /// Stable short name used in bench output and logs.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationPolicy::Mean => "mean",
            AggregationPolicy::CoordinateMedian => "median",
            AggregationPolicy::TrimmedMean { .. } => "trimmed_mean",
            AggregationPolicy::NormClippedMean => "norm_clipped",
            AggregationPolicy::Krum { .. } => "krum",
        }
    }
}

/// Result of combining one full window.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationOutcome {
    /// The combined gradient, same length as every input update.
    pub combined: Vec<f32>,
    /// Number of updates in the window.
    pub contributors: usize,
    /// Update-slots excluded from the combine (policy-defined: values
    /// dropped per coordinate for median/trimmed mean, rescaled updates
    /// for norm clipping, non-selected updates for Krum).
    pub trimmed: usize,
    /// `trimmed / contributors` in permille — the per-policy trim
    /// fraction exported as a telemetry metric.
    pub trim_fraction_permille: u64,
}

/// Why a window cannot be combined. Surfaced as a typed error (instead
/// of a panic) because the window is assembled from end-system traffic:
/// a malformed cohort must not abort the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregateError {
    /// The window holds no updates.
    EmptyWindow,
    /// Updates disagree on gradient length.
    RaggedWindow {
        /// Length of the first update.
        expected: usize,
        /// The disagreeing length.
        got: usize,
    },
    /// A trimmed-mean fraction outside `[0, 0.5)`.
    BadTrim {
        /// The offending fraction.
        trim: f32,
    },
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateError::EmptyWindow => write!(f, "cannot combine an empty window"),
            AggregateError::RaggedWindow { expected, got } => {
                write!(
                    f,
                    "updates disagree on gradient length: {expected} vs {got}"
                )
            }
            AggregateError::BadTrim { trim } => {
                write!(f, "trim fraction must be in [0, 0.5), got {trim}")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

fn column_sorted(updates: &[Vec<f32>], coord: usize) -> Vec<f32> {
    let mut col: Vec<f32> = updates
        .iter()
        .filter_map(|u| u.get(coord))
        .copied()
        .collect();
    col.sort_by(f32::total_cmp);
    col
}

fn mean_of(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

fn median_of_sorted(sorted: &[f32]) -> f32 {
    let n = sorted.len();
    let Some(&mid) = sorted.get(n / 2) else {
        return 0.0;
    };
    if n % 2 == 1 {
        mid
    } else {
        // Even and non-empty, so n / 2 ≥ 1.
        let lo = sorted.get(n / 2 - 1).copied().unwrap_or(mid);
        (lo + mid) * 0.5
    }
}

fn l2_norm(v: &[f32]) -> f32 {
    v.iter()
        .map(|x| (*x as f64) * (*x as f64))
        .sum::<f64>()
        .sqrt() as f32
}

fn sq_distance(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x as f64) - (*y as f64);
            d * d
        })
        .sum()
}

fn lex_cmp(a: &[f32], b: &[f32]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let o = x.total_cmp(y);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

/// Combines a window of equal-length updates under `policy`.
///
/// Bitwise invariant under permutation of `updates` (each coordinate's
/// column is sorted into a canonical order before reduction; Krum breaks
/// score ties by lexicographic vector order).
///
/// # Errors
///
/// Rejects an empty window, updates that disagree on length, and a
/// trimmed-mean fraction outside `[0, 0.5)` — the window is built from
/// end-system traffic, so malformed cohorts surface as values, not
/// aborts.
pub fn combine(
    policy: AggregationPolicy,
    updates: &[Vec<f32>],
) -> Result<AggregationOutcome, AggregateError> {
    let n = updates.len();
    let Some(first) = updates.first() else {
        return Err(AggregateError::EmptyWindow);
    };
    let dim = first.len();
    if let Some(bad) = updates.iter().find(|u| u.len() != dim) {
        return Err(AggregateError::RaggedWindow {
            expected: dim,
            got: bad.len(),
        });
    }
    let (combined, trimmed) = match policy {
        AggregationPolicy::Mean => {
            let c = (0..dim)
                .map(|j| mean_of(&column_sorted(updates, j)))
                .collect();
            (c, 0)
        }
        AggregationPolicy::CoordinateMedian => {
            let c = (0..dim)
                .map(|j| median_of_sorted(&column_sorted(updates, j)))
                .collect();
            let kept = if n % 2 == 1 { 1 } else { 2.min(n) };
            (c, n - kept)
        }
        AggregationPolicy::TrimmedMean { trim } => {
            if !(0.0..0.5).contains(&trim) {
                return Err(AggregateError::BadTrim { trim });
            }
            let k = ((trim * n as f32).floor() as usize).min(n.saturating_sub(1) / 2);
            let c = (0..dim)
                .map(|j| {
                    let col = column_sorted(updates, j);
                    mean_of(col.get(k..n - k).unwrap_or(&[]))
                })
                .collect();
            (c, 2 * k)
        }
        AggregationPolicy::NormClippedMean => {
            let mut norms: Vec<f32> = updates.iter().map(|u| l2_norm(u)).collect();
            norms.sort_by(f32::total_cmp);
            let clip = median_of_sorted(&norms);
            let mut clipped = 0usize;
            let scaled: Vec<Vec<f32>> = updates
                .iter()
                .map(|u| {
                    let norm = l2_norm(u);
                    if norm > clip && norm > 0.0 {
                        clipped += 1;
                        let s = clip / norm;
                        u.iter().map(|x| x * s).collect()
                    } else {
                        u.clone()
                    }
                })
                .collect();
            let c = (0..dim)
                .map(|j| mean_of(&column_sorted(&scaled, j)))
                .collect();
            (c, clipped)
        }
        AggregationPolicy::Krum { assumed_attackers } => {
            // Multi-Krum: score each update by the sum of squared
            // distances to its n − f − 2 nearest neighbours, keep the
            // n − f − 2 best-scored updates and average them. Score ties
            // break by lexicographic vector order so selection is
            // permutation invariant.
            let neighbours = n
                .saturating_sub(assumed_attackers + 2)
                .max(1)
                .min(n.saturating_sub(1));
            let selection = n.saturating_sub(assumed_attackers + 2).max(1);
            let mut scored: Vec<(f64, &Vec<f32>)> = updates
                .iter()
                .enumerate()
                .map(|(i, ui)| {
                    let mut dists: Vec<f64> = updates
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, uj)| sq_distance(ui, uj))
                        .collect();
                    dists.sort_by(|a, b| a.total_cmp(b));
                    (dists.iter().take(neighbours).sum(), ui)
                })
                .collect();
            scored.sort_by(|(sa, ua), (sb, ub)| sa.total_cmp(sb).then_with(|| lex_cmp(ua, ub)));
            let selected: Vec<Vec<f32>> = scored
                .iter()
                .take(selection)
                .map(|(_, u)| (*u).clone())
                .collect();
            let c = (0..dim)
                .map(|j| mean_of(&column_sorted(&selected, j)))
                .collect();
            (c, n - selection)
        }
    };
    Ok(AggregationOutcome {
        combined,
        contributors: n,
        trimmed,
        trim_fraction_permille: (trimmed as u64 * 1000) / n as u64,
    })
}

/// Flags updates whose L2 distance from `combined` exceeds `factor`
/// times the window's median distance — the statistical-outlier signal
/// fed into the quarantine tracker.
///
/// With a zero median (all honest updates identical), any nonzero
/// deviation is flagged. Returns one flag per update, in input order.
pub fn outlier_flags(updates: &[Vec<f32>], combined: &[f32], factor: f32) -> Vec<bool> {
    let dists: Vec<f64> = updates
        .iter()
        .map(|u| sq_distance(u, combined).sqrt())
        .collect();
    let mut sorted: Vec<f32> = dists.iter().map(|d| *d as f32).collect();
    sorted.sort_by(f32::total_cmp);
    let median = median_of_sorted(&sorted) as f64;
    let threshold = factor as f64 * median;
    dists.iter().map(|d| *d > threshold && *d > 0.0).collect()
}

/// One applied window, as reported to the trainer: which senders were
/// flagged, plus the bookkeeping for counters and metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustApply {
    /// The combined gradient written into the model before the step.
    pub combined: Vec<f32>,
    /// Senders (end-system indices) flagged as statistical outliers,
    /// deduplicated, in ascending order.
    pub outliers: Vec<usize>,
    /// Senders whose every update in this window survived statistical
    /// scrutiny, deduplicated, in ascending order — disjoint from
    /// `outliers`. With the integrity guard on these earn the quarantine
    /// clean-credit: under robust aggregation "clean" means *vetted
    /// against the window*, not merely parsed, so a persistent attacker's
    /// anomaly score accrues instead of being decayed away by its own
    /// ingress traffic.
    pub cleared: Vec<usize>,
    /// Updates in the window.
    pub contributors: usize,
    /// Update-slots excluded from the combine (see
    /// [`AggregationOutcome::trimmed`]).
    pub trimmed: usize,
    /// Trim fraction in permille.
    pub trim_fraction_permille: u64,
}

/// Windowed robust aggregator owned by the server: buffers flattened
/// per-batch gradients with their senders and combines a full window in
/// arrival order.
#[derive(Debug, Clone)]
pub struct RobustAggregator {
    policy: AggregationPolicy,
    window: usize,
    outlier_factor: f32,
    refine: bool,
    buffer: Vec<(usize, Vec<f32>)>,
}

impl RobustAggregator {
    /// Creates an aggregator combining every `window` buffered updates.
    /// A zero `window` is clamped to 1 (combine on every update); window
    /// size can originate in run configuration, so it is sanitized, not
    /// asserted.
    pub fn new(policy: AggregationPolicy, window: usize) -> Self {
        let window = window.max(1);
        RobustAggregator {
            policy,
            window,
            outlier_factor: 3.0,
            refine: false,
            buffer: Vec::new(),
        }
    }

    /// Overrides the outlier-flagging factor (default 3× the median
    /// distance from the combined gradient). Non-finite or non-positive
    /// factors are ignored, keeping the previous value.
    pub fn outlier_factor(mut self, factor: f32) -> Self {
        if factor.is_finite() && factor > 0.0 {
            self.outlier_factor = factor;
        }
        self
    }

    /// Enables the two-pass refine (off by default): after flagging
    /// outliers against the first-pass combined gradient, the flagged
    /// updates are removed outright and the survivors recombined. Sound
    /// only when the first pass is itself robust — refining against a
    /// poison-dragged plain mean can exclude the *honest* cluster — so
    /// the trainer turns it on as part of the guarded defense stack, and
    /// [`RobustAggregator::push`] skips it for Krum, whose combine
    /// already excludes by selection.
    pub fn refine_outliers(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// The configured policy.
    pub fn policy(&self) -> AggregationPolicy {
        self.policy
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Resizes the window (e.g. to track the non-quarantined cohort so
    /// exiling an attacker does not slow the optimizer cadence: a window
    /// waiting on updates that can never arrive starves the model).
    /// Takes effect on the next [`RobustAggregator::push`]; a buffer
    /// already at or past a shrunken window fires on that push. A zero
    /// `window` is clamped to 1.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Currently buffered (not yet combined) updates.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Buffers one flattened gradient from `sender`. When the buffer
    /// reaches the window size it is drained, combined under the policy,
    /// and returned with outlier flags resolved to senders.
    pub fn push(&mut self, sender: usize, flat: Vec<f32>) -> Option<RobustApply> {
        self.buffer.push((sender, flat));
        if self.buffer.len() < self.window {
            return None;
        }
        let window: Vec<(usize, Vec<f32>)> = std::mem::take(&mut self.buffer);
        let updates: Vec<Vec<f32>> = window.iter().map(|(_, u)| u.clone()).collect();
        // A window that cannot be combined (ragged lengths slipped past
        // upstream validation, or an unusable trim fraction) is dropped
        // whole rather than aborting the server; the next window starts
        // from an empty buffer.
        let Ok(mut outcome) = combine(self.policy, &updates) else {
            return None;
        };
        let flags = outlier_flags(&updates, &outcome.combined, self.outlier_factor);
        // Two-pass refine (when enabled): the first combine bounds the
        // damage any single update can do, which makes it a sound
        // reference point for flagging — and once flagged, the outliers
        // are removed outright and the survivors recombined. This
        // matters most in the first windows of an attack, before
        // quarantine escalation has exiled the senders: the policy alone
        // only *attenuates* a poisoned coordinate that lands mid-range,
        // the refine pass deletes it. Krum is exempt — its combine
        // already excludes by selection, and rerunning it on the kept
        // set with the same pessimistic attacker count would shrink the
        // selection toward a single update.
        let refinable = self.refine && !matches!(self.policy, AggregationPolicy::Krum { .. });
        if refinable && flags.iter().any(|&f| f) {
            let kept: Vec<Vec<f32>> = updates
                .iter()
                .zip(&flags)
                .filter(|(_, &f)| !f)
                .map(|(u, _)| u.clone())
                .collect();
            if let Ok(refined) = combine(self.policy, &kept) {
                let excluded = updates.len() - kept.len();
                outcome = AggregationOutcome {
                    combined: refined.combined,
                    contributors: updates.len(),
                    trimmed: refined.trimmed + excluded,
                    trim_fraction_permille: ((refined.trimmed + excluded) as u64 * 1000)
                        / updates.len() as u64,
                };
            }
        }
        let mut outliers: Vec<usize> = window
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f)
            .map(|((s, _), _)| *s)
            .collect();
        outliers.sort_unstable();
        outliers.dedup();
        let mut cleared: Vec<usize> = window
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| !f)
            .map(|((s, _), _)| *s)
            .collect();
        cleared.sort_unstable();
        cleared.dedup();
        // A sender with mixed verdicts in one window (several buffered
        // updates, some flagged) is an outlier, not cleared.
        cleared.retain(|s| !outliers.contains(s));
        Some(RobustApply {
            combined: outcome.combined,
            outliers,
            cleared,
            contributors: outcome.contributors,
            trimmed: outcome.trimmed,
            trim_fraction_permille: outcome.trim_fraction_permille,
        })
    }

    /// Discards buffered updates (the watchdog clears the window on
    /// rollback so pre-rollback gradients never mix into post-rollback
    /// steps).
    pub fn clear(&mut self) {
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(rows: &[&[f32]]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn mean_matches_arithmetic_mean() {
        let u = w(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let out = combine(AggregationPolicy::Mean, &u).unwrap();
        assert_eq!(out.combined, vec![3.0, 4.0]);
        assert_eq!(out.trimmed, 0);
        assert_eq!(out.trim_fraction_permille, 0);
    }

    #[test]
    fn median_ignores_one_wild_update() {
        let u = w(&[&[1.0], &[2.0], &[1000.0]]);
        let out = combine(AggregationPolicy::CoordinateMedian, &u).unwrap();
        assert_eq!(out.combined, vec![2.0]);
        assert_eq!(out.trimmed, 2);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let u = w(&[&[0.0], &[1.0], &[2.0], &[3.0], &[1000.0]]);
        let out = combine(AggregationPolicy::TrimmedMean { trim: 0.2 }, &u).unwrap();
        assert_eq!(out.combined, vec![2.0]);
        assert_eq!(out.trimmed, 2);
        assert_eq!(out.trim_fraction_permille, 400);
    }

    #[test]
    fn trim_zero_is_exactly_mean() {
        let u = w(&[&[1.5, -2.0], &[0.25, 8.0], &[-3.75, 1.0]]);
        let a = combine(AggregationPolicy::TrimmedMean { trim: 0.0 }, &u).unwrap();
        let b = combine(AggregationPolicy::Mean, &u).unwrap();
        assert_eq!(a.combined, b.combined);
    }

    #[test]
    fn norm_clipping_caps_a_boosted_update() {
        let u = w(&[&[1.0, 0.0], &[0.0, 1.0], &[100.0, 0.0]]);
        let out = combine(AggregationPolicy::NormClippedMean, &u).unwrap();
        assert_eq!(out.trimmed, 1);
        // The boosted update is rescaled to norm 1, so no coordinate of
        // the mean can exceed (1 + 0 + 1)/3.
        assert!(out.combined.iter().all(|c| c.abs() <= 1.0));
    }

    #[test]
    fn krum_averages_cluster_members_and_excludes_the_attacker() {
        let honest = [
            &[1.0f32, 1.0] as &[f32],
            &[1.1, 0.9],
            &[0.9, 1.1],
            &[1.0, 0.95],
        ];
        let mut rows: Vec<&[f32]> = honest.to_vec();
        rows.push(&[-50.0, 40.0]);
        let u = w(&rows);
        let out = combine(
            AggregationPolicy::Krum {
                assumed_attackers: 1,
            },
            &u,
        )
        .unwrap();
        // n = 5, f = 1 → the 2 best-scored updates are averaged; the
        // attacker is far from every cluster member, so the combined
        // gradient stays inside the honest coordinate-wise range.
        assert_eq!(out.trimmed, u.len() - 2);
        for (j, c) in out.combined.iter().enumerate() {
            let lo = honest.iter().map(|h| h[j]).fold(f32::INFINITY, f32::min);
            let hi = honest
                .iter()
                .map(|h| h[j])
                .fold(f32::NEG_INFINITY, f32::max);
            assert!(
                (lo..=hi).contains(c),
                "coordinate {j} = {c} outside honest range [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn policies_are_bitwise_permutation_invariant() {
        let u = w(&[
            &[0.3, -1.7, 2.2],
            &[-0.1, 0.4, -0.9],
            &[5.0, 5.0, 5.0],
            &[0.2, -1.5, 2.0],
        ]);
        let mut perm = u.clone();
        perm.rotate_left(2);
        perm.swap(0, 1);
        for policy in [
            AggregationPolicy::Mean,
            AggregationPolicy::CoordinateMedian,
            AggregationPolicy::TrimmedMean { trim: 0.25 },
            AggregationPolicy::NormClippedMean,
            AggregationPolicy::Krum {
                assumed_attackers: 1,
            },
        ] {
            let a = combine(policy, &u).unwrap();
            let b = combine(policy, &perm).unwrap();
            assert_eq!(a.combined, b.combined, "policy {:?}", policy);
        }
    }

    #[test]
    fn outlier_flags_catch_the_distant_update() {
        let u = w(&[&[1.0, 1.0], &[1.1, 0.9], &[0.9, 1.0], &[-30.0, 25.0]]);
        let c = combine(AggregationPolicy::CoordinateMedian, &u)
            .unwrap()
            .combined;
        let flags = outlier_flags(&u, &c, 3.0);
        assert_eq!(flags, vec![false, false, false, true]);
    }

    #[test]
    fn aggregator_applies_on_full_window_and_resets() {
        let mut agg =
            RobustAggregator::new(AggregationPolicy::CoordinateMedian, 3).refine_outliers(true);
        assert!(agg.push(0, vec![1.0]).is_none());
        assert!(agg.push(1, vec![2.0]).is_none());
        let apply = agg.push(2, vec![300.0]).unwrap();
        // Two-pass refine: the flagged update is removed outright and the
        // survivors recombined — median of [1, 2], not of [1, 2, 300].
        assert_eq!(apply.combined, vec![1.5]);
        assert_eq!(apply.contributors, 3);
        assert_eq!(apply.outliers, vec![2]);
        assert_eq!(apply.cleared, vec![0, 1]);
        assert_eq!(agg.buffered(), 0);
        assert!(agg.push(0, vec![5.0]).is_none());
        agg.clear();
        assert_eq!(agg.buffered(), 0);
    }

    #[test]
    fn refine_off_keeps_first_pass_combine() {
        let mut agg = RobustAggregator::new(AggregationPolicy::CoordinateMedian, 3);
        agg.push(0, vec![1.0]);
        agg.push(1, vec![2.0]);
        let apply = agg.push(2, vec![300.0]).unwrap();
        // The outlier is still *reported* (quarantine escalation relies
        // on it) but stays in the combine.
        assert_eq!(apply.combined, vec![2.0]);
        assert_eq!(apply.outliers, vec![2]);
    }

    #[test]
    fn refine_never_applies_to_krum() {
        let policy = AggregationPolicy::Krum {
            assumed_attackers: 1,
        };
        let updates: [(usize, Vec<f32>); 5] = [
            (0, vec![1.0, 1.0]),
            (1, vec![1.1, 0.9]),
            (2, vec![0.9, 1.1]),
            (3, vec![1.0, 0.95]),
            (4, vec![-50.0, 40.0]),
        ];
        let mut plain = RobustAggregator::new(policy, 5);
        let mut refined = RobustAggregator::new(policy, 5).refine_outliers(true);
        let mut a = None;
        let mut b = None;
        for (s, u) in updates {
            a = plain.push(s, u.clone());
            b = refined.push(s, u);
        }
        // Krum's combine already excludes by selection; the refine flag
        // must not change its output.
        assert_eq!(a.unwrap().combined, b.unwrap().combined);
    }

    #[test]
    fn combine_rejects_malformed_windows() {
        assert_eq!(
            combine(AggregationPolicy::Mean, &[]),
            Err(AggregateError::EmptyWindow)
        );
        let ragged = w(&[&[1.0, 2.0], &[3.0]]);
        assert_eq!(
            combine(AggregationPolicy::Mean, &ragged),
            Err(AggregateError::RaggedWindow {
                expected: 2,
                got: 1
            })
        );
        let u = w(&[&[1.0], &[2.0]]);
        assert_eq!(
            combine(AggregationPolicy::TrimmedMean { trim: 0.5 }, &u),
            Err(AggregateError::BadTrim { trim: 0.5 })
        );
    }

    #[test]
    fn zero_window_clamps_to_one() {
        let mut agg = RobustAggregator::new(AggregationPolicy::Mean, 0);
        assert_eq!(agg.window(), 1);
        // Every push fires a window of one.
        assert!(agg.push(0, vec![2.0]).is_some());
        agg.set_window(0);
        assert_eq!(agg.window(), 1);
    }

    #[test]
    fn invalid_outlier_factor_keeps_previous() {
        let agg = RobustAggregator::new(AggregationPolicy::Mean, 2)
            .outlier_factor(5.0)
            .outlier_factor(f32::NAN)
            .outlier_factor(-1.0);
        assert_eq!(agg.outlier_factor, 5.0);
    }
}
