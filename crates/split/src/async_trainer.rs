//! The asynchronous, network-simulated spatio-temporal trainer.
//!
//! Where [`crate::SpatioTemporalTrainer`] idealizes the network away, this
//! trainer runs the same protocol over a [`stsl_simnet`] star topology in
//! simulated time: activations and gradients take real (sampled) transfer
//! times, the server has a finite per-batch service time, and arrivals
//! wait in an [`crate::ArrivalQueue`] governed by a
//! [`crate::SchedulingPolicy`]. This is the machinery behind experiment E4
//! (queueing/staleness/scheduling) and the latency half of E5.
//!
//! # Fault tolerance
//!
//! The trainer survives a [`FaultPlan`] of scheduled fault episodes (link
//! outages, loss surges, latency spikes, client crashes, server stalls):
//!
//! * **Retransmission** — a lost activation or gradient message is resent
//!   under a [`RetryPolicy`] (exponential backoff + jitter); only when the
//!   retry budget is exhausted is the batch abandoned and counted lost.
//! * **Liveness tracking** — the server keeps last-seen bookkeeping per
//!   end-system ([`LivenessTracker`]), declares silent ones dead, and
//!   handles their rejoin; the epoch keeps progressing with the survivors
//!   (graceful quorum degradation).
//! * **Crash / recover** — a crashed end-system loses its outstanding
//!   batch and its in-flight messages; on recovery it restores its private
//!   layers from the last auto-checkpoint (if any) and resumes from its
//!   persisted data-loader position.
//! * **Auto-checkpointing** — with
//!   [`AsyncSplitTrainer::with_auto_checkpoint`], the full deployment
//!   state is snapshotted every interval of simulated time into a
//!   [`CheckpointRing`]; the newest snapshot drives crash recovery and is
//!   available afterwards via [`AsyncSplitTrainer::last_checkpoint`].
//! * **Data-plane integrity** — with
//!   [`AsyncSplitTrainer::with_integrity_guard`], corrupted frames are
//!   rejected at the receiving edge (the wire format's CRC), incoming
//!   activations are validated before they touch the shared model,
//!   repeat offenders are quarantined with probationary rejoin, and a
//!   health watchdog rolls the deployment back through the checkpoint
//!   ring when training diverges anyway.

use crate::aggregate::AggregationPolicy;
use crate::checkpoint::{Checkpoint, CheckpointRing};
use crate::client::EndSystem;
use crate::config::{DeadlineConfig, OverloadConfig, SplitConfig};
use crate::guard::{tensor_rms, GuardConfig, HealthWatchdog, QuarantineStatus, QuarantineTracker};
use crate::membership::{Membership, MembershipState, QuorumLost};
use crate::protocol::{ActivationMsg, GradientMsg};
use crate::report::{AsyncReport, CommReport};
use crate::resilience::{
    BreakerConfig, BreakerDecision, CircuitBreaker, LivenessTracker, RetryPolicy,
};
use crate::scheduler::{ArrivalQueue, SchedulingPolicy, TokenBucket};
use crate::server::CentralServer;
use crate::trainer::ConfigError;
use bytes::Bytes;
use rand::Rng;
use stsl_data::{ImageDataset, Partition};
use stsl_simnet::{
    corrupt_payload, AttackSpec, EndSystemId, EventQueue, FaultPlan, SimDuration, SimTime,
    StarTopology, TraceKind, TraceLog,
};
use stsl_telemetry::{JournalKind, MetricId, TelemetryHub};
use stsl_tensor::init::{derive_seed, rng_from_seed};
use stsl_tensor::Tensor;

/// Timing knobs of the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Time an end-system needs to forward one batch through its private
    /// layers (and to apply a returned gradient).
    pub client_batch: SimDuration,
    /// Time the server needs to process one batch (forward + backward +
    /// step).
    pub server_batch: SimDuration,
    /// Legacy loss-recovery knob: the default [`RetryPolicy`] is derived
    /// from it (see [`RetryPolicy::from_timeout`]). Override with
    /// [`AsyncSplitTrainer::with_retry_policy`] for full control.
    pub retry_timeout: SimDuration,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            client_batch: SimDuration::from_millis(5),
            server_batch: SimDuration::from_millis(3),
            retry_timeout: SimDuration::from_millis(500),
        }
    }
}

#[derive(Debug)]
enum Event {
    /// Activations reached the server.
    Arrival(ActivationMsg),
    /// A gradient reached its end-system.
    GradArrival(GradientMsg),
    /// The server finished a batch (or a stall ended) and can pick the
    /// next queued one.
    ServerFree,
    /// A lost activation message is retransmitted. `failures` counts the
    /// send attempts that have already failed.
    UplinkRetry { msg: ActivationMsg, failures: u32 },
    /// A lost gradient message is retransmitted.
    DownlinkRetry { msg: GradientMsg, failures: u32 },
    /// An activation frame arrived garbled and was detected at the server
    /// edge; `msg` is the original for retransmission.
    CorruptUplink { msg: ActivationMsg, failures: u32 },
    /// A gradient frame arrived garbled and was detected at the client
    /// edge.
    CorruptDownlink { msg: GradientMsg, failures: u32 },
    /// A client's outstanding batch is lost for good; abandon it and move
    /// on to the next one.
    BatchAbandon(EndSystemId),
    /// A scheduled fault crashes the end-system.
    ClientCrash(EndSystemId),
    /// A crashed end-system comes back up.
    ClientRecover(EndSystemId),
    /// Periodic auto-checkpoint.
    CheckpointTick,
    /// Periodic telemetry snapshot.
    TelemetrySnapshot,
    /// A scheduled joiner is admitted to the fleet mid-training.
    MemberJoin(EndSystemId),
    /// A member departs the fleet for good (until a scheduled rejoin).
    MemberLeave(EndSystemId),
    /// A departed member re-admits and resyncs from its last acked batch.
    MemberRejoin(EndSystemId),
    /// Per-round deadline: check round progress and, with enough quorum,
    /// abandon the stragglers' outstanding batches.
    RoundDeadline,
    /// A breaker-deferred activation send is re-attempted when its link
    /// half-opens. Unlike [`Event::UplinkRetry`] nothing was lost, so it
    /// is not counted as a retransmission.
    UplinkProbe { msg: ActivationMsg, failures: u32 },
    /// A breaker-deferred gradient send, downlink counterpart of
    /// [`Event::UplinkProbe`].
    DownlinkProbe { msg: GradientMsg, failures: u32 },
}

/// Asynchronous trainer over a simulated network.
#[derive(Debug)]
pub struct AsyncSplitTrainer {
    config: SplitConfig,
    topology: StarTopology,
    policy: SchedulingPolicy,
    compute: ComputeModel,
    server: CentralServer,
    clients: Vec<EndSystem>,
    queue: ArrivalQueue,
    events: EventQueue<Event>,
    link_rngs: Vec<rand::rngs::StdRng>,
    retry_rng: rand::rngs::StdRng,
    server_busy_until: SimTime,
    comm: CommReport,
    network_drops: u64,
    client_epoch: Vec<u64>,
    trace: Option<TraceLog>,
    // Fault tolerance.
    fault_plan: FaultPlan,
    retry: RetryPolicy,
    liveness_timeout: SimDuration,
    liveness: LivenessTracker,
    checkpoint_every: Option<SimDuration>,
    ring: CheckpointRing,
    crashed: Vec<bool>,
    down_since: Vec<Option<SimTime>>,
    downtime_us: Vec<u64>,
    stall_wake: Option<SimTime>,
    retransmits: u64,
    retry_exhausted: u64,
    batches_lost_per_client: Vec<u64>,
    crash_events: u64,
    recovery_events: u64,
    checkpoint_saves: u64,
    checkpoint_restores: u64,
    // Data-plane integrity.
    guard: Option<GuardConfig>,
    quarantine: QuarantineTracker,
    watchdog: HealthWatchdog,
    corrupted_payloads: u64,
    corrupted_rejected: u64,
    anomalies_rejected: u64,
    rollbacks: u64,
    // Observability.
    telemetry: Option<TelemetryHub>,
    telemetry_every: Option<SimDuration>,
    // Dynamic membership & overload control.
    membership: Membership,
    overload: Option<OverloadConfig>,
    breaker: CircuitBreaker,
    buckets: Vec<TokenBucket>,
    deadlines: Option<DeadlineConfig>,
    deadline_snapshot: Vec<u64>,
    clients_joined: u64,
    bucket_shed: u64,
    deadline_partial_applies: u64,
    quorum_lost: Option<QuorumLost>,
    // Byzantine resilience.
    attack_rngs: Vec<rand::rngs::StdRng>,
    attack_steps: Vec<u64>,
    attacks_injected: u64,
    robust_applies: u64,
    robust_outliers: u64,
    updates_trimmed: u64,
    /// The window size [`AsyncSplitTrainer::with_robust_aggregation`]
    /// configured; the live window shrinks below it while senders sit in
    /// quarantine (0 = robust aggregation off).
    robust_window_base: usize,
    /// Periodic housekeeping events (checkpoint/snapshot/deadline ticks)
    /// currently sitting in the queue. Ticks reschedule only while the
    /// queue holds a *non-tick* event; otherwise two coexisting tick
    /// streams would keep each other — and the event loop — alive forever.
    queued_ticks: usize,
}

impl AsyncSplitTrainer {
    /// Builds the trainer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid or the
    /// topology size disagrees with `config.end_systems`.
    pub fn new(
        config: SplitConfig,
        train: &ImageDataset,
        topology: StarTopology,
        policy: SchedulingPolicy,
        compute: ComputeModel,
    ) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError)?;
        if topology.len() != config.end_systems {
            return Err(ConfigError(format!(
                "topology has {} links but config has {} end-systems",
                topology.len(),
                config.end_systems
            )));
        }
        if train.len() < config.end_systems {
            return Err(ConfigError("dataset smaller than client count".into()));
        }
        let partition: Partition = config.partition.into();
        let shards = partition.split(train, config.end_systems, derive_seed(config.seed, 7));
        let (_, server_model) = config.arch.build_split(config.cut, config.seed);
        let server = CentralServer::new(server_model, config.build_optimizer(), config.end_systems);
        let clients: Vec<EndSystem> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let client_seed = derive_seed(config.seed, 1000 + i as u64);
                let (client_model, _) = config.arch.build_split(config.cut, client_seed);
                EndSystem::new(
                    EndSystemId(i),
                    client_model,
                    shard,
                    config.batch_size,
                    config.build_optimizer(),
                    config.augment,
                    client_seed,
                )
                .with_smash_noise(config.smash_noise)
            })
            .collect();
        let link_rngs = (0..config.end_systems)
            .map(|i| rng_from_seed(derive_seed(config.seed, 5000 + i as u64)))
            .collect();
        let retry_rng = rng_from_seed(derive_seed(config.seed, 6000));
        let queue = ArrivalQueue::new(policy, config.end_systems);
        let n = config.end_systems;
        let liveness_timeout = SimDuration::from_millis(2_000);
        Ok(AsyncSplitTrainer {
            config,
            topology,
            policy,
            compute,
            server,
            clients,
            queue,
            events: EventQueue::new(),
            link_rngs,
            retry_rng,
            server_busy_until: SimTime::ZERO,
            comm: CommReport::default(),
            network_drops: 0,
            client_epoch: Vec::new(),
            trace: None,
            fault_plan: FaultPlan::new(),
            retry: RetryPolicy::from_timeout(compute.retry_timeout),
            liveness_timeout,
            liveness: LivenessTracker::new(n, liveness_timeout),
            checkpoint_every: None,
            ring: CheckpointRing::new(1),
            crashed: vec![false; n],
            down_since: vec![None; n],
            downtime_us: vec![0; n],
            stall_wake: None,
            retransmits: 0,
            retry_exhausted: 0,
            batches_lost_per_client: vec![0; n],
            crash_events: 0,
            recovery_events: 0,
            checkpoint_saves: 0,
            checkpoint_restores: 0,
            guard: None,
            quarantine: QuarantineTracker::new(n, &GuardConfig::default()),
            watchdog: HealthWatchdog::new(&GuardConfig::default()),
            corrupted_payloads: 0,
            corrupted_rejected: 0,
            anomalies_rejected: 0,
            rollbacks: 0,
            telemetry: None,
            telemetry_every: None,
            membership: Membership::new(n),
            overload: None,
            breaker: CircuitBreaker::new(n, BreakerConfig::default()),
            buckets: Vec::new(),
            deadlines: None,
            deadline_snapshot: vec![0; n],
            clients_joined: 0,
            bucket_shed: 0,
            deadline_partial_applies: 0,
            quorum_lost: None,
            attack_rngs: Vec::new(),
            attack_steps: vec![0; n],
            attacks_injected: 0,
            robust_applies: 0,
            robust_outliers: 0,
            updates_trimmed: 0,
            robust_window_base: 0,
            queued_ticks: 0,
        })
    }

    /// Injects a schedule of faults (builder style). Crash windows are
    /// turned into crash/recover events when the run starts; link faults
    /// are consulted on every transfer.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the retransmission policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables periodic auto-checkpointing every `every` of simulated time
    /// (builder style). The latest snapshot drives crash recovery.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_auto_checkpoint(mut self, every: SimDuration) -> Self {
        assert!(
            every > SimDuration::ZERO,
            "checkpoint interval must be positive"
        );
        self.checkpoint_every = Some(every);
        self
    }

    /// Overrides how long the server tolerates silence from an end-system
    /// before declaring it dead (builder style; default 2 s).
    pub fn with_liveness_timeout(mut self, timeout: SimDuration) -> Self {
        self.liveness_timeout = timeout;
        self
    }

    /// Enables the data-plane integrity guard (builder style): corrupted
    /// frames are rejected by CRC and retransmitted, activations are
    /// validated at ingress, repeat offenders are quarantined, and the
    /// health watchdog rolls back through the checkpoint ring on
    /// divergence. Without the guard, corrupted frames that still parse
    /// are silently accepted — the poison the guard exists to stop.
    pub fn with_integrity_guard(mut self, guard: GuardConfig) -> Self {
        self.quarantine = QuarantineTracker::new(self.clients.len(), &guard);
        self.watchdog = HealthWatchdog::new(&guard);
        self.ring = CheckpointRing::new(guard.ring_capacity);
        self.guard = Some(guard);
        self
    }

    /// Enables windowed Byzantine-robust aggregation on the server
    /// (builder style): per-batch gradients are buffered and combined
    /// under `policy` every `window` batches before they reach the
    /// optimizer. With the integrity guard also enabled, the stack turns
    /// attack-aware: window members flagged as statistical outliers are
    /// excluded from the combine (two-pass refine) and accrue anomaly
    /// score toward quarantine ([`GuardConfig::outlier_factor`] sets the
    /// flagging threshold; apply
    /// [`AsyncSplitTrainer::with_integrity_guard`] *before* this builder
    /// so both are picked up).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_robust_aggregation(mut self, policy: AggregationPolicy, window: usize) -> Self {
        let factor = self
            .guard
            .map(|g| g.outlier_factor)
            .unwrap_or(GuardConfig::default().outlier_factor);
        self.server
            .enable_robust_aggregation(policy, window, factor, self.guard.is_some());
        self.robust_window_base = window;
        self
    }

    /// Re-derives the live aggregation window from the configured base
    /// minus the senders currently in quarantine, so exiling an attacker
    /// does not leave the window waiting on updates that can never
    /// arrive (which would slow the optimizer cadence for the honest
    /// cohort). Called on every quarantine entry and release.
    fn resize_robust_window(&mut self, t: SimTime) {
        if self.robust_window_base == 0 {
            return;
        }
        let quarantined = (0..self.clients.len())
            .filter(|&i| self.quarantine.in_quarantine(i, t))
            .count();
        let window = self.robust_window_base.saturating_sub(quarantined).max(1);
        self.server.set_robust_window(window);
    }

    /// Enables telemetry (builder style): uplink/downlink latency, queue
    /// depth, gradient staleness and service-time histograms per
    /// end-system, a bounded event journal of `journal_capacity` events,
    /// and a [`Snapshot`](stsl_telemetry::Snapshot) of every metric each
    /// `every` of simulated time (plus one final snapshot when the run
    /// drains).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_telemetry(mut self, every: SimDuration, journal_capacity: usize) -> Self {
        assert!(
            every > SimDuration::ZERO,
            "telemetry snapshot interval must be positive"
        );
        self.telemetry = Some(TelemetryHub::new(journal_capacity));
        self.telemetry_every = Some(every);
        self
    }

    /// The telemetry hub, if [`AsyncSplitTrainer::with_telemetry`] was
    /// used.
    pub fn telemetry(&self) -> Option<&TelemetryHub> {
        self.telemetry.as_ref()
    }

    /// Enables server-side overload protection (builder style): the
    /// ingress queue is bounded (arrivals past the cap shed the oldest
    /// pending batch), each end-system is admission-limited by a token
    /// bucket, and every link gets a circuit breaker that trips after
    /// repeated delivery failures and half-opens on an exponential
    /// backoff schedule.
    pub fn with_overload_control(mut self, cfg: OverloadConfig) -> Self {
        let n = self.clients.len();
        self.queue = ArrivalQueue::new(self.policy, n).with_capacity(cfg.queue_capacity);
        self.breaker = CircuitBreaker::new(
            n,
            BreakerConfig {
                threshold: cfg.breaker_threshold,
                base_open: SimDuration::from_millis(cfg.breaker_base_open_ms),
                max_open: SimDuration::from_millis(cfg.breaker_max_open_ms),
            },
        );
        self.buckets = (0..n)
            .map(|_| TokenBucket::new(cfg.bucket_rate, cfg.bucket_burst))
            .collect();
        self.overload = Some(cfg);
        self
    }

    /// Enables straggler mitigation (builder style): at every round
    /// deadline, if at least `min_quorum_frac` of the current members
    /// made progress this round, the stragglers' outstanding batches are
    /// abandoned so the round's updates apply without waiting for them.
    ///
    /// # Panics
    ///
    /// Panics if `round_ms` is zero or `min_quorum_frac` is outside
    /// `(0, 1]`.
    pub fn with_round_deadlines(mut self, cfg: DeadlineConfig) -> Self {
        assert!(cfg.round_ms > 0, "round length must be positive");
        assert!(
            cfg.min_quorum_frac > 0.0 && cfg.min_quorum_frac <= 1.0,
            "min_quorum_frac must be in (0, 1]"
        );
        self.deadlines = Some(cfg);
        self
    }

    /// The membership registry: per-client lifecycle state plus the
    /// join/depart/rejoin accounting.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Downsampled ingress-queue depth series (one sample per push/pop),
    /// for offline analysis of overload behavior.
    pub fn queue_depth_samples(&self) -> &[usize] {
        self.queue.depth_samples()
    }

    /// The most recent auto-checkpoint, if any was taken.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.ring.latest()
    }

    /// The ring of recent checkpoints (holds one without the integrity
    /// guard, [`GuardConfig::ring_capacity`] with it).
    pub fn checkpoint_ring(&self) -> &CheckpointRing {
        &self.ring
    }

    /// The end-systems — for inspection and for fault injection (e.g.
    /// poisoning a client's private model to exercise the ingress guard).
    pub fn clients_mut(&mut self) -> &mut [EndSystem] {
        &mut self.clients
    }

    /// Enables event tracing; every arrival, service start, gradient
    /// delivery, drop, retransmission, crash, recovery and checkpoint is
    /// recorded for later inspection via [`AsyncSplitTrainer::trace`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceLog::new());
    }

    /// The event trace, if [`AsyncSplitTrainer::enable_trace`] was called.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    fn trace_event(&mut self, at: SimTime, kind: TraceKind, id: EndSystemId) {
        if let Some(log) = &mut self.trace {
            log.record(at, kind, id);
        }
    }

    /// The id used for server-scoped trace events (one past the last
    /// end-system).
    fn server_trace_id(&self) -> EndSystemId {
        EndSystemId(self.clients.len())
    }

    /// Schedules a periodic housekeeping tick, keeping the tick census in
    /// step with the queue.
    fn schedule_tick(&mut self, at: SimTime, ev: Event) {
        self.queued_ticks += 1;
        self.events.schedule(at, ev);
    }

    /// Whether the queue holds any event that can make training progress
    /// (i.e. anything besides the periodic ticks). Ticks reschedule only
    /// while this holds, so a drained simulation terminates even with
    /// several tick streams active.
    fn has_pending_work(&self) -> bool {
        self.events.len() > self.queued_ticks
    }

    /// Journals an event into the telemetry hub (if attached). A ring
    /// eviction is itself an accountable loss: it is traced as
    /// [`TraceKind::JournalDrop`] and surfaces as
    /// `AsyncReport::journal_dropped`.
    fn journal_event(&mut self, at: SimTime, kind: JournalKind, id: EndSystemId) {
        let Some(hub) = &mut self.telemetry else {
            return;
        };
        let evicted = hub.journal(at.as_micros(), kind, id.0 as u64);
        if evicted {
            self.trace_event(at, TraceKind::JournalDrop, id);
        }
    }

    /// Emits one telemetry snapshot at `t` (traced as
    /// [`TraceKind::SnapshotEmit`] and journaled).
    fn emit_snapshot(&mut self, t: SimTime) {
        if self.telemetry.is_none() {
            return;
        }
        let server_id = self.server_trace_id();
        let shed = self.queue.shed() + self.bucket_shed;
        let overload = self.overload.is_some();
        let robust = self.server.robust_enabled();
        let rejected = self.robust_outliers + self.anomalies_rejected + self.quarantine.drops();
        if let Some(hub) = &mut self.telemetry {
            if overload {
                // Cumulative shed total sampled once per snapshot — the
                // dashboard's shed-rate series.
                hub.record(MetricId::ShedRate, server_id.0 as u64, shed);
            }
            if robust {
                // Cumulative defense-layer refusals (ingress anomalies,
                // quarantine drops, robust outliers), sampled once per
                // snapshot — the dashboard's rejected-update series.
                hub.record(MetricId::RejectedUpdateRate, server_id.0 as u64, rejected);
            }
            hub.emit_snapshot(t.as_micros());
        }
        self.trace_event(t, TraceKind::SnapshotEmit, server_id);
        self.journal_event(t, JournalKind::SnapshotEmit, server_id);
    }

    /// Runs the configured number of client epochs to completion and
    /// evaluates on `test`.
    pub fn run(&mut self, test: &ImageDataset) -> AsyncReport {
        self.run_with_budget(test, None)
    }

    /// Like [`AsyncSplitTrainer::run`], but stops the simulation once the
    /// clock passes `budget` (if given), even if clients still have
    /// batches left.
    ///
    /// Fixed-time-budget runs are how the §II "biased learning" effect is
    /// measured: under a wall-clock budget, far end-systems complete fewer
    /// batches, so per-client service counts diverge and the scheduling
    /// policy matters. (In run-to-completion mode every batch is served
    /// eventually and totals are trivially equal.)
    pub fn run_with_budget(
        &mut self,
        test: &ImageDataset,
        budget: Option<SimDuration>,
    ) -> AsyncReport {
        self.run_inner(test, budget).0
    }

    /// Like [`AsyncSplitTrainer::run`], but surfaces quorum loss as a
    /// typed error: if every member departs while training is unfinished
    /// (and no future join or rejoin is scheduled), the simulation stops
    /// immediately instead of draining dead events.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumLost`] when no active member remains and work is
    /// left.
    pub fn try_run(&mut self, test: &ImageDataset) -> Result<AsyncReport, QuorumLost> {
        self.try_run_with_budget(test, None)
    }

    /// Budgeted counterpart of [`AsyncSplitTrainer::try_run`].
    ///
    /// # Errors
    ///
    /// Returns [`QuorumLost`] when no active member remains and work is
    /// left.
    pub fn try_run_with_budget(
        &mut self,
        test: &ImageDataset,
        budget: Option<SimDuration>,
    ) -> Result<AsyncReport, QuorumLost> {
        match self.run_inner(test, budget) {
            (_, Some(lost)) => Err(lost),
            (report, None) => Ok(report),
        }
    }

    fn run_inner(
        &mut self,
        test: &ImageDataset,
        budget: Option<SimDuration>,
    ) -> (AsyncReport, Option<QuorumLost>) {
        let n = self.clients.len();
        self.client_epoch = vec![0; n];
        self.liveness = LivenessTracker::new(n, self.liveness_timeout);
        for c in &mut self.clients {
            c.begin_epoch(0);
        }
        // Pre-declared joiners (clients with a scheduled join episode)
        // start dormant: they are part of the configured fleet but sit in
        // `Joining` until their admission event fires.
        let mut membership = Membership::new(n);
        for (id, _) in self.fault_plan.join_events() {
            if id.0 < n {
                membership = membership.dormant(id.0);
            }
        }
        self.membership = membership;
        self.deadline_snapshot = vec![0; n];
        self.clients_joined = 0;
        self.bucket_shed = 0;
        self.deadline_partial_applies = 0;
        self.quorum_lost = None;
        self.queued_ticks = 0;
        // Adversary streams are derived per client and consulted only
        // while an attack window is active, so attack-free plans keep
        // their exact event streams (the same discipline as corruption).
        self.attack_rngs = (0..n)
            .map(|i| rng_from_seed(derive_seed(self.config.seed, 7000 + i as u64)))
            .collect();
        self.attack_steps = vec![0; n];
        self.attacks_injected = 0;
        self.robust_applies = 0;
        self.robust_outliers = 0;
        self.updates_trimmed = 0;
        self.server.clear_robust_buffer();
        if let Some(cfg) = self.overload {
            // Fresh breaker/bucket state per run keeps repeated runs of
            // one trainer seed-deterministic.
            self.breaker = CircuitBreaker::new(
                n,
                BreakerConfig {
                    threshold: cfg.breaker_threshold,
                    base_open: SimDuration::from_millis(cfg.breaker_base_open_ms),
                    max_open: SimDuration::from_millis(cfg.breaker_max_open_ms),
                },
            );
            self.buckets = (0..n)
                .map(|_| TokenBucket::new(cfg.bucket_rate, cfg.bucket_burst))
                .collect();
        }
        // Schedule every crash window from the fault plan.
        for (id, from, until) in self.fault_plan.crash_windows() {
            self.events.schedule(from, Event::ClientCrash(id));
            self.events.schedule(until, Event::ClientRecover(id));
        }
        // Schedule the churn arrivals: joins, leaves and rejoins.
        for (id, at) in self.fault_plan.join_events() {
            if id.0 < n {
                self.events.schedule(at, Event::MemberJoin(id));
            }
        }
        for (id, at) in self.fault_plan.leave_events() {
            if id.0 < n {
                self.events.schedule(at, Event::MemberLeave(id));
            }
        }
        for (id, at) in self.fault_plan.rejoin_events() {
            if id.0 < n {
                self.events.schedule(at, Event::MemberRejoin(id));
            }
        }
        // First round deadline one round in.
        if let Some(d) = self.deadlines {
            self.schedule_tick(
                SimTime::ZERO + SimDuration::from_millis(d.round_ms),
                Event::RoundDeadline,
            );
        }
        // First auto-checkpoint one interval in.
        if let Some(iv) = self.checkpoint_every {
            self.schedule_tick(SimTime::ZERO + iv, Event::CheckpointTick);
        }
        // First telemetry snapshot one interval in.
        if let Some(iv) = self.telemetry_every {
            self.schedule_tick(SimTime::ZERO + iv, Event::TelemetrySnapshot);
        }
        // Kick off: every client computes its first batch at t = 0. The
        // batch forwards are independent per client, so they fan out
        // across threads; the uplinks are then sent in ascending client
        // order, so the event schedule — and with it every subsequent
        // arrival, retry, and gradient — is identical to a serial kickoff
        // for any `STSL_THREADS`.
        let crashed = self.crashed.clone();
        // Dormant joiners keep their data-loader cursor untouched until
        // admission; their first batch is produced at join time.
        let dormant: Vec<bool> = (0..n)
            .map(|i| self.membership.state(i) == Some(MembershipState::Joining))
            .collect();
        let firsts: Vec<Option<ActivationMsg>> = stsl_parallel::par_map_mut(
            &mut self.clients,
            stsl_parallel::ChunkPolicy::min_chunk(1),
            |i, c| {
                if crashed[i] || dormant[i] || c.epoch_finished() {
                    None
                } else {
                    c.next_batch()
                }
            },
        );
        for (i, first) in firsts.into_iter().enumerate() {
            match first {
                Some(mut msg) => {
                    self.apply_attack(&mut msg, SimTime::ZERO);
                    self.send_uplink(msg, 0, SimTime::ZERO + self.compute.client_batch)
                }
                // Degenerate cases (pre-crashed client, empty shard) take
                // the ordinary path so epoch bookkeeping stays in one
                // place. (Dormant joiners fall through its membership
                // gate untouched.)
                None => self.launch_next_batch(EndSystemId(i), SimTime::ZERO),
            }
        }
        // Drain the event loop.
        'sim: while let Some((t, event)) = self.events.pop() {
            if let Some(b) = budget {
                if t.since(SimTime::ZERO) > b {
                    break;
                }
            }
            for silent in self.liveness.sweep(t) {
                // A member that went silent is suspected, not evicted: it
                // still counts toward quorum and resumes on its next
                // uplink.
                if self.membership.state(silent.0) == Some(MembershipState::Active) {
                    let _ = self
                        .membership
                        .transition(silent.0, MembershipState::Suspect);
                    self.note_membership();
                }
            }
            match event {
                Event::Arrival(msg) => {
                    let id = msg.from;
                    if self.crashed[id.0] {
                        // The sender crashed while the message was in
                        // flight; its forward cache is gone, so the batch
                        // is useless to the server.
                        continue;
                    }
                    if !self.is_member(id.0) {
                        // The sender departed while the message was in
                        // flight; its batch is replayed if it rejoins.
                        continue;
                    }
                    if self.guard.is_some() {
                        match self
                            .quarantine
                            .admit_observed(id.0, t, self.telemetry.as_mut())
                        {
                            QuarantineStatus::Dropped => {
                                self.trace_event(t, TraceKind::QuarantineDrop, id);
                                self.batches_lost_per_client[id.0] += 1;
                                self.events.schedule(t, Event::BatchAbandon(id));
                                continue;
                            }
                            QuarantineStatus::Released => {
                                self.trace_event(t, TraceKind::QuarantineRelease, id);
                                self.resize_robust_window(t);
                            }
                            QuarantineStatus::Clear => {}
                        }
                    }
                    if self.liveness.observe(id, t)
                        && self.membership.state(id.0) == Some(MembershipState::Suspect)
                    {
                        // The suspect spoke up: back to full membership.
                        let _ = self.membership.transition(id.0, MembershipState::Active);
                        self.note_membership();
                    }
                    if self.overload.is_some() && !self.buckets[id.0].try_take(t) {
                        // Rate limit: the sender is over its admission
                        // budget, so the batch is refused at the ingress
                        // edge and never counts as an arrival.
                        self.bucket_shed += 1;
                        self.trace_event(t, TraceKind::IngressShed, id);
                        self.journal_event(t, JournalKind::IngressShed, id);
                        self.batches_lost_per_client[id.0] += 1;
                        self.events.schedule(t, Event::BatchAbandon(id));
                        continue;
                    }
                    self.trace_event(t, TraceKind::Arrival, id);
                    self.journal_event(t, JournalKind::Arrival, id);
                    if self.overload.is_some() {
                        let victims =
                            self.queue
                                .push_shed_observed(t, msg, self.telemetry.as_mut());
                        for victim in victims {
                            // Oldest-staleness-first shed: the longest-
                            // waiting pending batch makes room.
                            let vid = victim.from;
                            self.trace_event(t, TraceKind::IngressShed, vid);
                            self.journal_event(t, JournalKind::IngressShed, vid);
                            self.batches_lost_per_client[vid.0] += 1;
                            self.events.schedule(t, Event::BatchAbandon(vid));
                        }
                    } else {
                        self.queue.push_observed(t, msg, self.telemetry.as_mut());
                    }
                    self.try_serve(t);
                }
                Event::ServerFree => {
                    self.try_serve(t);
                }
                Event::GradArrival(grad) => {
                    let id = grad.to;
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue; // delivered into the void
                    }
                    self.trace_event(t, TraceKind::GradientDelivered, id);
                    self.journal_event(t, JournalKind::GradientDelivered, id);
                    // A stale gradient (its batch was abandoned after a
                    // retry exhaustion or crash) is ignored; the client
                    // already moved on.
                    if self.clients[id.0].apply_gradient(&grad).is_ok() {
                        // The gradient application costs client compute
                        // time.
                        self.launch_next_batch(id, t + self.compute.client_batch);
                    }
                }
                Event::UplinkRetry { msg, failures } => {
                    let id = msg.from;
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue;
                    }
                    self.retransmits += 1;
                    self.trace_event(t, TraceKind::Retransmit, id);
                    self.journal_event(t, JournalKind::Retransmit, id);
                    self.send_uplink(msg, failures, t);
                }
                Event::DownlinkRetry { msg, failures } => {
                    let id = msg.to;
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue;
                    }
                    self.retransmits += 1;
                    self.trace_event(t, TraceKind::Retransmit, id);
                    self.journal_event(t, JournalKind::Retransmit, id);
                    self.send_downlink(msg, failures, t);
                }
                Event::UplinkProbe { msg, failures } => {
                    let id = msg.from;
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue;
                    }
                    self.send_uplink(msg, failures, t);
                }
                Event::DownlinkProbe { msg, failures } => {
                    let id = msg.to;
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue;
                    }
                    self.send_downlink(msg, failures, t);
                }
                Event::CorruptUplink { msg, failures } => {
                    let id = msg.from;
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue;
                    }
                    self.corrupted_rejected += 1;
                    self.trace_event(t, TraceKind::CorruptRejected, id);
                    let failures = failures + 1;
                    if self.retry.may_retry(failures) {
                        let delay = self.retry.backoff(failures, &mut self.retry_rng);
                        self.events
                            .schedule(t + delay, Event::UplinkRetry { msg, failures });
                    } else {
                        self.give_up(id, t);
                    }
                }
                Event::CorruptDownlink { msg, failures } => {
                    let id = msg.to;
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue;
                    }
                    self.corrupted_rejected += 1;
                    self.trace_event(t, TraceKind::CorruptRejected, id);
                    let failures = failures + 1;
                    if self.retry.may_retry(failures) {
                        let delay = self.retry.backoff(failures, &mut self.retry_rng);
                        self.events
                            .schedule(t + delay, Event::DownlinkRetry { msg, failures });
                    } else {
                        self.give_up(id, t);
                    }
                }
                Event::BatchAbandon(id) => {
                    if self.crashed[id.0] || !self.is_member(id.0) {
                        continue;
                    }
                    self.clients[id.0].abandon_outstanding();
                    self.launch_next_batch(id, t);
                }
                Event::ClientCrash(id) => {
                    if self.crashed[id.0] {
                        continue; // overlapping crash windows
                    }
                    self.crashed[id.0] = true;
                    self.crash_events += 1;
                    self.down_since[id.0] = Some(t);
                    self.trace_event(t, TraceKind::ClientCrash, id);
                    self.journal_event(t, JournalKind::ClientCrash, id);
                    if self.clients[id.0].outstanding().is_some() {
                        self.clients[id.0].abandon_outstanding();
                        self.batches_lost_per_client[id.0] += 1;
                    }
                }
                Event::ClientRecover(id) => {
                    if !self.crashed[id.0] || self.fault_plan.client_crashed(id, t) {
                        continue; // still inside an overlapping window
                    }
                    self.crashed[id.0] = false;
                    self.recovery_events += 1;
                    if let Some(s) = self.down_since[id.0].take() {
                        self.downtime_us[id.0] += t.since(s).as_micros();
                    }
                    self.trace_event(t, TraceKind::ClientRecover, id);
                    self.journal_event(t, JournalKind::ClientRecover, id);
                    let state = self.ring.latest().map(|c| c.client_states[id.0].clone());
                    if let Some(state) = state {
                        // Crash-recovery restore: the private layers roll
                        // back to the newest persisted snapshot.
                        self.clients[id.0].model_mut().load_state_dict(&state);
                        self.checkpoint_restores += 1;
                        self.trace_event(t, TraceKind::CheckpointRestore, id);
                        self.journal_event(t, JournalKind::CheckpointRestore, id);
                    }
                    self.launch_next_batch(id, t);
                }
                Event::CheckpointTick => {
                    self.queued_ticks = self.queued_ticks.saturating_sub(1);
                    self.take_checkpoint(t);
                    if let Some(iv) = self.checkpoint_every {
                        // Only reschedule while the simulation still has
                        // non-tick work; otherwise coexisting tick
                        // streams would keep the event loop alive forever.
                        if self.has_pending_work() {
                            self.schedule_tick(t + iv, Event::CheckpointTick);
                        }
                    }
                }
                Event::TelemetrySnapshot => {
                    self.queued_ticks = self.queued_ticks.saturating_sub(1);
                    self.emit_snapshot(t);
                    if let Some(iv) = self.telemetry_every {
                        // Same liveness discipline as CheckpointTick.
                        if self.has_pending_work() {
                            self.schedule_tick(t + iv, Event::TelemetrySnapshot);
                        }
                    }
                }
                Event::MemberJoin(id) => {
                    if self.membership.state(id.0) != Some(MembershipState::Joining)
                        || self
                            .membership
                            .transition(id.0, MembershipState::Active)
                            .is_err()
                    {
                        continue;
                    }
                    self.clients_joined += 1;
                    self.trace_event(t, TraceKind::ClientJoin, id);
                    self.journal_event(t, JournalKind::ClientJoin, id);
                    self.note_membership();
                    self.liveness.readmit(id, t);
                    // Server-seeded warm start: clone the most-served
                    // active member's private layers from the newest
                    // checkpoint, so the joiner's lowers are compatible
                    // with the co-adapted uppers instead of dragging them
                    // back toward initialization. Without a checkpoint the
                    // joiner keeps its fresh seed-derived init.
                    let donor = self.warm_start_donor(id);
                    let state = match (donor, self.ring.latest()) {
                        (Some(d), Some(ckpt)) => Some(ckpt.client_states[d].clone()),
                        _ => None,
                    };
                    if let Some(state) = state {
                        self.clients[id.0].model_mut().load_state_dict(&state);
                        self.checkpoint_restores += 1;
                        self.trace_event(t, TraceKind::CheckpointRestore, id);
                        self.journal_event(t, JournalKind::CheckpointRestore, id);
                    }
                    self.launch_next_batch(id, t);
                }
                Event::MemberLeave(id) => {
                    if !matches!(
                        self.membership.state(id.0),
                        Some(MembershipState::Active) | Some(MembershipState::Suspect)
                    ) || self
                        .membership
                        .transition(id.0, MembershipState::Departed)
                        .is_err()
                    {
                        continue;
                    }
                    self.trace_event(t, TraceKind::ClientLeave, id);
                    self.journal_event(t, JournalKind::ClientLeave, id);
                    self.note_membership();
                    self.liveness.retire(id);
                    // The un-acked batch is rewound, not abandoned: if the
                    // client rejoins, it resumes from its last acked batch
                    // and replays this one.
                    self.clients[id.0].rewind_outstanding();
                    if let Some(lost) = self.quorum_check(t) {
                        self.quorum_lost = Some(lost);
                        break 'sim;
                    }
                }
                Event::MemberRejoin(id) => {
                    if self.membership.state(id.0) != Some(MembershipState::Departed)
                        || self
                            .membership
                            .transition(id.0, MembershipState::Rejoining)
                            .is_err()
                    {
                        continue;
                    }
                    // Rejoining -> Active is immediate in simulation; the
                    // two-step keeps the lifecycle auditable.
                    let _ = self.membership.transition(id.0, MembershipState::Active);
                    self.trace_event(t, TraceKind::ClientRejoin, id);
                    self.journal_event(t, JournalKind::ClientRejoin, id);
                    self.note_membership();
                    self.liveness.readmit(id, t);
                    // Resync: the cursor was rewound at departure, so the
                    // next launch replays the exact batch whose gradient
                    // never arrived.
                    self.launch_next_batch(id, t);
                }
                Event::RoundDeadline => {
                    self.queued_ticks = self.queued_ticks.saturating_sub(1);
                    let Some(d) = self.deadlines else { continue };
                    if let Some(lost) = self.quorum_check(t) {
                        self.quorum_lost = Some(lost);
                        break 'sim;
                    }
                    let members: Vec<usize> = (0..self.clients.len())
                        .filter(|&i| self.is_member(i))
                        .collect();
                    let served: Vec<u64> = self.queue.served_per_client().to_vec();
                    let progressed = members
                        .iter()
                        .filter(|&&i| served[i] > self.deadline_snapshot[i])
                        .count();
                    let needed =
                        ((members.len() as f64) * d.min_quorum_frac).ceil().max(1.0) as usize;
                    let stragglers: Vec<EndSystemId> = members
                        .iter()
                        .filter(|&&i| {
                            served[i] <= self.deadline_snapshot[i]
                                && self.clients[i].outstanding().is_some()
                                && !self.crashed[i]
                        })
                        .map(|&i| EndSystemId(i))
                        .collect();
                    if progressed >= needed && !stragglers.is_empty() {
                        // Partial-quorum apply: enough of the fleet made
                        // progress this round, so the stragglers'
                        // outstanding batches are abandoned instead of
                        // holding everyone back.
                        self.deadline_partial_applies += 1;
                        let server_id = self.server_trace_id();
                        self.trace_event(t, TraceKind::DeadlinePartialApply, server_id);
                        self.journal_event(t, JournalKind::DeadlinePartial, server_id);
                        for id in stragglers {
                            self.batches_lost_per_client[id.0] += 1;
                            self.events.schedule(t, Event::BatchAbandon(id));
                        }
                    }
                    self.deadline_snapshot.copy_from_slice(&served);
                    // Same liveness discipline as CheckpointTick.
                    if self.has_pending_work() {
                        self.schedule_tick(
                            t + SimDuration::from_millis(d.round_ms),
                            Event::RoundDeadline,
                        );
                    }
                }
            }
        }
        let end = self.events.now();
        // A final snapshot so short runs (and the tail of long ones) are
        // always covered.
        self.emit_snapshot(end);
        // Clients still down when the simulation ends accrue downtime to
        // the end of the run.
        for i in 0..self.clients.len() {
            if let Some(s) = self.down_since[i].take() {
                self.downtime_us[i] += end.since(s).as_micros();
            }
        }
        let sim_seconds = end.as_secs_f64();
        let per: Vec<f32> = {
            let batch = self.config.batch_size.max(32);
            let server = &mut self.server;
            self.clients
                .iter_mut()
                .map(|c| server.evaluate_with_encoder(test, batch, |x| c.encode(x)))
                .collect()
        };
        let final_accuracy = stsl_tensor::mean_f32(&per);
        // The defense headline: accuracy over the fleet the server still
        // serves. An exiled attacker's own encoder trained against
        // poisoned activations — it is attacker-owned damage no
        // server-side policy can undo, so it belongs in `final_accuracy`
        // (whole-fleet average) but not here. With nothing exiled the
        // two are identical.
        let active: Vec<f32> = per
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.quarantine.in_quarantine(*i, end))
            .map(|(_, &a)| a)
            .collect();
        let active_accuracy = if active.is_empty() {
            final_accuracy
        } else {
            stsl_tensor::mean_f32(&active)
        };
        let report = AsyncReport {
            policy: self.policy.to_string(),
            end_systems: self.config.end_systems,
            cut_blocks: self.config.cut.blocks(),
            sim_seconds,
            final_accuracy,
            active_accuracy,
            served_per_client: self.queue.served_per_client().to_vec(),
            service_imbalance: self.queue.service_imbalance(),
            mean_queue_depth: self.queue.mean_depth(),
            max_queue_depth: self.queue.max_depth(),
            mean_queue_wait_ms: self.queue.mean_wait().as_micros() as f64 / 1e3,
            scheduler_drops: self.queue.dropped(),
            network_drops: self.network_drops,
            retransmits: self.retransmits,
            retry_exhausted: self.retry_exhausted,
            batches_lost: self.batches_lost_per_client.iter().sum(),
            batches_lost_per_client: self.batches_lost_per_client.clone(),
            downtime_ms_per_client: self.downtime_us.iter().map(|&us| us as f64 / 1e3).collect(),
            crash_events: self.crash_events,
            recovery_events: self.recovery_events,
            checkpoint_saves: self.checkpoint_saves,
            checkpoint_restores: self.checkpoint_restores,
            dead_clients_detected: self.liveness.dead_detections(),
            corrupted_payloads: self.corrupted_payloads,
            corrupted_rejected: self.corrupted_rejected,
            anomalies_rejected: self.anomalies_rejected,
            quarantines: self.quarantine.quarantines(),
            quarantine_drops: self.quarantine.drops(),
            quarantine_releases: self.quarantine.releases(),
            rollbacks: self.rollbacks,
            snapshots_emitted: self
                .telemetry
                .as_ref()
                .map(|h| h.snapshots().len() as u64)
                .unwrap_or(0),
            journal_dropped: self
                .telemetry
                .as_ref()
                .map(|h| h.journal_log().evicted())
                .unwrap_or(0),
            clients_joined: self.clients_joined,
            clients_departed: self.membership.departed(),
            rejoins: self.membership.rejoins(),
            batches_shed: self.queue.shed() + self.bucket_shed,
            breaker_trips: self.breaker.trips(),
            deadline_partial_applies: self.deadline_partial_applies,
            attacks_injected: self.attacks_injected,
            robust_applies: self.robust_applies,
            robust_outliers: self.robust_outliers,
            updates_trimmed: self.updates_trimmed,
            comm: self.comm,
        };
        (report, self.quorum_lost.take())
    }

    /// Whether end-system `i` currently counts toward the fleet (state
    /// `Active` or `Suspect`).
    fn is_member(&self, i: usize) -> bool {
        matches!(
            self.membership.state(i),
            Some(MembershipState::Active) | Some(MembershipState::Suspect)
        )
    }

    /// Records the current fleet size as [`MetricId::MembershipSize`]
    /// (called on every membership transition).
    fn note_membership(&mut self) {
        let size = self.membership.member_count() as u64;
        let server_id = self.server_trace_id();
        if let Some(hub) = &mut self.telemetry {
            hub.record(MetricId::MembershipSize, server_id.0 as u64, size);
        }
    }

    /// Whether end-system `i` has produced (and been acked for) every
    /// batch of every configured epoch.
    fn training_complete(&self, i: usize) -> bool {
        self.clients[i].epoch_finished() && self.client_epoch[i] + 1 >= self.config.epochs as u64
    }

    /// Detects quorum loss at `t`: no member remains, unfinished work is
    /// left, and no scheduled join or rejoin can ever repopulate the
    /// fleet.
    fn quorum_check(&self, t: SimTime) -> Option<QuorumLost> {
        if self.membership.member_count() > 0 {
            return None;
        }
        let unfinished = (0..self.clients.len()).any(|i| !self.training_complete(i));
        if !unfinished {
            return None;
        }
        let repopulates = self
            .fault_plan
            .join_events()
            .into_iter()
            .chain(self.fault_plan.rejoin_events())
            .any(|(_, at)| at > t);
        if repopulates {
            return None;
        }
        Some(QuorumLost {
            at_us: t.as_micros(),
            joined: self.membership.joined(),
            departed: self.membership.departed(),
        })
    }

    /// Picks the warm-start donor for a joiner: the most-served active
    /// member (lowest id on ties), whose checkpointed private layers the
    /// joiner clones.
    fn warm_start_donor(&self, joiner: EndSystemId) -> Option<usize> {
        let served = self.queue.served_per_client();
        let mut donor: Option<usize> = None;
        for i in 0..self.clients.len() {
            if i == joiner.0 || self.membership.state(i) != Some(MembershipState::Active) {
                continue;
            }
            if donor.is_none_or(|d| served[i] > served[d]) {
                donor = Some(i);
            }
        }
        donor
    }

    /// Snapshots the full deployment (config, server uppers, every
    /// end-system's private lowers) into the checkpoint ring. With the
    /// integrity guard on, a non-finite server state is never banked —
    /// that would turn the rollback ring into a trap.
    fn take_checkpoint(&mut self, t: SimTime) {
        let server_state = self.server.model_mut().state_dict();
        if self.guard.is_some()
            && server_state
                .iter()
                .any(|p| p.as_slice().iter().any(|v| !v.is_finite()))
        {
            return;
        }
        let config = self.config.clone();
        let client_states = self
            .clients
            .iter_mut()
            .map(|c| c.model_mut().state_dict())
            .collect();
        self.ring.push(Checkpoint {
            config,
            server_state,
            client_states,
        });
        self.checkpoint_saves += 1;
        let server_id = self.server_trace_id();
        self.trace_event(t, TraceKind::CheckpointSave, server_id);
        self.journal_event(t, JournalKind::CheckpointSave, server_id);
    }

    /// Watchdog-triggered rollback: restore the newest ring checkpoint
    /// (server uppers *and* every end-system's private lowers — they
    /// co-adapted, so they roll back together), cool the learning rate,
    /// and re-arm the watchdog. Repeated divergences pop progressively
    /// older entries.
    fn rollback(&mut self, t: SimTime, guard: &GuardConfig) {
        self.rollbacks += 1;
        let server_id = self.server_trace_id();
        self.trace_event(t, TraceKind::Rollback, server_id);
        self.journal_event(t, JournalKind::Rollback, server_id);
        if let Some(ckpt) = self.ring.pop_latest() {
            self.server.model_mut().load_state_dict(&ckpt.server_state);
            for (client, state) in self.clients.iter_mut().zip(&ckpt.client_states) {
                client.model_mut().load_state_dict(state);
            }
        }
        self.server.scale_learning_rate(guard.lr_cooldown);
        // A half-filled aggregation window straddling the rollback point
        // mixes pre- and post-restore gradients; drop it.
        self.server.clear_robust_buffer();
        self.watchdog.reset();
    }

    /// Computes client `id`'s next batch starting at `t` and sends it
    /// uplink. Advances the client's epoch when its shard is exhausted;
    /// stops silently (and retires the client from liveness tracking)
    /// after the final epoch.
    fn launch_next_batch(&mut self, id: EndSystemId, t: SimTime) {
        if self.crashed[id.0] {
            return; // relaunched on recovery
        }
        if !self.is_member(id.0) {
            return; // relaunched on join/rejoin
        }
        let client = &mut self.clients[id.0];
        if client.epoch_finished() {
            let next_epoch = self.client_epoch[id.0] + 1;
            if next_epoch >= self.config.epochs as u64 {
                self.liveness.retire(id);
                return; // this client is done for good
            }
            self.client_epoch[id.0] = next_epoch;
            client.begin_epoch(next_epoch);
        }
        let Some(mut msg) = client.next_batch() else {
            return;
        };
        self.apply_attack(&mut msg, t);
        self.send_uplink(msg, 0, t + self.compute.client_batch);
    }

    /// Applies the sender's active adversarial persona (if any) to a
    /// freshly produced batch, at batch-production time. The poisoned
    /// payload carries through retransmission untouched — the attacker
    /// *is* the sender, so every copy it puts on the wire lies
    /// identically. Unlike payload corruption, the poison is semantic:
    /// the frame stays CRC-valid, finite and RMS-plausible, so only
    /// statistical defenses at the aggregation point can catch it.
    fn apply_attack(&mut self, msg: &mut ActivationMsg, t: SimTime) {
        let id = msg.from;
        let Some(attack) = self.fault_plan.attack(id, t) else {
            return;
        };
        self.attacks_injected += 1;
        self.trace_event(t, TraceKind::AttackInjected, id);
        self.journal_event(t, JournalKind::AttackInjected, id);
        match attack {
            AttackSpec::SignFlip { gain } => {
                let g = -(gain as f32);
                msg.activations.map_inplace(|x| g * x);
            }
            AttackSpec::Scale { factor } => {
                let f = factor as f32;
                msg.activations.map_inplace(|x| f * x);
            }
            AttackSpec::GaussianDrift { sigma } => {
                // Noise grows with the attacker's step count: early
                // batches look almost honest, later ones drift ever
                // further — the slow-poison profile norm bounds miss.
                self.attack_steps[id.0] += 1;
                let scale = (sigma * (self.attack_steps[id.0] as f64).sqrt()) as f32;
                let noise =
                    Tensor::randn(msg.activations.dims().to_vec(), &mut self.attack_rngs[id.0]);
                msg.activations.axpy(scale, &noise);
            }
            AttackSpec::Collude { clique, gain } => {
                // Every clique member sends the same pseudorandom
                // direction for the same batch id: colluders reinforce
                // one another instead of averaging out, the attack
                // Krum-style selectors are most vulnerable to.
                let batch_key = ((msg.batch_id.epoch as u64) << 32) | msg.batch_id.batch as u64;
                let seed = derive_seed(derive_seed(self.config.seed, 7700 + clique), batch_key);
                let g = gain as f32;
                let mut dir =
                    Tensor::randn(msg.activations.dims().to_vec(), &mut rng_from_seed(seed));
                dir.map_inplace(|x| g * x);
                msg.activations = dir;
            }
        }
    }

    /// Attempts one uplink transmission of `msg` at `at` (`failures` prior
    /// attempts have been lost). On loss, schedules a backed-off
    /// retransmission — or abandons the batch once the budget is spent.
    fn send_uplink(&mut self, msg: ActivationMsg, failures: u32, at: SimTime) {
        let id = msg.from;
        if self.overload.is_some() {
            // A tripped breaker defers the send until its link half-opens
            // — before any comm accounting, since nothing hits the wire.
            if let BreakerDecision::Defer(until) = self.breaker.allow(id, at) {
                self.events
                    .schedule(until, Event::UplinkProbe { msg, failures });
                return;
            }
        }
        let bytes = msg.encoded_len();
        self.comm.uplink_bytes += bytes as u64;
        self.comm.uplink_messages += 1;
        let link = *self.topology.link(id);
        match self
            .fault_plan
            .transfer_through(&link, id, bytes, at, &mut self.link_rngs[id.0])
        {
            Some(dur) => {
                // The corruption RNG is only consulted while a corruption
                // episode is active, so corruption-free plans keep their
                // exact event streams.
                let rate = self.fault_plan.corruption_rate(id, at);
                let deliver = if rate > 0.0 && self.link_rngs[id.0].gen_bool(rate) {
                    self.corrupted_payloads += 1;
                    self.trace_event(at, TraceKind::PayloadCorrupted, id);
                    self.garble_uplink(msg, failures)
                } else {
                    Event::Arrival(msg)
                };
                if self.overload.is_some() {
                    self.breaker.record_success(id);
                }
                if let Some(hub) = &mut self.telemetry {
                    hub.record(MetricId::UplinkLatency, id.0 as u64, dur.as_micros());
                }
                self.events.schedule(at + dur, deliver);
            }
            None => {
                self.network_drops += 1;
                self.trace_event(at, TraceKind::NetworkDrop, id);
                self.journal_event(at, JournalKind::NetworkDrop, id);
                if self.overload.is_some() && self.breaker.record_failure(id, at) {
                    self.trace_event(at, TraceKind::BreakerTrip, id);
                    self.journal_event(at, JournalKind::BreakerTrip, id);
                }
                let failures = failures + 1;
                if self.retry.may_retry(failures) {
                    let delay = self.retry.backoff(failures, &mut self.retry_rng);
                    self.events
                        .schedule(at + delay, Event::UplinkRetry { msg, failures });
                } else {
                    self.give_up(id, at);
                }
            }
        }
    }

    /// Runs `msg` through the wire: encode, garble the bytes, re-decode at
    /// the receiving edge. With the guard on, the CRC catches the damage
    /// (barring an astronomically unlikely collision) and the frame is
    /// rejected for retransmission. With the guard off, a frame that still
    /// parses structurally — right sender, batch, shapes and label range,
    /// so the legacy receiver cannot tell it apart from a healthy one — is
    /// delivered garbled: silent poison.
    fn garble_uplink(&mut self, msg: ActivationMsg, failures: u32) -> Event {
        let mut bytes = msg.encode().as_ref().to_vec();
        corrupt_payload(&mut bytes, &mut self.link_rngs[msg.from.0]);
        let wire = Bytes::from(bytes);
        if self.guard.is_some() {
            match ActivationMsg::decode(wire) {
                Ok(m) => Event::Arrival(m),
                Err(_) => Event::CorruptUplink { msg, failures },
            }
        } else {
            match ActivationMsg::decode_lenient(wire) {
                Ok((m, _crc_ok))
                    if m.from == msg.from
                        && m.batch_id == msg.batch_id
                        && m.activations.dims() == msg.activations.dims()
                        && m.targets.len() == msg.targets.len()
                        && m.targets.iter().all(|&c| c < self.config.arch.classes) =>
                {
                    Event::Arrival(m)
                }
                _ => Event::CorruptUplink { msg, failures },
            }
        }
    }

    /// Downlink counterpart of [`AsyncSplitTrainer::garble_uplink`].
    fn garble_downlink(&mut self, msg: GradientMsg, failures: u32) -> Event {
        let mut bytes = msg.encode().as_ref().to_vec();
        corrupt_payload(&mut bytes, &mut self.link_rngs[msg.to.0]);
        let wire = Bytes::from(bytes);
        if self.guard.is_some() {
            match GradientMsg::decode(wire) {
                Ok(m) => Event::GradArrival(m),
                Err(_) => Event::CorruptDownlink { msg, failures },
            }
        } else {
            match GradientMsg::decode_lenient(wire) {
                Ok((m, _crc_ok))
                    if m.to == msg.to
                        && m.batch_id == msg.batch_id
                        && m.grad.dims() == msg.grad.dims() =>
                {
                    Event::GradArrival(m)
                }
                _ => Event::CorruptDownlink { msg, failures },
            }
        }
    }

    /// Attempts one downlink transmission of `msg` at `at`, with the same
    /// retransmission discipline as [`AsyncSplitTrainer::send_uplink`].
    fn send_downlink(&mut self, msg: GradientMsg, failures: u32, at: SimTime) {
        let id = msg.to;
        if self.overload.is_some() {
            // Same deferral discipline as the uplink path.
            if let BreakerDecision::Defer(until) = self.breaker.allow(id, at) {
                self.events
                    .schedule(until, Event::DownlinkProbe { msg, failures });
                return;
            }
        }
        let bytes = msg.encoded_len();
        self.comm.downlink_bytes += bytes as u64;
        self.comm.downlink_messages += 1;
        let link = *self.topology.link(id);
        match self
            .fault_plan
            .transfer_through(&link, id, bytes, at, &mut self.link_rngs[id.0])
        {
            Some(dur) => {
                let rate = self.fault_plan.corruption_rate(id, at);
                let deliver = if rate > 0.0 && self.link_rngs[id.0].gen_bool(rate) {
                    self.corrupted_payloads += 1;
                    self.trace_event(at, TraceKind::PayloadCorrupted, id);
                    self.garble_downlink(msg, failures)
                } else {
                    Event::GradArrival(msg)
                };
                if self.overload.is_some() {
                    self.breaker.record_success(id);
                }
                if let Some(hub) = &mut self.telemetry {
                    hub.record(MetricId::DownlinkLatency, id.0 as u64, dur.as_micros());
                }
                self.events.schedule(at + dur, deliver);
            }
            None => {
                self.network_drops += 1;
                self.trace_event(at, TraceKind::NetworkDrop, id);
                self.journal_event(at, JournalKind::NetworkDrop, id);
                if self.overload.is_some() && self.breaker.record_failure(id, at) {
                    self.trace_event(at, TraceKind::BreakerTrip, id);
                    self.journal_event(at, JournalKind::BreakerTrip, id);
                }
                let failures = failures + 1;
                if self.retry.may_retry(failures) {
                    let delay = self.retry.backoff(failures, &mut self.retry_rng);
                    self.events
                        .schedule(at + delay, Event::DownlinkRetry { msg, failures });
                } else {
                    self.give_up(id, at);
                }
            }
        }
    }

    /// The retry budget for one of `id`'s messages is exhausted: count the
    /// batch as lost and schedule its abandonment.
    fn give_up(&mut self, id: EndSystemId, at: SimTime) {
        self.retry_exhausted += 1;
        self.batches_lost_per_client[id.0] += 1;
        self.trace_event(at, TraceKind::RetryExhausted, id);
        self.events.schedule(at, Event::BatchAbandon(id));
    }

    /// If the server is idle (and not stalled by a fault) at `t`, pops the
    /// next job per the scheduling policy, processes it and schedules the
    /// completion + gradient delivery. Clients whose jobs were discarded
    /// as stale are told to skip.
    fn try_serve(&mut self, t: SimTime) {
        if let Some(stall_end) = self.fault_plan.server_stall_end(t) {
            // Wake up once when the stall lifts; queued work waits.
            if self.stall_wake != Some(stall_end) {
                self.stall_wake = Some(stall_end);
                self.events.schedule(stall_end, Event::ServerFree);
            }
            return;
        }
        if self.server_busy_until > t || self.queue.is_empty() {
            return;
        }
        let (job, discarded) = self.queue.pop_observed(t, self.telemetry.as_mut());
        for msg in discarded {
            self.trace_event(t, TraceKind::SchedulerDrop, msg.from);
            self.journal_event(t, JournalKind::SchedulerDrop, msg.from);
            self.batches_lost_per_client[msg.from.0] += 1;
            // The client is still awaiting a gradient for this batch.
            self.events.schedule(t, Event::BatchAbandon(msg.from));
        }
        let Some(job) = job else { return };
        let id = job.msg.from;
        self.trace_event(t, TraceKind::ServiceStart, id);
        self.journal_event(t, JournalKind::ServiceStart, id);
        let service_us = self.compute.server_batch.as_micros();
        let out = match self.server.process_observed(
            &job.msg,
            self.guard.as_ref(),
            self.telemetry.as_mut(),
            service_us,
        ) {
            Ok(out) => out,
            Err(_) => {
                // Only reachable with the guard on: ingress validation
                // rejected the update before it touched the model.
                // Validation is cheap, so the server stays free for the
                // next queued job.
                self.anomalies_rejected += 1;
                self.trace_event(t, TraceKind::AnomalyRejected, id);
                self.journal_event(t, JournalKind::AnomalyRejected, id);
                self.batches_lost_per_client[id.0] += 1;
                if self
                    .quarantine
                    .record_anomaly_observed(id.0, t, self.telemetry.as_mut())
                {
                    self.trace_event(t, TraceKind::Quarantine, id);
                    self.resize_robust_window(t);
                }
                self.events.schedule(t, Event::BatchAbandon(id));
                self.try_serve(t);
                return;
            }
        };
        let done = t + self.compute.server_batch;
        self.server_busy_until = done;
        self.events.schedule(done, Event::ServerFree);
        if let Some(g) = self.guard {
            // With robust aggregation on, the quarantine clean-credit is
            // deferred to the window verdict below: a sender is "clean"
            // when its update survives statistical scrutiny, not when it
            // merely parses. Crediting here would let a persistent
            // attacker decay its own anomaly score once per round and
            // plateau below the quarantine threshold forever.
            if !self.server.robust_enabled() {
                self.quarantine.record_clean(id.0);
            }
            if self
                .watchdog
                .observe(out.loss, tensor_rms(&out.gradient.grad))
            {
                // The optimizer step that just happened poisoned the
                // shared model: roll back instead of propagating the
                // gradient. The batch still cost server time.
                self.rollback(t, &g);
                self.batches_lost_per_client[id.0] += 1;
                self.events.schedule(done, Event::BatchAbandon(id));
                return;
            }
        }
        if let Some(apply) = self.server.take_robust_apply() {
            self.robust_applies += 1;
            self.updates_trimmed += apply.trimmed as u64;
            let server_id = self.server_trace_id();
            self.trace_event(t, TraceKind::RobustApply, server_id);
            self.journal_event(t, JournalKind::RobustApply, server_id);
            if let Some(hub) = &mut self.telemetry {
                hub.record(
                    MetricId::TrimFraction,
                    server_id.0 as u64,
                    apply.trim_fraction_permille,
                );
            }
            if self.guard.is_some() {
                // The deferred clean-credit: window members the policy
                // did not flag decay their anomaly score here.
                for sender in &apply.cleared {
                    self.quarantine.record_clean(*sender);
                }
            }
            for sender in apply.outliers {
                self.robust_outliers += 1;
                let sid = EndSystemId(sender);
                self.trace_event(t, TraceKind::RobustOutlier, sid);
                self.journal_event(t, JournalKind::RobustOutlier, sid);
                // Statistical outliers accrue quarantine anomaly score
                // exactly like NaN/RMS ingress rejections: the guard
                // becomes attack-aware, not just corruption-aware.
                if self.guard.is_some()
                    && self
                        .quarantine
                        .record_anomaly_observed(sender, t, self.telemetry.as_mut())
                {
                    self.trace_event(t, TraceKind::Quarantine, sid);
                    self.resize_robust_window(t);
                }
            }
        }
        self.send_downlink(out.gradient, 0, done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CutPoint;
    use stsl_data::SyntheticCifar;
    use stsl_simnet::Link;

    fn data(n: usize) -> ImageDataset {
        SyntheticCifar::new(3)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    fn run_with(
        policy: SchedulingPolicy,
        topology: StarTopology,
        clients: usize,
        epochs: usize,
    ) -> AsyncReport {
        let cfg = SplitConfig::tiny(CutPoint(1), clients)
            .epochs(epochs)
            .batch_size(8)
            .seed(4);
        let train = data(clients * 24);
        let test = data(40);
        let mut t =
            AsyncSplitTrainer::new(cfg, &train, topology, policy, ComputeModel::default()).unwrap();
        t.run(&test)
    }

    #[test]
    fn completes_and_serves_every_batch_homogeneous() {
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let r = run_with(SchedulingPolicy::Fifo, top, 2, 1);
        // 24 samples per client, batch 8 -> 3 batches each.
        assert_eq!(r.served_per_client, vec![3, 3]);
        assert_eq!(r.scheduler_drops, 0);
        assert_eq!(r.network_drops, 0);
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.batches_lost, 0);
        assert!(r.sim_seconds > 0.0);
        assert_eq!(r.comm.uplink_messages, 6);
        assert_eq!(r.comm.downlink_messages, 6);
    }

    #[test]
    fn topology_size_must_match_clients() {
        let cfg = SplitConfig::tiny(CutPoint(1), 3);
        let top = StarTopology::uniform(2, Link::ideal());
        let err = AsyncSplitTrainer::new(
            cfg,
            &data(60),
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("topology"));
    }

    #[test]
    fn heterogeneous_latency_slows_completion() {
        let fast = StarTopology::uniform(2, Link::wan(1.0, 100.0));
        let slow = StarTopology::uniform(2, Link::wan(200.0, 100.0));
        let rf = run_with(SchedulingPolicy::Fifo, fast, 2, 1);
        let rs = run_with(SchedulingPolicy::Fifo, slow, 2, 1);
        assert!(
            rs.sim_seconds > rf.sim_seconds * 2.0,
            "{} vs {}",
            rs.sim_seconds,
            rf.sim_seconds
        );
    }

    #[test]
    fn lossy_network_retransmits_and_still_serves_every_batch() {
        // 20 % loss on client 0's link: with retransmission the run now
        // completes *all* batches (where the old fixed-timeout design
        // silently lost them) at the cost of retransmits and extra
        // messages.
        let top = StarTopology::new(vec![Link::wan(5.0, 100.0).loss(0.2), Link::wan(5.0, 100.0)]);
        let r = run_with(SchedulingPolicy::Fifo, top, 2, 2);
        assert!(r.network_drops > 0, "expected some drops");
        assert!(r.retransmits > 0, "expected retransmissions");
        assert_eq!(r.served_per_client, vec![6, 6]);
        assert_eq!(r.batches_lost, 0);
        // Every drop was either retransmitted or (never, here) given up.
        assert_eq!(r.retransmits + r.retry_exhausted, r.network_drops);
        // Retransmissions cost extra messages over the 12 useful ones.
        assert!(r.comm.uplink_messages + r.comm.downlink_messages > 24);
    }

    #[test]
    fn pathological_loss_exhausts_retries_but_does_not_wedge() {
        // 90 % loss and a tiny retry budget: batches get abandoned, but
        // the run still terminates and the lossless client is unharmed.
        let top = StarTopology::new(vec![Link::wan(5.0, 100.0).loss(0.9), Link::wan(5.0, 100.0)]);
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_retry_policy(RetryPolicy {
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(40),
            jitter_frac: 0.1,
            max_attempts: 2,
        });
        let r = t.run(&test);
        assert!(r.retry_exhausted > 0, "expected exhausted retries: {:?}", r);
        assert!(r.batches_lost > 0);
        assert_eq!(r.batches_lost_per_client[1], 0);
        assert_eq!(r.served_per_client[1], 3);
    }

    #[test]
    fn trace_records_protocol_events() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(32);
        let test = data(8);
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap();
        t.enable_trace();
        t.run(&test);
        let trace = t.trace().expect("trace enabled");
        // 2 clients x 2 batches each: every batch arrives, is served, and
        // its gradient is delivered.
        use stsl_simnet::TraceKind;
        assert_eq!(trace.count(TraceKind::Arrival), 4);
        assert_eq!(trace.count(TraceKind::ServiceStart), 4);
        assert_eq!(trace.count(TraceKind::GradientDelivered), 4);
        assert_eq!(trace.count(TraceKind::SchedulerDrop), 0);
        assert_eq!(trace.count(TraceKind::NetworkDrop), 0);
        assert_eq!(trace.count(TraceKind::Retransmit), 0);
        assert_eq!(trace.count(TraceKind::ClientCrash), 0);
        // CSV export is well-formed.
        assert_eq!(trace.to_csv().lines().count(), 13);
    }

    #[test]
    fn telemetry_collects_distributions_and_journal() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(32);
        let test = data(8);
        let top = StarTopology::new(vec![Link::wan(5.0, 100.0), Link::wan(60.0, 100.0)]);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_telemetry(SimDuration::from_millis(100), 64);
        t.enable_trace();
        let r = t.run(&test);
        assert!(r.snapshots_emitted > 0);
        assert_eq!(r.journal_dropped, 0);
        let hub = t.telemetry().expect("telemetry enabled");
        assert_eq!(hub.snapshots().len() as u64, r.snapshots_emitted);
        // Both clients uplinked twice; the slow link's latencies dominate.
        let up0 = hub
            .registry()
            .histogram(stsl_telemetry::MetricId::UplinkLatency, 0)
            .unwrap();
        let up1 = hub
            .registry()
            .histogram(stsl_telemetry::MetricId::UplinkLatency, 1)
            .unwrap();
        assert_eq!(up0.count(), 2);
        assert_eq!(up1.count(), 2);
        assert!(up1.p50() > up0.p50());
        // Staleness and service time were recorded at apply time.
        assert!(hub
            .registry()
            .histogram(stsl_telemetry::MetricId::GradientStaleness, 0)
            .is_some());
        let svc = hub
            .registry()
            .histogram(stsl_telemetry::MetricId::ServiceTime, 0)
            .unwrap();
        assert_eq!(svc.max(), Some(3_000)); // ComputeModel::default

        // The journal saw every protocol milestone.
        let journal = hub.journal_log();
        assert_eq!(journal.count(JournalKind::Arrival), 4);
        assert_eq!(journal.count(JournalKind::ServiceStart), 4);
        assert_eq!(journal.count(JournalKind::GradientDelivered), 4);
        assert!(journal.count(JournalKind::SnapshotEmit) > 0);
        // Snapshot emissions are traced with the same discipline as every
        // other counter.
        let trace = t.trace().unwrap();
        assert_eq!(
            trace.count(TraceKind::SnapshotEmit) as u64,
            r.snapshots_emitted
        );
        assert_eq!(trace.count(TraceKind::JournalDrop), 0);
    }

    #[test]
    fn tiny_journal_capacity_reports_evictions() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(32);
        let test = data(8);
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_telemetry(SimDuration::from_millis(100), 2);
        t.enable_trace();
        let r = t.run(&test);
        assert!(r.journal_dropped > 0, "a 2-slot ring must evict");
        let hub = t.telemetry().unwrap();
        assert_eq!(hub.journal_log().evicted(), r.journal_dropped);
        assert_eq!(hub.journal_log().len(), 2);
        assert_eq!(
            t.trace().unwrap().count(TraceKind::JournalDrop) as u64,
            r.journal_dropped
        );
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || {
            let top = StarTopology::latency_gradient(3, 1.0, 80.0, 50.0);
            run_with(SchedulingPolicy::RoundRobin, top, 3, 1)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.served_per_client, b.served_per_client);
        assert_eq!(a.final_accuracy, b.final_accuracy);
    }

    #[test]
    fn time_budget_stops_early_and_biases_service_toward_near_clients() {
        // One near, one far client, many epochs, tight budget: the near
        // client gets served more — §II's bias, measurable only under a
        // fixed time budget.
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(50)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let top = StarTopology::new(vec![Link::wan(1.0, 100.0), Link::wan(120.0, 100.0)]);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap();
        let budget = SimDuration::from_millis(3_000);
        let r = t.run_with_budget(&test, Some(budget));
        assert!(
            r.sim_seconds <= budget.as_secs_f64() + 1.0,
            "sim {}s",
            r.sim_seconds
        );
        assert!(
            r.served_per_client[0] > 2 * r.served_per_client[1],
            "near client should dominate under a budget: {:?}",
            r.served_per_client
        );
        assert!(r.service_imbalance > 0.1);
    }

    #[test]
    fn staleness_policy_reports_drops_under_pressure() {
        // Extremely slow server -> deep queue -> stale batches.
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let compute = ComputeModel {
            client_batch: SimDuration::from_millis(1),
            server_batch: SimDuration::from_millis(400),
            retry_timeout: SimDuration::from_millis(100),
        };
        let top = StarTopology::uniform(2, Link::wan(1.0, 100.0));
        let policy = SchedulingPolicy::StalenessDrop {
            max_age: SimDuration::from_millis(50),
        };
        let mut t = AsyncSplitTrainer::new(cfg, &train, top, policy, compute).unwrap();
        let r = t.run(&test);
        assert!(
            r.scheduler_drops > 0,
            "expected stale drops, report {:?}",
            r
        );
        // Scheduler discards count as lost work too.
        assert_eq!(r.batches_lost, r.scheduler_drops);
    }

    #[test]
    fn crash_window_loses_work_then_recovers_from_checkpoint() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(4)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let plan = FaultPlan::new().client_crash(
            EndSystemId(0),
            SimTime::from_millis(40),
            SimTime::from_millis(400),
        );
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_fault_plan(plan)
        .with_auto_checkpoint(SimDuration::from_millis(25));
        t.enable_trace();
        let r = t.run(&test);
        assert_eq!(r.crash_events, 1);
        assert_eq!(r.recovery_events, 1);
        assert_eq!(r.checkpoint_restores, 1);
        assert!(r.checkpoint_saves > 0);
        assert!(
            (r.downtime_ms_per_client[0] - 360.0).abs() < 1.0,
            "downtime {:?}",
            r.downtime_ms_per_client
        );
        assert_eq!(r.downtime_ms_per_client[1], 0.0);
        // The crashed client still finished all its batches after
        // recovery (run-to-completion), minus at most the one lost.
        assert!(r.served_per_client[0] >= 11, "{:?}", r.served_per_client);
        assert_eq!(r.served_per_client[1], 12);
        let trace = t.trace().unwrap();
        assert_eq!(trace.count(TraceKind::ClientCrash), 1);
        assert_eq!(trace.count(TraceKind::ClientRecover), 1);
        assert_eq!(trace.count(TraceKind::CheckpointRestore), 1);
        assert!(trace.count(TraceKind::CheckpointSave) > 0);
        assert!(t.last_checkpoint().is_some());
    }

    #[test]
    fn liveness_detects_dead_client_during_long_crash() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(6)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let plan = FaultPlan::new().client_crash(
            EndSystemId(0),
            SimTime::from_millis(30),
            SimTime::from_millis(800),
        );
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_fault_plan(plan)
        .with_liveness_timeout(SimDuration::from_millis(100));
        let r = t.run(&test);
        assert!(
            r.dead_clients_detected >= 1,
            "server should notice the silence: {:?}",
            r
        );
        // The survivor kept training the whole time (quorum of one).
        assert_eq!(r.served_per_client[1], 18);
    }

    #[test]
    fn server_stall_delays_but_loses_nothing() {
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let mk = |plan: FaultPlan| {
            let cfg = SplitConfig::tiny(CutPoint(1), 2)
                .epochs(1)
                .batch_size(8)
                .seed(4);
            let train = data(48);
            let test = data(20);
            let mut t = AsyncSplitTrainer::new(
                cfg,
                &train,
                top.clone(),
                SchedulingPolicy::Fifo,
                ComputeModel::default(),
            )
            .unwrap()
            .with_fault_plan(plan);
            t.run(&test)
        };
        let clean = mk(FaultPlan::new());
        let stalled =
            mk(FaultPlan::new().server_stall(SimTime::from_millis(10), SimTime::from_millis(300)));
        assert_eq!(stalled.served_per_client, clean.served_per_client);
        assert_eq!(stalled.batches_lost, 0);
        assert!(
            stalled.sim_seconds > clean.sim_seconds + 0.2,
            "stall should delay: {} vs {}",
            stalled.sim_seconds,
            clean.sim_seconds
        );
    }

    #[test]
    fn scheduled_churn_joins_leaves_and_rejoins() {
        // Fleet of 3: clients 0 and 1 start active, client 2 is a
        // pre-declared joiner admitted at 100 ms. Client 0 departs at
        // 150 ms and rejoins at 400 ms, resuming from its last acked
        // batch.
        let mk = || {
            let cfg = SplitConfig::tiny(CutPoint(1), 3)
                .epochs(4)
                .batch_size(8)
                .seed(4);
            let train = data(72);
            let test = data(20);
            let top = StarTopology::uniform(3, Link::wan(5.0, 100.0));
            let plan = FaultPlan::new()
                .client_join(EndSystemId(2), SimTime::from_millis(100))
                .client_leave(EndSystemId(0), SimTime::from_millis(150))
                .client_rejoin(EndSystemId(0), SimTime::from_millis(400));
            let mut t = AsyncSplitTrainer::new(
                cfg,
                &train,
                top,
                SchedulingPolicy::Fifo,
                ComputeModel::default(),
            )
            .unwrap()
            .with_fault_plan(plan)
            .with_auto_checkpoint(SimDuration::from_millis(50));
            t.enable_trace();
            let r = t.run(&test);
            let csv = t.trace().unwrap().to_csv();
            let conserves = t.membership().conserves();
            (r, csv, conserves)
        };
        let (r, csv_a, conserves) = mk();
        assert_eq!(r.clients_joined, 1);
        assert_eq!(r.clients_departed, 1);
        assert_eq!(r.rejoins, 1);
        assert!(conserves, "joined - departed must equal members");
        // The joiner was warm-started from a checkpointed donor.
        assert!(r.checkpoint_restores >= 1, "{:?}", r);
        // Everyone finished every batch: the joiner ran its full shard
        // after admission, the rejoiner replayed its un-acked batch.
        assert_eq!(r.served_per_client, vec![12, 12, 12]);
        assert_eq!(r.batches_lost, 0);
        // Churn is seed-deterministic down to the trace.
        let (_, csv_b, _) = mk();
        assert_eq!(csv_a, csv_b);
    }

    #[test]
    fn overload_control_sheds_oldest_and_bounds_the_queue() {
        // Fast clients, nearly-stalled server, tiny ingress bound: the
        // queue sheds oldest-first and its depth never exceeds the cap.
        let cfg = SplitConfig::tiny(CutPoint(1), 3)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(72);
        let test = data(20);
        let compute = ComputeModel {
            client_batch: SimDuration::from_millis(1),
            server_batch: SimDuration::from_millis(500),
            retry_timeout: SimDuration::from_millis(100),
        };
        let top = StarTopology::uniform(3, Link::wan(1.0, 100.0));
        let mut t = AsyncSplitTrainer::new(cfg, &train, top, SchedulingPolicy::Fifo, compute)
            .unwrap()
            .with_overload_control(OverloadConfig {
                queue_capacity: 1,
                bucket_rate: 1_000,
                bucket_burst: 1_000,
                ..OverloadConfig::default()
            });
        t.enable_trace();
        let r = t.run(&test);
        assert!(r.batches_shed > 0, "expected shedding: {:?}", r);
        assert!(r.max_queue_depth <= 1, "depth {}", r.max_queue_depth);
        assert_eq!(
            t.trace().unwrap().count(TraceKind::IngressShed) as u64,
            r.batches_shed
        );
        assert_eq!(r.batches_lost, r.batches_shed);
        assert!(!t.queue_depth_samples().is_empty());
    }

    #[test]
    fn round_deadlines_apply_partial_quorum_and_abandon_stragglers() {
        // One near client, one pathologically far straggler, short round
        // deadline: the fleet applies partial quorums instead of waiting.
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let top = StarTopology::new(vec![Link::wan(2.0, 100.0), Link::wan(2_000.0, 100.0)]);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_round_deadlines(DeadlineConfig {
            round_ms: 100,
            min_quorum_frac: 0.5,
        });
        t.enable_trace();
        let r = t.run(&test);
        assert!(
            r.deadline_partial_applies > 0,
            "expected partial applies: {:?}",
            r
        );
        assert_eq!(
            t.trace().unwrap().count(TraceKind::DeadlinePartialApply) as u64,
            r.deadline_partial_applies
        );
        // The near client is unharmed; the straggler lost work to the
        // deadline.
        assert_eq!(r.served_per_client[0], 3);
        assert!(r.batches_lost_per_client[1] > 0);
    }

    #[test]
    fn breaker_trips_on_dead_link_and_defers_sends() {
        // Client 0's link drops everything during the surge: the breaker
        // trips after the threshold and defers sends while open.
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(2)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let plan = FaultPlan::new().loss_surge(
            EndSystemId(0),
            0.97,
            SimTime::from_millis(0),
            SimTime::from_millis(300),
        );
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap()
        .with_fault_plan(plan)
        .with_retry_policy(RetryPolicy {
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(30),
            jitter_frac: 0.1,
            max_attempts: 30,
        })
        .with_overload_control(OverloadConfig::default());
        t.enable_trace();
        let r = t.run(&test);
        assert!(r.breaker_trips > 0, "expected breaker trips: {:?}", r);
        assert_eq!(
            t.trace().unwrap().count(TraceKind::BreakerTrip) as u64,
            r.breaker_trips
        );
        // The healthy client is untouched by client 0's breaker.
        assert_eq!(r.served_per_client[1], 6);
    }

    #[test]
    fn faulty_runs_are_seed_deterministic() {
        let mk = || {
            let cfg = SplitConfig::tiny(CutPoint(1), 2)
                .epochs(2)
                .batch_size(8)
                .seed(9);
            let train = data(48);
            let test = data(20);
            let top = StarTopology::new(vec![
                Link::wan(5.0, 100.0).loss(0.15),
                Link::wan(40.0, 100.0),
            ]);
            let plan = FaultPlan::new()
                .client_crash(
                    EndSystemId(1),
                    SimTime::from_millis(50),
                    SimTime::from_millis(250),
                )
                .loss_surge(
                    EndSystemId(0),
                    0.3,
                    SimTime::from_millis(0),
                    SimTime::from_millis(200),
                );
            let mut t = AsyncSplitTrainer::new(
                cfg,
                &train,
                top,
                SchedulingPolicy::Fifo,
                ComputeModel::default(),
            )
            .unwrap()
            .with_fault_plan(plan)
            .with_auto_checkpoint(SimDuration::from_millis(40));
            t.enable_trace();
            let r = t.run(&test);
            let csv = t.trace().unwrap().to_csv();
            (r, csv)
        };
        let (a, csv_a) = mk();
        let (b, csv_b) = mk();
        assert_eq!(csv_a, csv_b, "identical seeds must reproduce the trace");
        assert_eq!(a.retransmits, b.retransmits);
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.downtime_ms_per_client, b.downtime_ms_per_client);
    }
}
