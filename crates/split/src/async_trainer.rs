//! The asynchronous, network-simulated spatio-temporal trainer.
//!
//! Where [`crate::SpatioTemporalTrainer`] idealizes the network away, this
//! trainer runs the same protocol over a [`stsl_simnet`] star topology in
//! simulated time: activations and gradients take real (sampled) transfer
//! times, the server has a finite per-batch service time, and arrivals
//! wait in an [`crate::ArrivalQueue`] governed by a
//! [`crate::SchedulingPolicy`]. This is the machinery behind experiment E4
//! (queueing/staleness/scheduling) and the latency half of E5.

use crate::client::EndSystem;
use crate::config::SplitConfig;
use crate::protocol::{ActivationMsg, GradientMsg};
use crate::report::{AsyncReport, CommReport};
use crate::scheduler::{ArrivalQueue, SchedulingPolicy};
use crate::server::CentralServer;
use crate::trainer::ConfigError;
use stsl_data::{ImageDataset, Partition};
use stsl_simnet::{EndSystemId, EventQueue, SimDuration, SimTime, StarTopology, TraceKind, TraceLog};
use stsl_tensor::init::{derive_seed, rng_from_seed};

/// Timing knobs of the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Time an end-system needs to forward one batch through its private
    /// layers (and to apply a returned gradient).
    pub client_batch: SimDuration,
    /// Time the server needs to process one batch (forward + backward +
    /// step).
    pub server_batch: SimDuration,
    /// How long a client waits for a lost message before abandoning the
    /// batch and moving on.
    pub retry_timeout: SimDuration,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            client_batch: SimDuration::from_millis(5),
            server_batch: SimDuration::from_millis(3),
            retry_timeout: SimDuration::from_millis(500),
        }
    }
}

#[derive(Debug)]
enum Event {
    /// Activations reached the server.
    Arrival(ActivationMsg),
    /// A gradient reached its end-system.
    GradArrival(GradientMsg),
    /// The server finished a batch and can pick the next queued one.
    ServerFree,
    /// A client's outstanding batch is presumed lost; skip it.
    ClientSkip(EndSystemId),
}

/// Asynchronous trainer over a simulated network.
#[derive(Debug)]
pub struct AsyncSplitTrainer {
    config: SplitConfig,
    topology: StarTopology,
    policy: SchedulingPolicy,
    compute: ComputeModel,
    server: CentralServer,
    clients: Vec<EndSystem>,
    queue: ArrivalQueue,
    events: EventQueue<Event>,
    link_rngs: Vec<rand::rngs::StdRng>,
    server_busy_until: SimTime,
    comm: CommReport,
    network_drops: u64,
    client_epoch: Vec<u64>,
    trace: Option<TraceLog>,
}

impl AsyncSplitTrainer {
    /// Builds the trainer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid or the
    /// topology size disagrees with `config.end_systems`.
    pub fn new(
        config: SplitConfig,
        train: &ImageDataset,
        topology: StarTopology,
        policy: SchedulingPolicy,
        compute: ComputeModel,
    ) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError)?;
        if topology.len() != config.end_systems {
            return Err(ConfigError(format!(
                "topology has {} links but config has {} end-systems",
                topology.len(),
                config.end_systems
            )));
        }
        if train.len() < config.end_systems {
            return Err(ConfigError("dataset smaller than client count".into()));
        }
        let partition: Partition = config.partition.into();
        let shards = partition.split(train, config.end_systems, derive_seed(config.seed, 7));
        let (_, server_model) = config.arch.build_split(config.cut, config.seed);
        let server = CentralServer::new(server_model, config.build_optimizer(), config.end_systems);
        let clients: Vec<EndSystem> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let client_seed = derive_seed(config.seed, 1000 + i as u64);
                let (client_model, _) = config.arch.build_split(config.cut, client_seed);
                EndSystem::new(
                    EndSystemId(i),
                    client_model,
                    shard,
                    config.batch_size,
                    config.build_optimizer(),
                    config.augment,
                    client_seed,
                )
                .with_smash_noise(config.smash_noise)
            })
            .collect();
        let link_rngs = (0..config.end_systems)
            .map(|i| rng_from_seed(derive_seed(config.seed, 5000 + i as u64)))
            .collect();
        let queue = ArrivalQueue::new(policy, config.end_systems);
        Ok(AsyncSplitTrainer {
            config,
            topology,
            policy,
            compute,
            server,
            clients,
            queue,
            events: EventQueue::new(),
            link_rngs,
            server_busy_until: SimTime::ZERO,
            comm: CommReport::default(),
            network_drops: 0,
            client_epoch: Vec::new(),
            trace: None,
        })
    }

    /// Enables event tracing; every arrival, service start, gradient
    /// delivery and drop is recorded for later inspection via
    /// [`AsyncSplitTrainer::trace`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceLog::new());
    }

    /// The event trace, if [`AsyncSplitTrainer::enable_trace`] was called.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    fn trace_event(&mut self, at: SimTime, kind: TraceKind, id: EndSystemId) {
        if let Some(log) = &mut self.trace {
            log.record(at, kind, id);
        }
    }

    /// Runs the configured number of client epochs to completion and
    /// evaluates on `test`.
    pub fn run(&mut self, test: &ImageDataset) -> AsyncReport {
        self.run_with_budget(test, None)
    }

    /// Like [`AsyncSplitTrainer::run`], but stops the simulation once the
    /// clock passes `budget` (if given), even if clients still have
    /// batches left.
    ///
    /// Fixed-time-budget runs are how the §II "biased learning" effect is
    /// measured: under a wall-clock budget, far end-systems complete fewer
    /// batches, so per-client service counts diverge and the scheduling
    /// policy matters. (In run-to-completion mode every batch is served
    /// eventually and totals are trivially equal.)
    pub fn run_with_budget(
        &mut self,
        test: &ImageDataset,
        budget: Option<stsl_simnet::SimDuration>,
    ) -> AsyncReport {
        self.client_epoch = vec![0; self.clients.len()];
        for c in &mut self.clients {
            c.begin_epoch(0);
        }
        // Kick off: every client computes its first batch at t = 0.
        for i in 0..self.clients.len() {
            self.launch_next_batch(EndSystemId(i), SimTime::ZERO);
        }
        // Drain the event loop.
        while let Some((t, event)) = self.events.pop() {
            if let Some(b) = budget {
                if t.since(SimTime::ZERO) > b {
                    break;
                }
            }
            match event {
                Event::Arrival(msg) => {
                    self.trace_event(t, TraceKind::Arrival, msg.from);
                    self.queue.push(t, msg);
                    self.try_serve(t);
                }
                Event::ServerFree => {
                    self.try_serve(t);
                }
                Event::GradArrival(grad) => {
                    let id = grad.to;
                    self.trace_event(t, TraceKind::GradientDelivered, id);
                    self.clients[id.0].apply_gradient(&grad);
                    // The gradient application costs client compute time.
                    self.launch_next_batch(id, t + self.compute.client_batch);
                }
                Event::ClientSkip(id) => {
                    self.clients[id.0].abandon_outstanding();
                    self.launch_next_batch(id, t);
                }
            }
        }
        let sim_seconds = self.events.now().as_secs_f64();
        let per: Vec<f32> = {
            let batch = self.config.batch_size.max(32);
            let server = &mut self.server;
            self.clients
                .iter_mut()
                .map(|c| server.evaluate_with_encoder(test, batch, |x| c.encode(x)))
                .collect()
        };
        let final_accuracy = per.iter().sum::<f32>() / per.len().max(1) as f32;
        AsyncReport {
            policy: self.policy.to_string(),
            end_systems: self.config.end_systems,
            cut_blocks: self.config.cut.blocks(),
            sim_seconds,
            final_accuracy,
            served_per_client: self.queue.served_per_client().to_vec(),
            service_imbalance: self.queue.service_imbalance(),
            mean_queue_depth: self.queue.mean_depth(),
            max_queue_depth: self.queue.max_depth(),
            mean_queue_wait_ms: self.queue.mean_wait().as_micros() as f64 / 1e3,
            scheduler_drops: self.queue.dropped(),
            network_drops: self.network_drops,
            comm: self.comm,
        }
    }

    /// Computes client `id`'s next batch starting at `t` and sends it
    /// uplink. Advances the client's epoch when its shard is exhausted;
    /// stops silently after the final epoch.
    fn launch_next_batch(&mut self, id: EndSystemId, t: SimTime) {
        let client = &mut self.clients[id.0];
        if client.epoch_finished() {
            let next_epoch = self.client_epoch[id.0] + 1;
            if next_epoch >= self.config.epochs as u64 {
                return; // this client is done for good
            }
            self.client_epoch[id.0] = next_epoch;
            client.begin_epoch(next_epoch);
        }
        let Some(msg) = client.next_batch() else {
            return;
        };
        let bytes = msg.encoded_len();
        let send_at = t + self.compute.client_batch;
        let link = *self.topology.link(id);
        match link.transfer(bytes, &mut self.link_rngs[id.0]) {
            Some(dur) => {
                self.comm.uplink_bytes += bytes as u64;
                self.comm.uplink_messages += 1;
                self.events.schedule(send_at + dur, Event::Arrival(msg));
            }
            None => {
                self.network_drops += 1;
                self.trace_event(send_at, TraceKind::NetworkDrop, id);
                self.events
                    .schedule(send_at + self.compute.retry_timeout, Event::ClientSkip(id));
            }
        }
    }

    /// If the server is idle at `t`, pops the next job per the scheduling
    /// policy, processes it and schedules the completion + gradient
    /// delivery. Clients whose jobs were discarded as stale are told to
    /// skip.
    fn try_serve(&mut self, t: SimTime) {
        if self.server_busy_until > t || self.queue.is_empty() {
            return;
        }
        let (job, discarded) = self.queue.pop(t);
        for msg in discarded {
            self.trace_event(t, TraceKind::SchedulerDrop, msg.from);
            // The client is still awaiting a gradient for this batch.
            self.events.schedule(t, Event::ClientSkip(msg.from));
        }
        let Some(job) = job else { return };
        self.trace_event(t, TraceKind::ServiceStart, job.msg.from);
        let out = self.server.process(&job.msg);
        let done = t + self.compute.server_batch;
        self.server_busy_until = done;
        self.events.schedule(done, Event::ServerFree);
        let id = out.gradient.to;
        let bytes = out.gradient.encoded_len();
        let link = *self.topology.link(id);
        match link.transfer(bytes, &mut self.link_rngs[id.0]) {
            Some(dur) => {
                self.comm.downlink_bytes += bytes as u64;
                self.comm.downlink_messages += 1;
                self.events
                    .schedule(done + dur, Event::GradArrival(out.gradient));
            }
            None => {
                self.network_drops += 1;
                self.trace_event(done, TraceKind::NetworkDrop, id);
                self.events
                    .schedule(done + self.compute.retry_timeout, Event::ClientSkip(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CutPoint;
    use stsl_data::SyntheticCifar;
    use stsl_simnet::Link;

    fn data(n: usize) -> ImageDataset {
        SyntheticCifar::new(3)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    fn run_with(
        policy: SchedulingPolicy,
        topology: StarTopology,
        clients: usize,
        epochs: usize,
    ) -> AsyncReport {
        let cfg = SplitConfig::tiny(CutPoint(1), clients)
            .epochs(epochs)
            .batch_size(8)
            .seed(4);
        let train = data(clients * 24);
        let test = data(40);
        let mut t =
            AsyncSplitTrainer::new(cfg, &train, topology, policy, ComputeModel::default()).unwrap();
        t.run(&test)
    }

    #[test]
    fn completes_and_serves_every_batch_homogeneous() {
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let r = run_with(SchedulingPolicy::Fifo, top, 2, 1);
        // 24 samples per client, batch 8 -> 3 batches each.
        assert_eq!(r.served_per_client, vec![3, 3]);
        assert_eq!(r.scheduler_drops, 0);
        assert_eq!(r.network_drops, 0);
        assert!(r.sim_seconds > 0.0);
        assert_eq!(r.comm.uplink_messages, 6);
        assert_eq!(r.comm.downlink_messages, 6);
    }

    #[test]
    fn topology_size_must_match_clients() {
        let cfg = SplitConfig::tiny(CutPoint(1), 3);
        let top = StarTopology::uniform(2, Link::ideal());
        let err = AsyncSplitTrainer::new(
            cfg,
            &data(60),
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("topology"));
    }

    #[test]
    fn heterogeneous_latency_slows_completion() {
        let fast = StarTopology::uniform(2, Link::wan(1.0, 100.0));
        let slow = StarTopology::uniform(2, Link::wan(200.0, 100.0));
        let rf = run_with(SchedulingPolicy::Fifo, fast, 2, 1);
        let rs = run_with(SchedulingPolicy::Fifo, slow, 2, 1);
        assert!(
            rs.sim_seconds > rf.sim_seconds * 2.0,
            "{} vs {}",
            rs.sim_seconds,
            rf.sim_seconds
        );
    }

    #[test]
    fn lossy_network_drops_but_still_completes() {
        let top = StarTopology::new(vec![Link::wan(5.0, 100.0).loss(0.2), Link::wan(5.0, 100.0)]);
        let r = run_with(SchedulingPolicy::Fifo, top, 2, 2);
        assert!(r.network_drops > 0, "expected some drops");
        // The lossless client served all its batches.
        assert_eq!(r.served_per_client[1], 6);
        // The lossy client completed fewer but did not wedge the run.
        assert!(r.served_per_client[0] < 6);
    }

    #[test]
    fn trace_records_protocol_events() {
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).batch_size(8).seed(4);
        let train = data(32);
        let test = data(8);
        let top = StarTopology::uniform(2, Link::wan(5.0, 100.0));
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap();
        t.enable_trace();
        t.run(&test);
        let trace = t.trace().expect("trace enabled");
        // 2 clients x 2 batches each: every batch arrives, is served, and
        // its gradient is delivered.
        use stsl_simnet::TraceKind;
        assert_eq!(trace.count(TraceKind::Arrival), 4);
        assert_eq!(trace.count(TraceKind::ServiceStart), 4);
        assert_eq!(trace.count(TraceKind::GradientDelivered), 4);
        assert_eq!(trace.count(TraceKind::SchedulerDrop), 0);
        assert_eq!(trace.count(TraceKind::NetworkDrop), 0);
        // CSV export is well-formed.
        assert_eq!(trace.to_csv().lines().count(), 13);
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || {
            let top = StarTopology::latency_gradient(3, 1.0, 80.0, 50.0);
            run_with(SchedulingPolicy::RoundRobin, top, 3, 1)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.served_per_client, b.served_per_client);
        assert_eq!(a.final_accuracy, b.final_accuracy);
    }

    #[test]
    fn time_budget_stops_early_and_biases_service_toward_near_clients() {
        // One near, one far client, many epochs, tight budget: the near
        // client gets served more — §II's bias, measurable only under a
        // fixed time budget.
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(50)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let top = StarTopology::new(vec![Link::wan(1.0, 100.0), Link::wan(120.0, 100.0)]);
        let mut t = AsyncSplitTrainer::new(
            cfg,
            &train,
            top,
            SchedulingPolicy::Fifo,
            ComputeModel::default(),
        )
        .unwrap();
        let budget = SimDuration::from_millis(3_000);
        let r = t.run_with_budget(&test, Some(budget));
        assert!(
            r.sim_seconds <= budget.as_secs_f64() + 1.0,
            "sim {}s",
            r.sim_seconds
        );
        assert!(
            r.served_per_client[0] > 2 * r.served_per_client[1],
            "near client should dominate under a budget: {:?}",
            r.served_per_client
        );
        assert!(r.service_imbalance > 0.1);
    }

    #[test]
    fn staleness_policy_reports_drops_under_pressure() {
        // Extremely slow server -> deep queue -> stale batches.
        let cfg = SplitConfig::tiny(CutPoint(1), 2)
            .epochs(1)
            .batch_size(8)
            .seed(4);
        let train = data(48);
        let test = data(20);
        let compute = ComputeModel {
            client_batch: SimDuration::from_millis(1),
            server_batch: SimDuration::from_millis(400),
            retry_timeout: SimDuration::from_millis(100),
        };
        let top = StarTopology::uniform(2, Link::wan(1.0, 100.0));
        let policy = SchedulingPolicy::StalenessDrop {
            max_age: SimDuration::from_millis(50),
        };
        let mut t = AsyncSplitTrainer::new(cfg, &train, top, policy, compute).unwrap();
        let r = t.run(&test);
        assert!(
            r.scheduler_drops > 0,
            "expected stale drops, report {:?}",
            r
        );
    }
}
