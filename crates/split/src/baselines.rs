//! Baselines the paper compares against (explicitly or implicitly).
//!
//! * [`CentralizedTrainer`] — all layers at the server, pooled data: the
//!   "Nothing (all layers are in the server)" row of Table I, the
//!   accuracy ceiling.
//! * [`vanilla_split`] — classic single-end-system split learning
//!   (Fig. 1 of the paper), i.e. the spatio-temporal trainer with N = 1.
//! * [`FedAvgTrainer`] — federated averaging, the mainstream alternative
//!   for the same privacy goal, used in the communication-cost experiment
//!   (E6): FedAvg ships full model weights every round, split learning
//!   ships per-batch activations.

use crate::config::SplitConfig;
use crate::model::CutPoint;
use crate::report::{CommReport, EpochStats, TrainReport};
use crate::trainer::{ConfigError, SpatioTemporalTrainer};
use stsl_data::{BatchPlan, ImageDataset, Partition};
use stsl_nn::loss::SoftmaxCrossEntropy;
use stsl_nn::metrics::RunningMean;
use stsl_nn::Sequential;
use stsl_tensor::init::derive_seed;
use stsl_tensor::Tensor;

/// Centralized training: one model, all data in one place (no privacy).
#[derive(Debug)]
pub struct CentralizedTrainer {
    config: SplitConfig,
    model: Sequential,
}

impl CentralizedTrainer {
    /// Builds the baseline from the same config as the split trainers
    /// (cut and end-system count are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on invalid hyper-parameters.
    pub fn new(config: SplitConfig) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError)?;
        let model = config.arch.build(config.seed);
        Ok(CentralizedTrainer { config, model })
    }

    /// Trains on pooled `train`, evaluating on `test` after each epoch.
    pub fn train(&mut self, train: &ImageDataset, test: &ImageDataset) -> TrainReport {
        let start = crate::WallTimer::start();
        let plan = BatchPlan::new(self.config.batch_size, derive_seed(self.config.seed, 11));
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = self.config.build_optimizer();
        let mut epochs = Vec::new();
        for e in 0..self.config.epochs {
            let mut l = RunningMean::new();
            let mut a = RunningMean::new();
            for (images, targets) in plan.epoch(train, e as u64) {
                let batch_loss = self
                    .model
                    .train_batch(&images, &targets, &loss, opt.as_mut());
                l.push(batch_loss);
                let preds = self.model.predict(&images);
                a.push(stsl_nn::metrics::accuracy(&preds, &targets));
            }
            let test_accuracy = self.evaluate(test);
            epochs.push(EpochStats {
                epoch: e,
                train_loss: l.mean().unwrap_or(0.0),
                train_accuracy: a.mean().unwrap_or(0.0),
                test_accuracy,
                anomalies_rejected: 0,
                rollbacks: 0,
            });
        }
        let final_accuracy = self.evaluate(test);
        TrainReport {
            label: CutPoint(0).label(),
            end_systems: 1,
            cut_blocks: 0,
            epochs,
            final_accuracy,
            per_client_accuracy: vec![final_accuracy],
            comm: CommReport::default(),
            wall_seconds: start.seconds(),
            anomalies_rejected: 0,
            rollbacks: 0,
        }
    }

    /// Test accuracy of the current model.
    pub fn evaluate(&mut self, test: &ImageDataset) -> f32 {
        let batch = self.config.batch_size.max(32);
        let mut hits = 0usize;
        let mut start = 0;
        while start < test.len() {
            let end = (start + batch).min(test.len());
            let indices: Vec<usize> = (start..end).collect();
            let (images, targets) = test.batch(&indices);
            let preds = self.model.predict(&images);
            hits += preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
            start = end;
        }
        hits as f32 / test.len().max(1) as f32
    }

    /// The underlying model (for the privacy experiments).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

/// Classic split learning with a single end-system (the paper's Fig. 1):
/// exactly the spatio-temporal trainer specialized to N = 1.
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is invalid.
pub fn vanilla_split(
    config: SplitConfig,
    train: &ImageDataset,
) -> Result<SpatioTemporalTrainer, ConfigError> {
    let mut cfg = config;
    cfg.end_systems = 1;
    SpatioTemporalTrainer::new(cfg, train)
}

/// Federated averaging over the full model.
#[derive(Debug)]
pub struct FedAvgTrainer {
    config: SplitConfig,
    global: Sequential,
    shards: Vec<ImageDataset>,
    /// Local epochs per communication round.
    local_epochs: usize,
    comm: CommReport,
}

impl FedAvgTrainer {
    /// Builds the baseline: `config.end_systems` clients, full-model
    /// replicas, `local_epochs` local passes between averaging rounds.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on invalid configuration.
    pub fn new(
        config: SplitConfig,
        train: &ImageDataset,
        local_epochs: usize,
    ) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError)?;
        if local_epochs == 0 {
            return Err(ConfigError("local_epochs must be positive".into()));
        }
        if train.len() < config.end_systems {
            return Err(ConfigError("dataset smaller than client count".into()));
        }
        let partition: Partition = config.partition.into();
        let shards = partition.split(train, config.end_systems, derive_seed(config.seed, 7));
        let global = config.arch.build(config.seed);
        Ok(FedAvgTrainer {
            config,
            global,
            shards,
            local_epochs,
            comm: CommReport::default(),
        })
    }

    /// Size in bytes of one full-model transfer (f32 per parameter), the
    /// unit FedAvg pays twice per client per round.
    pub fn model_bytes(&mut self) -> u64 {
        (self.global.param_count() * 4) as u64
    }

    /// Runs `rounds` communication rounds and evaluates after each.
    pub fn train(&mut self, rounds: usize, test: &ImageDataset) -> TrainReport {
        let start = crate::WallTimer::start();
        let loss = SoftmaxCrossEntropy::new();
        let mut epochs = Vec::new();
        for round in 0..rounds {
            let global_state = self.global.state_dict();
            let model_bytes = self.model_bytes();
            let total: usize = self.shards.iter().map(|s| s.len()).sum();
            let mut averaged: Option<Vec<Tensor>> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                // Download the global model.
                self.comm.downlink_bytes += model_bytes;
                self.comm.downlink_messages += 1;
                let mut local = self.config.arch.build(self.config.seed);
                local.load_state_dict(&global_state);
                let mut opt = self.config.build_optimizer();
                let plan = BatchPlan::new(
                    self.config.batch_size,
                    derive_seed(self.config.seed, 300 + i as u64),
                );
                for le in 0..self.local_epochs {
                    for (images, targets) in
                        plan.epoch(shard, (round * self.local_epochs + le) as u64)
                    {
                        local.train_batch(&images, &targets, &loss, opt.as_mut());
                    }
                }
                // Upload the trained model.
                self.comm.uplink_bytes += model_bytes;
                self.comm.uplink_messages += 1;
                let weight = shard.len() as f32 / total as f32;
                let state = local.state_dict();
                match &mut averaged {
                    None => {
                        averaged = Some(
                            state
                                .iter()
                                .map(|t| {
                                    let mut t = t.clone();
                                    t.scale_inplace(weight);
                                    t
                                })
                                .collect(),
                        );
                    }
                    Some(acc) => {
                        for (a, s) in acc.iter_mut().zip(&state) {
                            a.axpy(weight, s);
                        }
                    }
                }
            }
            self.global
                .load_state_dict(&averaged.expect("at least one client trained"));
            let test_accuracy = self.evaluate(test);
            epochs.push(EpochStats {
                epoch: round,
                train_loss: f32::NAN, // FedAvg reports round accuracy only
                train_accuracy: f32::NAN,
                test_accuracy,
                anomalies_rejected: 0,
                rollbacks: 0,
            });
        }
        let final_accuracy = self.evaluate(test);
        TrainReport {
            label: format!("fedavg(E={})", self.local_epochs),
            end_systems: self.config.end_systems,
            cut_blocks: 0,
            epochs,
            final_accuracy,
            per_client_accuracy: vec![final_accuracy; self.config.end_systems],
            comm: self.comm,
            wall_seconds: start.seconds(),
            anomalies_rejected: 0,
            rollbacks: 0,
        }
    }

    /// Test accuracy of the current global model.
    pub fn evaluate(&mut self, test: &ImageDataset) -> f32 {
        let batch = self.config.batch_size.max(32);
        let mut hits = 0usize;
        let mut start = 0;
        while start < test.len() {
            let end = (start + batch).min(test.len());
            let indices: Vec<usize> = (start..end).collect();
            let (images, targets) = test.batch(&indices);
            let preds = self.global.predict(&images);
            hits += preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
            start = end;
        }
        hits as f32 / test.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_data::SyntheticCifar;

    fn data(n: usize) -> ImageDataset {
        SyntheticCifar::new(3)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    #[test]
    fn centralized_trains_and_improves() {
        let cfg = SplitConfig::tiny(CutPoint(0), 1).epochs(3).seed(2);
        let mut t = CentralizedTrainer::new(cfg).unwrap();
        let report = t.train(&data(160), &data(40));
        assert!(
            report.final_accuracy > 0.2,
            "accuracy {}",
            report.final_accuracy
        );
        assert!(report.epochs.last().unwrap().train_loss < report.epochs[0].train_loss);
        assert_eq!(report.comm.total_bytes(), 0);
    }

    #[test]
    fn vanilla_split_is_single_client() {
        let cfg = SplitConfig::tiny(CutPoint(2), 4); // end_systems overridden
        let t = vanilla_split(cfg, &data(40)).unwrap();
        assert_eq!(t.config().end_systems, 1);
    }

    #[test]
    fn fedavg_rounds_improve_fit_on_training_data() {
        let cfg = SplitConfig::tiny(CutPoint(0), 2)
            .epochs(1)
            .seed(6)
            .learning_rate(0.02);
        let train = data(160);
        let mut t = FedAvgTrainer::new(cfg, &train, 2).unwrap();
        // Measure fit on the training distribution itself: averaging rounds
        // must make the global model better than its random init.
        let before = t.evaluate(&train);
        let report = t.train(4, &train);
        assert!(
            report.final_accuracy > before + 0.05,
            "{} -> {}",
            before,
            report.final_accuracy
        );
        assert_eq!(report.epochs.len(), 4);
    }

    #[test]
    fn fedavg_comm_is_model_sized() {
        let cfg = SplitConfig::tiny(CutPoint(0), 3).seed(1);
        let train = data(60);
        let mut t = FedAvgTrainer::new(cfg, &train, 1).unwrap();
        let mb = t.model_bytes();
        t.train(2, &data(20));
        // 2 rounds × 3 clients × (down + up).
        assert_eq!(t.comm.total_bytes(), 2 * 3 * 2 * mb);
        assert_eq!(t.comm.uplink_messages, 6);
    }

    #[test]
    fn fedavg_rejects_zero_local_epochs() {
        let cfg = SplitConfig::tiny(CutPoint(0), 2);
        assert!(FedAvgTrainer::new(cfg, &data(40), 0).is_err());
    }

    #[test]
    fn averaging_identical_clients_preserves_weights() {
        // With one client holding all data and weight 1.0, a round equals
        // plain local training (sanity of the weighted average).
        let cfg = SplitConfig::tiny(CutPoint(0), 1).epochs(1).seed(9);
        let train = data(40);
        let mut t = FedAvgTrainer::new(cfg, &train, 1).unwrap();
        let report = t.train(1, &data(20));
        assert_eq!(report.per_client_accuracy.len(), 1);
    }
}
