//! Checkpointing: persist and restore a whole split-learning deployment.
//!
//! A checkpoint captures the configuration, the server's upper-model
//! parameters and every end-system's private lower-model parameters. The
//! serialized form is JSON (human-inspectable, version-diffable); restore
//! validates shape compatibility parameter-by-parameter.

use crate::config::SplitConfig;
use crate::trainer::{ConfigError, SpatioTemporalTrainer};
use serde::{Deserialize, Serialize};
use std::path::Path;
use stsl_tensor::Tensor;

/// A serializable snapshot of a [`SpatioTemporalTrainer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The configuration the deployment was built with.
    pub config: SplitConfig,
    /// Server upper-model parameters.
    pub server_state: Vec<Tensor>,
    /// Per-end-system private lower-model parameters.
    pub client_states: Vec<Vec<Tensor>>,
}

impl Checkpoint {
    /// Writes the checkpoint as JSON, atomically: the bytes go to a
    /// sibling `.tmp` file first and are renamed into place, so a crash
    /// mid-write can never leave a truncated checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        std::fs::write(&tmp, json)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }

    /// Reads a checkpoint written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem and deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Checkpoint> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl SpatioTemporalTrainer {
    /// Snapshots the full deployment state.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let config = self.config().clone();
        let server_state = self.server_mut().model_mut().state_dict();
        let client_states = self
            .clients_mut()
            .iter_mut()
            .map(|c| c.model_mut().state_dict())
            .collect();
        Checkpoint {
            config,
            server_state,
            client_states,
        }
    }

    /// Restores parameters from a checkpoint taken on an
    /// identically-configured deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the end-system count differs; panics on
    /// per-tensor shape mismatches (a checkpoint from a different
    /// architecture is a programming error, not a runtime condition).
    pub fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), ConfigError> {
        if checkpoint.client_states.len() != self.clients_mut().len() {
            return Err(ConfigError(format!(
                "checkpoint has {} end-systems but the trainer has {}",
                checkpoint.client_states.len(),
                self.clients_mut().len()
            )));
        }
        self.server_mut()
            .model_mut()
            .load_state_dict(&checkpoint.server_state);
        for (client, state) in self.clients_mut().iter_mut().zip(&checkpoint.client_states) {
            client.model_mut().load_state_dict(state);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CutPoint;
    use stsl_data::SyntheticCifar;

    fn data(n: usize, seed: u64) -> stsl_data::ImageDataset {
        SyntheticCifar::new(seed)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    #[test]
    fn checkpoint_roundtrip_preserves_behaviour() {
        let train = data(48, 1);
        let test = data(16, 2);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(4);
        let mut a = SpatioTemporalTrainer::new(cfg.clone(), &train).unwrap();
        a.train(&test);
        let acc_a = a.evaluate(&test);
        let ckpt = a.checkpoint();

        // A fresh deployment with a different seed behaves differently…
        let mut b = SpatioTemporalTrainer::new(cfg.seed(99), &train).unwrap();
        assert_ne!(b.evaluate(&test), acc_a);
        // …until restored.
        b.restore(&ckpt).unwrap();
        assert_eq!(b.evaluate(&test), acc_a);
    }

    #[test]
    fn checkpoint_survives_disk_roundtrip() {
        let train = data(32, 3);
        let cfg = SplitConfig::tiny(CutPoint(2), 2).epochs(1).seed(5);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        t.run_epoch(0);
        let ckpt = t.checkpoint();
        let dir = std::env::temp_dir().join("stsl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        ckpt.save(&path).unwrap();
        // The temp file of the atomic write is gone after a save.
        assert!(!dir.join("ckpt.json.tmp").exists());
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.server_state, ckpt.server_state);
        assert_eq!(back.client_states, ckpt.client_states);
        assert_eq!(back.config.end_systems, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_or_corrupt_checkpoint_loads_as_clean_error() {
        let train = data(24, 8);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(8);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        let ckpt = t.checkpoint();
        let dir = std::env::temp_dir().join("stsl_ckpt_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        ckpt.save(&path).unwrap();

        // Truncate the file mid-stream, as a crash during a non-atomic
        // write would have.
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Valid JSON of the wrong shape is also a clean error.
        std::fs::write(&path, r#"{"config": 7}"#).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // A missing file surfaces as NotFound, not InvalidData.
        std::fs::remove_file(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn restore_rejects_client_count_mismatch() {
        let train = data(48, 6);
        let cfg2 = SplitConfig::tiny(CutPoint(1), 2).seed(7);
        let cfg3 = SplitConfig::tiny(CutPoint(1), 3).seed(7);
        let mut two = SpatioTemporalTrainer::new(cfg2, &train).unwrap();
        let mut three = SpatioTemporalTrainer::new(cfg3, &train).unwrap();
        let ckpt = two.checkpoint();
        assert!(three.restore(&ckpt).is_err());
    }
}
