//! Checkpointing: persist and restore a whole split-learning deployment.
//!
//! A checkpoint captures the configuration, the server's upper-model
//! parameters and every end-system's private lower-model parameters. The
//! serialized form is JSON (human-inspectable, version-diffable); restore
//! validates shape compatibility parameter-by-parameter.

use crate::config::SplitConfig;
use crate::trainer::{ConfigError, SpatioTemporalTrainer};
use serde::{Deserialize, Serialize};
use std::path::Path;
use stsl_tensor::Tensor;

/// A serializable snapshot of a [`SpatioTemporalTrainer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The configuration the deployment was built with.
    pub config: SplitConfig,
    /// Server upper-model parameters.
    pub server_state: Vec<Tensor>,
    /// Per-end-system private lower-model parameters.
    pub client_states: Vec<Vec<Tensor>>,
}

impl Checkpoint {
    /// Writes the checkpoint as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reads a checkpoint written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem and deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Checkpoint> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl SpatioTemporalTrainer {
    /// Snapshots the full deployment state.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let config = self.config().clone();
        let server_state = self.server_mut().model_mut().state_dict();
        let client_states = self
            .clients_mut()
            .iter_mut()
            .map(|c| c.model_mut().state_dict())
            .collect();
        Checkpoint {
            config,
            server_state,
            client_states,
        }
    }

    /// Restores parameters from a checkpoint taken on an
    /// identically-configured deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the end-system count differs; panics on
    /// per-tensor shape mismatches (a checkpoint from a different
    /// architecture is a programming error, not a runtime condition).
    pub fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), ConfigError> {
        if checkpoint.client_states.len() != self.clients_mut().len() {
            return Err(ConfigError(format!(
                "checkpoint has {} end-systems but the trainer has {}",
                checkpoint.client_states.len(),
                self.clients_mut().len()
            )));
        }
        self.server_mut()
            .model_mut()
            .load_state_dict(&checkpoint.server_state);
        for (client, state) in self.clients_mut().iter_mut().zip(&checkpoint.client_states) {
            client.model_mut().load_state_dict(state);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CutPoint;
    use stsl_data::SyntheticCifar;

    fn data(n: usize, seed: u64) -> stsl_data::ImageDataset {
        SyntheticCifar::new(seed)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    #[test]
    fn checkpoint_roundtrip_preserves_behaviour() {
        let train = data(48, 1);
        let test = data(16, 2);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(4);
        let mut a = SpatioTemporalTrainer::new(cfg.clone(), &train).unwrap();
        a.train(&test);
        let acc_a = a.evaluate(&test);
        let ckpt = a.checkpoint();

        // A fresh deployment with a different seed behaves differently…
        let mut b = SpatioTemporalTrainer::new(cfg.seed(99), &train).unwrap();
        assert_ne!(b.evaluate(&test), acc_a);
        // …until restored.
        b.restore(&ckpt).unwrap();
        assert_eq!(b.evaluate(&test), acc_a);
    }

    #[test]
    fn checkpoint_survives_disk_roundtrip() {
        let train = data(32, 3);
        let cfg = SplitConfig::tiny(CutPoint(2), 2).epochs(1).seed(5);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        t.run_epoch(0);
        let ckpt = t.checkpoint();
        let dir = std::env::temp_dir().join("stsl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.server_state, ckpt.server_state);
        assert_eq!(back.client_states, ckpt.client_states);
        assert_eq!(back.config.end_systems, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_rejects_client_count_mismatch() {
        let train = data(48, 6);
        let cfg2 = SplitConfig::tiny(CutPoint(1), 2).seed(7);
        let cfg3 = SplitConfig::tiny(CutPoint(1), 3).seed(7);
        let mut two = SpatioTemporalTrainer::new(cfg2, &train).unwrap();
        let mut three = SpatioTemporalTrainer::new(cfg3, &train).unwrap();
        let ckpt = two.checkpoint();
        assert!(three.restore(&ckpt).is_err());
    }
}
