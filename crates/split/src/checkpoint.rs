//! Checkpointing: persist and restore a whole split-learning deployment.
//!
//! A checkpoint captures the configuration, the server's upper-model
//! parameters and every end-system's private lower-model parameters. The
//! serialized form is JSON (human-inspectable, version-diffable); restore
//! validates shape compatibility parameter-by-parameter.

use crate::config::SplitConfig;
use crate::trainer::{ConfigError, SpatioTemporalTrainer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::Path;
use stsl_tensor::Tensor;

/// Wraps an I/O error with the path it happened on, preserving the error
/// kind (callers match on `kind()` to distinguish missing from corrupt).
fn annotate(path: &Path, e: std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), format!("{}: {}", path.display(), e))
}

/// A serializable snapshot of a [`SpatioTemporalTrainer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The configuration the deployment was built with.
    pub config: SplitConfig,
    /// Server upper-model parameters.
    pub server_state: Vec<Tensor>,
    /// Per-end-system private lower-model parameters.
    pub client_states: Vec<Vec<Tensor>>,
}

impl Checkpoint {
    /// Writes the checkpoint as JSON, atomically: the bytes go to a
    /// sibling `.tmp` file first and are renamed into place, so a crash
    /// mid-write can never leave a truncated checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization failures, annotated with
    /// the offending path.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let json = serde_json::to_string(self).map_err(|e| {
            annotate(
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidData, e),
            )
        })?;
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        std::fs::write(&tmp, json).map_err(|e| annotate(&tmp, e))?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(annotate(path, e))
            }
        }
    }

    /// Reads a checkpoint written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem and deserialization failures, annotated with
    /// the offending path.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Checkpoint> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| annotate(path, e))?;
        serde_json::from_str(&json).map_err(|e| {
            annotate(
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidData, e),
            )
        })
    }
}

/// The outcome of [`CheckpointRing::load_dir_traced`]: the recovered ring
/// plus one path-annotated error per entry that failed to parse.
#[derive(Debug)]
pub struct RingLoad {
    /// The ring rebuilt from every readable entry, oldest first.
    pub ring: CheckpointRing,
    /// Errors for entries that were skipped (crash mid-write, disk
    /// damage). Each error message names the offending file.
    pub skipped: Vec<std::io::Error>,
}

/// A bounded ring of the last K good checkpoints, newest last.
///
/// The health watchdog rolls back through this ring on divergence: the
/// newest entry first, then — if training diverges again before a fresh
/// good checkpoint lands — progressively older ones. [`CheckpointRing::save_dir`]/
/// [`CheckpointRing::load_dir`] persist the ring for crash→restart
/// recovery; a corrupt entry (e.g. from a crash mid-write) is skipped on
/// load, so restart lands on the newest *readable* state.
#[derive(Debug, Clone, Default)]
pub struct CheckpointRing {
    capacity: usize,
    entries: VecDeque<Checkpoint>,
}

impl CheckpointRing {
    /// Creates an empty ring holding at most `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        // stsl-audit: allow(panic-reachability, reason = "constructor precondition on a compile-time-chosen capacity; a zero-capacity ring is a programming error, not a runtime condition")
        assert!(capacity > 0, "checkpoint ring capacity must be positive");
        CheckpointRing {
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a checkpoint as the newest entry, evicting the oldest when
    /// the ring is full.
    pub fn push(&mut self, checkpoint: Checkpoint) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(checkpoint);
    }

    /// The newest checkpoint, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.entries.back()
    }

    /// Removes and returns the newest checkpoint. Repeated calls walk
    /// backward in time — the rollback escalation path.
    pub fn pop_latest(&mut self) -> Option<Checkpoint> {
        self.entries.pop_back()
    }

    /// Checkpoints currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum checkpoints held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Persists the ring to `dir` as `ring-0.json` (oldest) through
    /// `ring-{n-1}.json` (newest), removing any stale higher-numbered
    /// files from a previous, longer ring.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures, annotated with the offending path.
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| annotate(dir, e))?;
        for (i, entry) in self.entries.iter().enumerate() {
            entry.save(dir.join(format!("ring-{i}.json")))?;
        }
        let mut stale = self.entries.len();
        loop {
            let path = dir.join(format!("ring-{stale}.json"));
            if !path.exists() {
                break;
            }
            std::fs::remove_file(&path).map_err(|e| annotate(&path, e))?;
            stale += 1;
        }
        Ok(())
    }

    /// Loads a ring saved by [`CheckpointRing::save_dir`]. Entries that
    /// fail to parse — a crash mid-write, disk damage — are skipped rather
    /// than fatal: surviving a partially written newest entry is exactly
    /// what the ring is for. An empty or missing directory yields an
    /// empty ring.
    pub fn load_dir(dir: impl AsRef<Path>, capacity: usize) -> CheckpointRing {
        Self::load_dir_traced(dir, capacity).ring
    }

    /// Like [`CheckpointRing::load_dir`], but reports every skipped entry
    /// as a path-annotated [`std::io::Error`] so callers can trace the
    /// data loss instead of discovering it by a shorter ring.
    pub fn load_dir_traced(dir: impl AsRef<Path>, capacity: usize) -> RingLoad {
        let dir = dir.as_ref();
        let mut ring = CheckpointRing::new(capacity);
        let mut skipped = Vec::new();
        let mut i = 0;
        loop {
            let path = dir.join(format!("ring-{i}.json"));
            if !path.exists() {
                break;
            }
            match Checkpoint::load(&path) {
                Ok(entry) => ring.push(entry),
                Err(e) => skipped.push(e),
            }
            i += 1;
        }
        RingLoad { ring, skipped }
    }
}

impl SpatioTemporalTrainer {
    /// Snapshots the full deployment state.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let config = self.config().clone();
        let server_state = self.server_mut().model_mut().state_dict();
        let client_states = self
            .clients_mut()
            .iter_mut()
            .map(|c| c.model_mut().state_dict())
            .collect();
        Checkpoint {
            config,
            server_state,
            client_states,
        }
    }

    /// Restores parameters from a checkpoint taken on an
    /// identically-configured deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the end-system count differs; panics on
    /// per-tensor shape mismatches (a checkpoint from a different
    /// architecture is a programming error, not a runtime condition).
    pub fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), ConfigError> {
        if checkpoint.client_states.len() != self.clients_mut().len() {
            return Err(ConfigError(format!(
                "checkpoint has {} end-systems but the trainer has {}",
                checkpoint.client_states.len(),
                self.clients_mut().len()
            )));
        }
        self.server_mut()
            .model_mut()
            .load_state_dict(&checkpoint.server_state);
        for (client, state) in self.clients_mut().iter_mut().zip(&checkpoint.client_states) {
            client.model_mut().load_state_dict(state);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CutPoint;
    use stsl_data::SyntheticCifar;

    fn data(n: usize, seed: u64) -> stsl_data::ImageDataset {
        SyntheticCifar::new(seed)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    #[test]
    fn checkpoint_roundtrip_preserves_behaviour() {
        let train = data(48, 1);
        let test = data(16, 2);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(4);
        let mut a = SpatioTemporalTrainer::new(cfg.clone(), &train).unwrap();
        a.train(&test);
        let acc_a = a.evaluate(&test);
        let ckpt = a.checkpoint();

        // A fresh deployment with a different seed behaves differently…
        let mut b = SpatioTemporalTrainer::new(cfg.seed(99), &train).unwrap();
        assert_ne!(b.evaluate(&test), acc_a);
        // …until restored.
        b.restore(&ckpt).unwrap();
        assert_eq!(b.evaluate(&test), acc_a);
    }

    #[test]
    fn checkpoint_survives_disk_roundtrip() {
        let train = data(32, 3);
        let cfg = SplitConfig::tiny(CutPoint(2), 2).epochs(1).seed(5);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        t.run_epoch(0);
        let ckpt = t.checkpoint();
        let dir = std::env::temp_dir().join("stsl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        ckpt.save(&path).unwrap();
        // The temp file of the atomic write is gone after a save.
        assert!(!dir.join("ckpt.json.tmp").exists());
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.server_state, ckpt.server_state);
        assert_eq!(back.client_states, ckpt.client_states);
        assert_eq!(back.config.end_systems, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_or_corrupt_checkpoint_loads_as_clean_error() {
        let train = data(24, 8);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(8);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        let ckpt = t.checkpoint();
        let dir = std::env::temp_dir().join("stsl_ckpt_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        ckpt.save(&path).unwrap();

        // Truncate the file mid-stream, as a crash during a non-atomic
        // write would have.
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Valid JSON of the wrong shape is also a clean error.
        std::fs::write(&path, r#"{"config": 7}"#).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // A missing file surfaces as NotFound, not InvalidData.
        std::fs::remove_file(&path).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn load_and_save_errors_name_the_path() {
        let missing = std::env::temp_dir().join("stsl_no_such_ckpt_dir/nope.json");
        let err = Checkpoint::load(&missing).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        assert!(
            err.to_string().contains("nope.json"),
            "error should name the path: {err}"
        );

        let train = data(24, 9);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(9);
        let ckpt = SpatioTemporalTrainer::new(cfg, &train)
            .unwrap()
            .checkpoint();
        let bad_dir = std::env::temp_dir().join("stsl_no_such_ckpt_dir2/sub/ckpt.json");
        let err = ckpt.save(&bad_dir).unwrap_err();
        assert!(
            err.to_string().contains("ckpt.json"),
            "error should name the path: {err}"
        );
    }

    #[test]
    fn ring_evicts_oldest_and_pops_newest_first() {
        let train = data(24, 10);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(10);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        let mut ring = CheckpointRing::new(2);
        assert!(ring.is_empty());
        assert!(ring.latest().is_none());

        // Three distinguishable snapshots (weights move between epochs).
        let a = t.checkpoint();
        t.run_epoch(0);
        let b = t.checkpoint();
        t.run_epoch(1);
        let c = t.checkpoint();
        ring.push(a.clone());
        ring.push(b.clone());
        ring.push(c.clone());
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.capacity(), 2);
        // `a` was evicted; pops walk newest to oldest.
        assert_eq!(ring.latest().unwrap().server_state, c.server_state);
        assert_eq!(ring.pop_latest().unwrap().server_state, c.server_state);
        assert_eq!(ring.pop_latest().unwrap().server_state, b.server_state);
        assert!(ring.pop_latest().is_none());
    }

    #[test]
    fn ring_survives_disk_roundtrip_and_skips_corrupt_entries() {
        let train = data(24, 11);
        let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1).seed(11);
        let mut t = SpatioTemporalTrainer::new(cfg, &train).unwrap();
        let mut ring = CheckpointRing::new(3);
        ring.push(t.checkpoint());
        t.run_epoch(0);
        let good = t.checkpoint();
        ring.push(good.clone());
        t.run_epoch(1);
        ring.push(t.checkpoint());

        let dir = std::env::temp_dir().join("stsl_ring_test");
        std::fs::remove_dir_all(&dir).ok();
        ring.save_dir(&dir).unwrap();
        let back = CheckpointRing::load_dir(&dir, 3);
        assert_eq!(back.len(), 3);
        assert_eq!(
            back.latest().unwrap().server_state,
            ring.latest().unwrap().server_state
        );

        // Corrupt the newest entry, as a crash mid-write would: load lands
        // on the newest *readable* state, and the traced variant names
        // the file that was lost.
        std::fs::write(dir.join("ring-2.json"), "{truncated").unwrap();
        let degraded = CheckpointRing::load_dir_traced(&dir, 3);
        assert_eq!(degraded.ring.len(), 2);
        assert_eq!(
            degraded.ring.latest().unwrap().server_state,
            good.server_state
        );
        assert_eq!(degraded.skipped.len(), 1);
        assert_eq!(degraded.skipped[0].kind(), std::io::ErrorKind::InvalidData);
        assert!(
            degraded.skipped[0].to_string().contains("ring-2.json"),
            "skip error should name the corrupt file: {}",
            degraded.skipped[0]
        );
        // The untraced wrapper sees the same ring.
        assert_eq!(CheckpointRing::load_dir(&dir, 3).len(), 2);

        // Saving a shorter ring removes the stale third file.
        let mut short = CheckpointRing::new(3);
        short.push(good);
        short.save_dir(&dir).unwrap();
        assert!(dir.join("ring-0.json").exists());
        assert!(!dir.join("ring-1.json").exists());
        assert!(!dir.join("ring-2.json").exists());

        // A missing directory is an empty ring, not an error.
        std::fs::remove_dir_all(&dir).ok();
        assert!(CheckpointRing::load_dir(&dir, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_ring_rejected() {
        CheckpointRing::new(0);
    }

    #[test]
    fn restore_rejects_client_count_mismatch() {
        let train = data(48, 6);
        let cfg2 = SplitConfig::tiny(CutPoint(1), 2).seed(7);
        let cfg3 = SplitConfig::tiny(CutPoint(1), 3).seed(7);
        let mut two = SpatioTemporalTrainer::new(cfg2, &train).unwrap();
        let mut three = SpatioTemporalTrainer::new(cfg3, &train).unwrap();
        let ckpt = two.checkpoint();
        assert!(three.restore(&ckpt).is_err());
    }
}
