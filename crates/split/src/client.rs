//! The end-system: private lower layers plus a private data shard.

use crate::protocol::{ActivationMsg, BatchId, DecodeError, GradientMsg};
use stsl_data::{standard_augment, BatchPlan, ImageDataset};
use stsl_nn::optim::Optimizer;
use stsl_nn::{Mode, Sequential};
use stsl_simnet::EndSystemId;
use stsl_tensor::init::{derive_seed, rng_from_seed};
use stsl_tensor::Tensor;

/// A gradient message that does not answer the protocol's outstanding
/// request — either nothing is outstanding, or the batch ids disagree.
///
/// Under a faulty network these are runtime conditions, not programming
/// errors: a retransmitted gradient can arrive after its batch was
/// abandoned, or after a crash wiped the end-system's forward cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A gradient arrived while no batch was outstanding.
    NoBatchOutstanding {
        /// The receiving end-system.
        client: EndSystemId,
    },
    /// A gradient arrived for a different batch than the outstanding one.
    BatchMismatch {
        /// The receiving end-system.
        client: EndSystemId,
        /// The batch the end-system is awaiting.
        expected: BatchId,
        /// The batch the gradient answers.
        got: BatchId,
    },
    /// A frame failed wire-level validation (bad magic, truncation,
    /// checksum mismatch, …).
    Decode(DecodeError),
}

impl From<DecodeError> for ProtocolError {
    fn from(e: DecodeError) -> Self {
        ProtocolError::Decode(e)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NoBatchOutstanding { client } => write!(
                f,
                "end-system {} received a gradient with no batch outstanding",
                client
            ),
            ProtocolError::BatchMismatch {
                client,
                expected,
                got,
            } => write!(
                f,
                "end-system {} got gradient for {} while awaiting {}",
                client, got, expected
            ),
            ProtocolError::Decode(e) => write!(f, "frame rejected: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One end-system (a hospital in the paper's motivating scenario).
///
/// It owns:
/// * the first `k` blocks of the CNN, **privately initialized and never
///   shared or averaged** (the paper's "individual first hidden layers");
/// * a local data shard that never leaves the end-system;
/// * its own optimizer state for the private layers.
///
/// The protocol is strictly request/response per batch: a training-mode
/// forward must be answered by [`EndSystem::apply_gradient`] before the
/// next batch can be produced (enforced at runtime), mirroring how split
/// learning's backward pass needs the matching forward cache.
#[derive(Debug)]
pub struct EndSystem {
    id: EndSystemId,
    model: Sequential,
    data: ImageDataset,
    plan: BatchPlan,
    opt: Box<dyn Optimizer>,
    augment: bool,
    aug_rng: rand::rngs::StdRng,
    epoch: u64,
    batches: Vec<Vec<usize>>,
    cursor: usize,
    awaiting: Option<BatchId>,
    batches_sent: u64,
    grads_applied: u64,
    smash_noise: f32,
    noise_rng: rand::rngs::StdRng,
}

impl EndSystem {
    /// Creates an end-system.
    ///
    /// `model` is the private lower part (possibly empty for cut 0);
    /// `seed` drives batch shuffling and augmentation independently of
    /// other end-systems.
    pub fn new(
        id: EndSystemId,
        model: Sequential,
        data: ImageDataset,
        batch_size: usize,
        opt: Box<dyn Optimizer>,
        augment: bool,
        seed: u64,
    ) -> Self {
        let plan = BatchPlan::new(batch_size, derive_seed(seed, 1));
        EndSystem {
            id,
            model,
            data,
            plan,
            opt,
            augment,
            aug_rng: rng_from_seed(derive_seed(seed, 2)),
            epoch: 0,
            batches: Vec::new(),
            cursor: 0,
            awaiting: None,
            batches_sent: 0,
            grads_applied: 0,
            smash_noise: 0.0,
            noise_rng: rng_from_seed(derive_seed(seed, 3)),
        }
    }

    /// Enables the Gaussian noise defense: every activation tensor that
    /// leaves this end-system gets i.i.d. `N(0, sigma²)` noise added — a
    /// standard mitigation against inversion attacks on the smashed layer,
    /// trading accuracy for privacy (see the `noise_ablation` experiment).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_smash_noise(mut self, sigma: f32) -> Self {
        assert!(sigma >= 0.0, "noise level must be non-negative");
        self.smash_noise = sigma;
        self
    }

    /// This end-system's identifier.
    pub fn id(&self) -> EndSystemId {
        self.id
    }

    /// Number of local samples.
    pub fn samples(&self) -> usize {
        self.data.len()
    }

    /// Batches this end-system produces per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.plan.batches_per_epoch(self.data.len())
    }

    /// Total batches sent so far.
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent
    }

    /// Total gradients applied so far.
    pub fn grads_applied(&self) -> u64 {
        self.grads_applied
    }

    /// Starts epoch `epoch`, reshuffling the local shard.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.batches = self.plan.epoch_indices(self.data.len(), epoch);
        self.cursor = 0;
    }

    /// Whether all batches of the current epoch have been produced.
    pub fn epoch_finished(&self) -> bool {
        self.cursor >= self.batches.len()
    }

    /// Computes the next batch's smashed activations for the server.
    ///
    /// Returns `None` when the epoch is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the previous batch's gradient has not been applied yet.
    pub fn next_batch(&mut self) -> Option<ActivationMsg> {
        assert!(
            self.awaiting.is_none(),
            "end-system {} asked for a new batch while batch {} is outstanding",
            self.id,
            self.awaiting.map(|b| b.to_string()).unwrap_or_default()
        );
        if self.epoch_finished() {
            return None;
        }
        let indices = self.batches[self.cursor].clone();
        let batch_id = BatchId {
            epoch: self.epoch as u32,
            batch: self.cursor as u32,
        };
        self.cursor += 1;
        let (mut images, targets) = self.data.batch(&indices);
        if self.augment {
            images = standard_augment(&images, &mut self.aug_rng);
        }
        let mut activations = self.model.forward(&images, Mode::Train);
        if self.smash_noise > 0.0 {
            let noise = Tensor::randn(activations.dims().to_vec(), &mut self.noise_rng);
            activations.axpy(self.smash_noise, &noise);
        }
        self.awaiting = Some(batch_id);
        self.batches_sent += 1;
        Some(ActivationMsg {
            from: self.id,
            batch_id,
            activations,
            targets,
        })
    }

    /// Applies the server's cut-layer gradient: backpropagates through the
    /// private layers and steps the local optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] — without touching any state — if the
    /// gradient does not answer the outstanding batch.
    pub fn apply_gradient(&mut self, msg: &GradientMsg) -> Result<(), ProtocolError> {
        let expected = self
            .awaiting
            .ok_or(ProtocolError::NoBatchOutstanding { client: self.id })?;
        if msg.batch_id != expected {
            return Err(ProtocolError::BatchMismatch {
                client: self.id,
                expected,
                got: msg.batch_id,
            });
        }
        self.awaiting = None;
        self.grads_applied += 1;
        if self.model.is_empty() {
            return Ok(()); // cut 0: nothing to train locally
        }
        self.model.zero_grads();
        self.model.backward(&msg.grad);
        // Parameter-id base offset: unique per end-system so shared
        // optimizer state could never collide (each client has its own
        // optimizer anyway; the offset is defense in depth).
        self.model
            .step_with_base(self.opt.as_mut(), self.id.0 << 20);
        Ok(())
    }

    /// The batch currently awaiting a gradient, if any.
    pub fn outstanding(&self) -> Option<BatchId> {
        self.awaiting
    }

    /// Abandons the outstanding batch (used when the network dropped the
    /// activations or the server's scheduler discarded them).
    pub fn abandon_outstanding(&mut self) {
        self.awaiting = None;
    }

    /// Abandons the outstanding batch *and* rewinds the epoch cursor so the
    /// un-acked batch is produced again — the rejoin resync path: a client
    /// that departs mid-batch resumes from its last acked batch instead of
    /// silently skipping the one in flight. No-op when nothing is
    /// outstanding. Returns `true` when a batch was rewound.
    pub fn rewind_outstanding(&mut self) -> bool {
        if self.awaiting.take().is_some() {
            self.cursor = self.cursor.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Runs the private encoder in inference mode (evaluation and the
    /// privacy experiments use this). No defense noise is added — this is
    /// the raw encoder output.
    pub fn encode(&mut self, images: &Tensor) -> Tensor {
        self.model.forward(images, Mode::Eval)
    }

    /// Like [`EndSystem::encode`], but with the configured noise defense
    /// applied — this is what an eavesdropper or honest-but-curious server
    /// actually observes on the wire when the defense is active.
    pub fn encode_protected(&mut self, images: &Tensor) -> Tensor {
        let mut out = self.model.forward(images, Mode::Eval);
        if self.smash_noise > 0.0 {
            let noise = Tensor::randn(out.dims().to_vec(), &mut self.noise_rng);
            out.axpy(self.smash_noise, &noise);
        }
        out
    }

    /// Read-only view of the local shard.
    pub fn data(&self) -> &ImageDataset {
        &self.data
    }

    /// The private lower model (for inspection in experiments).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CnnArch, CutPoint};
    use stsl_data::SyntheticCifar;
    use stsl_nn::optim::Sgd;

    fn make_client(cut: usize, n: usize) -> EndSystem {
        let arch = CnnArch::tiny();
        let (client_model, _) = arch.build_split(CutPoint(cut), 5);
        let data = SyntheticCifar::new(0).generate_sized(n, arch.image_side);
        EndSystem::new(
            EndSystemId(0),
            client_model,
            data,
            4,
            Box::new(Sgd::new(0.01)),
            false,
            7,
        )
    }

    #[test]
    fn produces_all_batches_per_epoch() {
        let mut c = make_client(1, 10);
        c.begin_epoch(0);
        assert_eq!(c.batches_per_epoch(), 3);
        let mut count = 0;
        while let Some(msg) = c.next_batch() {
            count += 1;
            // Answer with a zero gradient to unblock the next batch.
            let grad = Tensor::zeros(msg.activations.dims().to_vec());
            c.apply_gradient(&GradientMsg {
                to: c.id(),
                batch_id: msg.batch_id,
                grad,
            })
            .unwrap();
        }
        assert_eq!(count, 3);
        assert!(c.epoch_finished());
        assert_eq!(c.batches_sent(), 3);
        assert_eq!(c.grads_applied(), 3);
    }

    #[test]
    fn activations_have_cut_shape() {
        let mut c = make_client(2, 8);
        c.begin_epoch(0);
        let msg = c.next_batch().unwrap();
        assert_eq!(msg.activations.dims(), &[4, 16, 4, 4]);
        assert_eq!(msg.targets.len(), 4);
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn two_batches_without_gradient_panics() {
        let mut c = make_client(1, 10);
        c.begin_epoch(0);
        c.next_batch();
        c.next_batch();
    }

    #[test]
    fn gradient_without_batch_is_a_typed_error() {
        let mut c = make_client(1, 10);
        c.begin_epoch(0);
        let grad = GradientMsg {
            to: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            grad: Tensor::zeros([1]),
        };
        let err = c.apply_gradient(&grad).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::NoBatchOutstanding {
                client: EndSystemId(0)
            }
        );
        assert!(err.to_string().contains("no batch outstanding"));
        assert_eq!(c.grads_applied(), 0);
    }

    #[test]
    fn mismatched_gradient_is_rejected_without_clearing_state() {
        let mut c = make_client(1, 10);
        c.begin_epoch(0);
        let msg = c.next_batch().unwrap();
        let stale = GradientMsg {
            to: c.id(),
            batch_id: BatchId { epoch: 9, batch: 9 },
            grad: Tensor::zeros(msg.activations.dims().to_vec()),
        };
        let err = c.apply_gradient(&stale).unwrap_err();
        assert!(matches!(err, ProtocolError::BatchMismatch { .. }));
        assert!(err.to_string().contains("awaiting"));
        // The outstanding batch is untouched; the right gradient still
        // applies.
        assert_eq!(c.outstanding(), Some(msg.batch_id));
        c.apply_gradient(&GradientMsg {
            to: c.id(),
            batch_id: msg.batch_id,
            grad: Tensor::zeros(msg.activations.dims().to_vec()),
        })
        .unwrap();
        assert_eq!(c.outstanding(), None);
    }

    #[test]
    fn gradient_updates_private_weights() {
        let mut c = make_client(1, 8);
        c.begin_epoch(0);
        let before = c.model_mut().state_dict();
        let msg = c.next_batch().unwrap();
        let grad = Tensor::ones(msg.activations.dims().to_vec());
        c.apply_gradient(&GradientMsg {
            to: c.id(),
            batch_id: msg.batch_id,
            grad,
        })
        .unwrap();
        let after = c.model_mut().state_dict();
        assert!(
            before.iter().zip(&after).any(|(a, b)| a != b),
            "weights did not move"
        );
    }

    #[test]
    fn abandon_unblocks_next_batch() {
        let mut c = make_client(1, 10);
        c.begin_epoch(0);
        c.next_batch();
        c.abandon_outstanding();
        assert!(c.next_batch().is_some());
    }

    #[test]
    fn rewind_replays_the_unacked_batch() {
        let mut c = make_client(1, 10);
        c.begin_epoch(0);
        let first = c.next_batch().unwrap();
        assert!(c.rewind_outstanding());
        // The same batch id (and indices) comes out again.
        let replay = c.next_batch().unwrap();
        assert_eq!(replay.batch_id, first.batch_id);
        assert_eq!(replay.targets, first.targets);
        // With nothing outstanding, rewind is a no-op.
        c.abandon_outstanding();
        assert!(!c.rewind_outstanding());
        let next = c.next_batch().unwrap();
        assert_eq!(next.batch_id.batch, first.batch_id.batch + 1);
    }

    #[test]
    fn smash_noise_perturbs_outgoing_activations_only() {
        let clean = make_client(1, 8);
        let noisy = make_client(1, 8).with_smash_noise(0.5);
        let mut clean = clean;
        let mut noisy = noisy;
        clean.begin_epoch(0);
        noisy.begin_epoch(0);
        let a = clean.next_batch().unwrap();
        let b = noisy.next_batch().unwrap();
        // Same data, same weights (same seeds) — only the noise differs.
        assert_ne!(a.activations, b.activations);
        let diff = (&a.activations - &b.activations).sq_norm() / a.activations.len() as f32;
        assert!(
            (diff - 0.25).abs() < 0.1,
            "noise variance {} should be ≈ σ² = 0.25",
            diff
        );
        // encode() stays clean; encode_protected() is noisy.
        let (images, _) = noisy.data().batch(&[0, 1]);
        let e1 = noisy.encode(&images);
        let e2 = noisy.encode(&images);
        assert_eq!(e1, e2);
        let p = noisy.encode_protected(&images);
        assert_ne!(p, e1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_rejected() {
        make_client(1, 8).with_smash_noise(-1.0);
    }

    #[test]
    fn cut_zero_client_passes_raw_images() {
        let mut c = make_client(0, 8);
        c.begin_epoch(0);
        let msg = c.next_batch().unwrap();
        assert_eq!(msg.activations.dims(), &[4, 3, 16, 16]);
        let grad = Tensor::zeros(msg.activations.dims().to_vec());
        c.apply_gradient(&GradientMsg {
            to: c.id(),
            batch_id: msg.batch_id,
            grad,
        })
        .unwrap();
    }
}
