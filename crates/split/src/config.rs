//! Configuration for spatio-temporal split-learning runs.

use crate::model::{CnnArch, CutPoint};
use serde::{Deserialize, Serialize};
use stsl_data::Partition;

/// Which optimizer trains both the server part and every end-system part.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// SGD with the given momentum.
    Sgd {
        /// Momentum coefficient (0.0 disables).
        momentum: f32,
    },
    /// Adam with default betas.
    Adam,
}

/// Full configuration of a training run.
///
/// Construct with [`SplitConfig::new`] and customize builder-style:
///
/// ```
/// use stsl_split::{SplitConfig, CutPoint};
///
/// let cfg = SplitConfig::new(CutPoint(1), 4)
///     .epochs(3)
///     .batch_size(32)
///     .learning_rate(0.05);
/// assert_eq!(cfg.end_systems, 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Network architecture.
    pub arch: CnnArch,
    /// How many leading blocks live at the end-systems.
    pub cut: CutPoint,
    /// Number of end-systems sharing the centralized server.
    pub end_systems: usize,
    /// How training data is carved across end-systems.
    pub partition: PartitionKind,
    /// Mini-batch size at every end-system.
    pub batch_size: usize,
    /// Training epochs (each end-system passes over its shard once per
    /// epoch).
    pub epochs: usize,
    /// Learning rate for both halves.
    pub learning_rate: f32,
    /// Optimizer family.
    pub optimizer: OptimizerKind,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Whether to apply flip/crop augmentation at end-systems.
    pub augment: bool,
    /// Standard deviation of the Gaussian noise defense added to every
    /// activation tensor leaving an end-system (0.0 disables; see the
    /// `noise_ablation` experiment for the accuracy/privacy trade-off).
    pub smash_noise: f32,
    /// Probability that an end-system participates in a given epoch
    /// (models the "sparse arrivals" of §II: a far or busy site may skip
    /// rounds entirely). 1.0 = everyone, every epoch.
    pub participation: f32,
}

/// Serializable mirror of [`stsl_data::Partition`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Uniform random shards.
    Iid,
    /// Dirichlet label skew.
    Dirichlet {
        /// Concentration parameter.
        alpha: f32,
    },
    /// Sort-and-deal label shards.
    Shards {
        /// Shards per client.
        shards_per_client: usize,
    },
}

impl From<PartitionKind> for Partition {
    fn from(k: PartitionKind) -> Partition {
        match k {
            PartitionKind::Iid => Partition::Iid,
            PartitionKind::Dirichlet { alpha } => Partition::Dirichlet { alpha },
            PartitionKind::Shards { shards_per_client } => Partition::Shards { shards_per_client },
        }
    }
}

/// Server-side overload protection: bounded ingress, per-client rate
/// limits and per-link circuit breaking. Opt-in via
/// [`crate::AsyncSplitTrainer::with_overload_control`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Ingress-queue bound: arrivals past this depth shed the oldest
    /// pending batch (oldest-staleness-first).
    pub queue_capacity: usize,
    /// Per-client token-bucket refill rate, tokens (admitted batches) per
    /// simulated second.
    pub bucket_rate: u64,
    /// Per-client token-bucket burst size.
    pub bucket_burst: u64,
    /// Consecutive delivery failures on one link before its circuit
    /// breaker trips.
    pub breaker_threshold: u32,
    /// First breaker open window, milliseconds (doubles per failed probe).
    pub breaker_base_open_ms: u64,
    /// Breaker open-window ceiling, milliseconds.
    pub breaker_max_open_ms: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_capacity: 32,
            bucket_rate: 50,
            bucket_burst: 20,
            breaker_threshold: 3,
            breaker_base_open_ms: 100,
            breaker_max_open_ms: 3_000,
        }
    }
}

/// Straggler mitigation: per-round deadlines with partial-quorum apply.
/// Opt-in via [`crate::AsyncSplitTrainer::with_round_deadlines`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlineConfig {
    /// Round length in simulated milliseconds: at each multiple the
    /// trainer checks round progress.
    pub round_ms: u64,
    /// Minimum fraction of active members that must have been served this
    /// round for the partial quorum to apply and stragglers' outstanding
    /// batches to be abandoned. In `(0, 1]`.
    pub min_quorum_frac: f64,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        DeadlineConfig {
            round_ms: 500,
            min_quorum_frac: 0.5,
        }
    }
}

impl SplitConfig {
    /// A sensible default configuration for the paper's setting: the
    /// Fig. 3 CNN, IID shards, SGD momentum 0.9, lr 0.01, batch 32.
    pub fn new(cut: CutPoint, end_systems: usize) -> Self {
        SplitConfig {
            arch: CnnArch::paper(),
            cut,
            end_systems,
            partition: PartitionKind::Iid,
            batch_size: 32,
            epochs: 10,
            learning_rate: 0.01,
            optimizer: OptimizerKind::Sgd { momentum: 0.9 },
            seed: 0,
            augment: false,
            smash_noise: 0.0,
            participation: 1.0,
        }
    }

    /// A fast test configuration on the tiny architecture.
    pub fn tiny(cut: CutPoint, end_systems: usize) -> Self {
        let mut cfg = SplitConfig::new(cut, end_systems);
        cfg.arch = CnnArch::tiny();
        cfg.batch_size = 16;
        cfg.epochs = 2;
        cfg
    }

    /// Sets the architecture (builder style).
    pub fn arch(mut self, arch: CnnArch) -> Self {
        self.arch = arch;
        self
    }

    /// Sets the epoch count (builder style).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the batch size (builder style).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the learning rate (builder style).
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the optimizer (builder style).
    pub fn optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Sets the partition scheme (builder style).
    pub fn partition(mut self, partition: PartitionKind) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the master seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables augmentation (builder style).
    pub fn augment(mut self, augment: bool) -> Self {
        self.augment = augment;
        self
    }

    /// Sets the Gaussian smashed-activation noise defense (builder style).
    pub fn smash_noise(mut self, sigma: f32) -> Self {
        self.smash_noise = sigma;
        self
    }

    /// Sets the per-epoch participation probability (builder style).
    pub fn participation(mut self, participation: f32) -> Self {
        self.participation = participation;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.end_systems == 0 {
            return Err("end_systems must be at least 1".into());
        }
        if self.cut.blocks() > self.arch.blocks() {
            return Err(format!(
                "cut {} exceeds the architecture's {} blocks",
                self.cut.blocks(),
                self.arch.blocks()
            ));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.epochs == 0 {
            return Err("epochs must be positive".into());
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err("learning_rate must be positive".into());
        }
        if self.smash_noise < 0.0 || !self.smash_noise.is_finite() {
            return Err("smash_noise must be non-negative".into());
        }
        if !(self.participation > 0.0 && self.participation <= 1.0) {
            return Err("participation must be in (0, 1]".into());
        }
        if (self.arch.image_side >> self.arch.blocks()) == 0 {
            return Err("image side too small for the number of blocks".into());
        }
        Ok(())
    }

    /// Instantiates the configured optimizer.
    pub fn build_optimizer(&self) -> Box<dyn stsl_nn::optim::Optimizer> {
        match self.optimizer {
            OptimizerKind::Sgd { momentum } => {
                Box::new(stsl_nn::optim::Sgd::new(self.learning_rate).momentum(momentum))
            }
            OptimizerKind::Adam => Box::new(stsl_nn::optim::Adam::new(self.learning_rate)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SplitConfig::new(CutPoint(1), 4).validate(), Ok(()));
        assert_eq!(SplitConfig::tiny(CutPoint(3), 2).validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(SplitConfig::new(CutPoint(1), 0).validate().is_err());
        assert!(SplitConfig::new(CutPoint(6), 1).validate().is_err());
        assert!(SplitConfig::new(CutPoint(1), 1)
            .batch_size(0)
            .validate()
            .is_err());
        assert!(SplitConfig::new(CutPoint(1), 1)
            .epochs(0)
            .validate()
            .is_err());
        assert!(SplitConfig::new(CutPoint(1), 1)
            .learning_rate(0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_chains() {
        let cfg = SplitConfig::new(CutPoint(2), 3)
            .epochs(7)
            .batch_size(64)
            .learning_rate(0.01)
            .seed(9)
            .augment(true)
            .partition(PartitionKind::Dirichlet { alpha: 0.5 });
        assert_eq!(cfg.epochs, 7);
        assert_eq!(cfg.batch_size, 64);
        assert!(cfg.augment);
        assert!(matches!(cfg.partition, PartitionKind::Dirichlet { .. }));
    }

    #[test]
    fn optimizer_construction() {
        let sgd = SplitConfig::new(CutPoint(0), 1).build_optimizer();
        assert_eq!(sgd.learning_rate(), 0.01);
        let adam = SplitConfig::new(CutPoint(0), 1)
            .optimizer(OptimizerKind::Adam)
            .build_optimizer();
        assert_eq!(adam.learning_rate(), 0.01);
    }

    #[test]
    fn partition_kind_converts() {
        let p: Partition = PartitionKind::Dirichlet { alpha: 0.3 }.into();
        assert_eq!(p, Partition::Dirichlet { alpha: 0.3 });
    }

    #[test]
    fn config_serializes() {
        let cfg = SplitConfig::new(CutPoint(1), 2);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SplitConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cut, cfg.cut);
        assert_eq!(back.end_systems, 2);
    }
}
