//! Fleet-scale simulation: 10k–100k+ end-systems on one machine.
//!
//! The paper's premise is *many* spatially distributed end-systems
//! feeding one centralized server, but a faithful per-client model
//! replica at 100k clients would need hundreds of gigabytes. This
//! module makes fleet scale tractable with four moves (DESIGN.md §15):
//!
//! 1. **Calendar event queue** — the simulation loop runs on
//!    [`stsl_simnet::EventQueue`], whose fleet-default calendar backing
//!    keeps per-event cost O(1) amortized at 100k+ pending events.
//! 2. **Cohort-sharded client state** — N end-systems share K
//!    [`EndSystem`] model replicas (one per cohort, each trained on its
//!    own data shard, each with its own init seed), preserving the
//!    paper's per-client divergence mechanism *per cohort*. Memory for
//!    model state is O(K·model); each end-system keeps only a slim
//!    [`FleetMember`] record — identity, admission bucket, liveness,
//!    counters — so faults, membership, and admission control still
//!    operate per end-system.
//! 3. **Streamed batched ingress** — arrivals flow through the same
//!    admission machinery PR 6 built for churn: per-end-system
//!    [`TokenBucket`]s, a bounded [`ArrivalQueue`] with oldest-first
//!    shedding, and a server that drains in batches instead of
//!    per-event wakeups.
//! 4. **Per-cohort telemetry** — queue depth, staleness, service time
//!    and cohort size are keyed by *cohort* id, so a snapshot is
//!    O(cohorts) regardless of N.
//!
//! Everything derives from simulated time and seed-derived hashes (no
//! RNG objects, no wall clock), so a [`FleetReport`] is byte-identical
//! across `STSL_THREADS` values.

use crate::client::EndSystem;
use crate::protocol::ActivationMsg;
use crate::report::FleetReport;
use crate::scheduler::{ArrivalJob, ArrivalQueue, SchedulingPolicy, TokenBucket};
use crate::server::CentralServer;
use stsl_data::{ImageDataset, Partition};
use stsl_nn::optim::Sgd;
use stsl_simnet::{EndSystemId, EventQueue, SimDuration, SimTime, TraceKind, TraceLog};
use stsl_telemetry::{MetricId, TelemetryHub};
use stsl_tensor::init::derive_seed;

use crate::model::{CnnArch, CutPoint};

/// Uplink latency classes end-systems are hashed into: LAN, regional,
/// continental, intercontinental (microseconds).
const LATENCY_CLASSES_US: [u64; 4] = [5_000, 20_000, 60_000, 120_000];

/// Configuration of a fleet run. Everything is deterministic given
/// `seed`; per-end-system variation comes from seed-derived hashes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulated end-systems (N).
    pub clients: usize,
    /// Cohort model replicas shared across them (K).
    pub cohorts: usize,
    /// Network architecture of the cohort replicas.
    pub arch: CnnArch,
    /// Cut depth in blocks.
    pub cut: CutPoint,
    /// Mini-batch size at each cohort replica.
    pub batch_size: usize,
    /// Learning rate (plain SGD on both halves).
    pub learning_rate: f32,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Uplink sends each end-system attempts before going quiet.
    pub sends_per_client: u32,
    /// Admitted arrivals a cohort accumulates before running one real
    /// training step on its shared replica — the knob that decouples
    /// model compute from fleet size.
    pub arrivals_per_step: u64,
    /// Mean think time between an end-system's sends, microseconds.
    pub think_us: u64,
    /// Server drain cadence: one ingress batch per this interval.
    pub serve_interval_us: u64,
    /// Jobs the server consumes per drain (the streamed ingress batch).
    pub ingress_batch: usize,
    /// Bound on the arrival queue; excess sheds oldest-first.
    pub queue_capacity: usize,
    /// Per-end-system admission rate, tokens per simulated second.
    pub admission_rate: u64,
    /// Per-end-system admission burst, tokens.
    pub admission_burst: u64,
    /// Simulated service time recorded per real cohort step, µs.
    pub step_service_us: u64,
    /// Telemetry snapshot cadence, microseconds.
    pub snapshot_every_us: u64,
    /// Per-mille of end-systems that depart mid-run (hash-selected).
    pub leave_permille: u32,
}

impl FleetConfig {
    /// A CI-scale preset: `clients` end-systems in 8 cohorts on the tiny
    /// architecture, a few sends each — finishes in seconds at 1k–10k
    /// clients.
    pub fn smoke(clients: usize) -> Self {
        FleetConfig {
            clients,
            cohorts: 8.min(clients.max(1)),
            arch: CnnArch::tiny(),
            cut: CutPoint(1),
            batch_size: 8,
            learning_rate: 0.05,
            seed: 17,
            sends_per_client: 4,
            arrivals_per_step: (clients as u64 / 2).max(1),
            think_us: 200_000,
            serve_interval_us: 2_000,
            ingress_batch: 64,
            queue_capacity: 4_096,
            admission_rate: 20,
            admission_burst: 4,
            step_service_us: 3_000,
            snapshot_every_us: 100_000,
            leave_permille: 50,
        }
    }

    /// The cross-validation preset both `scale_sweep` and `fleet_sweep`
    /// run: 64 end-systems in 4 cohorts. The two benches sharing this
    /// exact configuration is what makes their overlapping row
    /// comparable point-for-point.
    pub fn crossval64() -> Self {
        FleetConfig {
            clients: 64,
            cohorts: 4,
            arrivals_per_step: 8,
            leave_permille: 0,
            ..FleetConfig::smoke(64)
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("clients must be >= 1".into());
        }
        if self.cohorts == 0 || self.cohorts > self.clients {
            return Err(format!(
                "cohorts must be in 1..={} (got {})",
                self.clients, self.cohorts
            ));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be >= 1".into());
        }
        if self.ingress_batch == 0 {
            return Err("ingress_batch must be >= 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".into());
        }
        if self.arrivals_per_step == 0 {
            return Err("arrivals_per_step must be >= 1".into());
        }
        if self.think_us == 0 || self.serve_interval_us == 0 {
            return Err("think_us and serve_interval_us must be >= 1".into());
        }
        if self.snapshot_every_us == 0 {
            return Err("snapshot_every_us must be >= 1".into());
        }
        if self.leave_permille > 1000 {
            return Err("leave_permille must be <= 1000".into());
        }
        Ok(())
    }
}

/// Slim per-end-system record: everything the fleet tracks per client
/// *besides* the shared cohort replica. Its size is the O(N·small) term
/// of the memory budget, reported as
/// [`FleetReport::per_client_state_bytes`].
#[derive(Debug, Clone, Copy)]
struct FleetMember {
    /// Which cohort replica this end-system trains through.
    cohort: u32,
    /// Latency class index into [`LATENCY_CLASSES_US`].
    latency_class: u8,
    /// Whether the end-system is still in the fleet.
    active: bool,
    /// Uplink sends attempted so far.
    sends_done: u32,
    /// Per-end-system admission control (PR 6's token bucket).
    bucket: TokenBucket,
}

/// A queued fleet arrival: tensor-free, a few dozen bytes. The *sender*
/// for queue accounting (round-robin fairness, telemetry actor keys) is
/// the **cohort**, which is what keeps the queue's bookkeeping and the
/// telemetry registry O(cohorts); the true per-end-system identity rides
/// in [`FleetJob::from`] for membership and admission decisions.
#[derive(Debug, Clone, Copy)]
pub struct FleetJob {
    /// The actual originating end-system.
    pub from: EndSystemId,
    /// The cohort whose replica will consume this arrival.
    pub cohort: u32,
}

impl ArrivalJob for FleetJob {
    fn sender(&self) -> EndSystemId {
        EndSystemId(self.cohort as usize)
    }
}

/// Simulation events. Tensor-free: real training work happens only when
/// a cohort's admitted-arrival credit fills.
#[derive(Debug, Clone, Copy)]
enum FleetEvent {
    /// End-system `i` attempts an uplink send.
    Send(u32),
    /// End-system `i`'s job reaches server ingress.
    Arrival(u32),
    /// The server drains one ingress batch.
    ServerWake,
    /// End-system `i` departs the fleet.
    Depart(u32),
    /// Periodic telemetry snapshot.
    Snapshot,
}

/// The fleet simulator: cohort-sharded clients, batched admission-
/// controlled ingress, per-cohort telemetry.
#[derive(Debug)]
pub struct FleetTrainer {
    config: FleetConfig,
    members: Vec<FleetMember>,
    /// One shared model replica per cohort.
    replicas: Vec<EndSystem>,
    /// Current epoch per cohort (replicas reshuffle per epoch).
    epoch: Vec<u64>,
    /// Admitted arrivals accumulated towards the next real step.
    step_credit: Vec<u64>,
    /// Live end-systems per cohort (for `CohortSize` sampling).
    live: Vec<u64>,
    server: CentralServer,
    queue: ArrivalQueue<FleetJob>,
    events: EventQueue<FleetEvent>,
    telemetry: TelemetryHub,
    trace: TraceLog,
    /// Pending non-snapshot events — the tick-liveness counter that
    /// stops the periodic snapshot from keeping a drained simulation
    /// alive forever.
    pending_work: u64,
    server_busy: bool,
    events_processed: u64,
    sends_attempted: u64,
    admission_rejected: u64,
    served: u64,
    cohort_steps: u64,
    departures: u64,
    snapshots_emitted: u64,
}

impl FleetTrainer {
    /// Builds the fleet: K cohort replicas over a K-way partition of
    /// `train`, N slim member records hashed onto cohorts and latency
    /// classes, and the bounded admission-controlled ingress queue.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration is inconsistent or the
    /// dataset is too small to shard K ways.
    pub fn new(config: FleetConfig, train: &ImageDataset) -> Result<Self, String> {
        config.validate()?;
        if train.len() < config.cohorts {
            return Err(format!(
                "{} samples cannot shard across {} cohorts",
                train.len(),
                config.cohorts
            ));
        }
        let shards = Partition::Iid.split(train, config.cohorts, derive_seed(config.seed, 7));
        let (_, server_model) = config.arch.build_split(config.cut, config.seed);
        let server = CentralServer::new(
            server_model,
            Box::new(Sgd::new(config.learning_rate)),
            config.cohorts,
        );
        let replicas: Vec<EndSystem> = shards
            .into_iter()
            .enumerate()
            .map(|(c, shard)| {
                let cohort_seed = derive_seed(config.seed, 1000 + c as u64);
                let (client_model, _) = config.arch.build_split(config.cut, cohort_seed);
                EndSystem::new(
                    EndSystemId(c),
                    client_model,
                    shard,
                    config.batch_size,
                    Box::new(Sgd::new(config.learning_rate)),
                    false,
                    cohort_seed,
                )
            })
            .collect();
        let mut live = vec![0u64; config.cohorts];
        let members: Vec<FleetMember> = (0..config.clients)
            .map(|i| {
                let cohort = (i % config.cohorts) as u32;
                live[cohort as usize] += 1;
                FleetMember {
                    cohort,
                    latency_class: (derive_seed(config.seed, 2000 + i as u64)
                        % LATENCY_CLASSES_US.len() as u64) as u8,
                    active: true,
                    sends_done: 0,
                    bucket: TokenBucket::new(config.admission_rate, config.admission_burst),
                }
            })
            .collect();
        let queue = ArrivalQueue::new(SchedulingPolicy::Fifo, config.cohorts)
            .with_capacity(config.queue_capacity);
        let epoch = vec![0; config.cohorts];
        let step_credit = vec![0; config.cohorts];
        Ok(FleetTrainer {
            members,
            replicas,
            epoch,
            step_credit,
            live,
            server,
            queue,
            events: EventQueue::new(),
            telemetry: TelemetryHub::new(256),
            trace: TraceLog::with_capacity_limit(65_536),
            pending_work: 0,
            server_busy: false,
            events_processed: 0,
            sends_attempted: 0,
            admission_rejected: 0,
            served: 0,
            cohort_steps: 0,
            departures: 0,
            snapshots_emitted: 0,
            config,
        })
    }

    /// A pure per-end-system hash stream: deterministic jitter without
    /// any RNG object (`derive_seed` is the workspace's sanctioned
    /// seed-mixing primitive, used here as a hash).
    fn jitter(&self, stream: u64, modulus: u64) -> u64 {
        derive_seed(self.config.seed, stream) % modulus.max(1)
    }

    /// The uplink latency of end-system `i`'s send number `n`.
    fn uplink_latency(&self, i: u32, n: u32) -> SimDuration {
        let base = LATENCY_CLASSES_US[self.members[i as usize].latency_class as usize];
        let jitter = self.jitter(3_000_000 + i as u64 * 1_009 + n as u64, base / 4 + 1);
        SimDuration::from_micros(base + jitter)
    }

    /// Schedules a non-snapshot event, maintaining the liveness counter.
    fn schedule_work(&mut self, at: SimTime, ev: FleetEvent) {
        self.pending_work += 1;
        self.events.schedule(at, ev);
    }

    /// Bytes of model parameters across all cohort replicas plus the
    /// server's upper model — the O(cohorts) memory term.
    pub fn model_bytes(&mut self) -> u64 {
        let mut total = self.server.model_mut().param_count() as u64 * 4;
        for r in &mut self.replicas {
            total += r.model_mut().param_count() as u64 * 4;
        }
        total
    }

    /// Bytes of slim per-end-system state — the O(N·small) memory term.
    pub fn per_client_state_bytes(&self) -> u64 {
        (self.members.len() * std::mem::size_of::<FleetMember>()) as u64
    }

    /// The telemetry hub (per-cohort actors only).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.telemetry
    }

    /// The bounded trace log (low-rate events only: cohort steps).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Runs the simulation to completion and evaluates cohort encoders
    /// on `test`.
    pub fn run(&mut self, test: &ImageDataset) -> FleetReport {
        // Seed the event horizon: staggered first sends, hash-selected
        // departures, the first snapshot tick.
        for i in 0..self.config.clients as u32 {
            let offset = self.jitter(4_000_000 + i as u64, self.config.think_us);
            self.schedule_work(SimTime::from_micros(offset), FleetEvent::Send(i));
        }
        if self.config.leave_permille > 0 {
            let horizon = self.config.think_us * self.config.sends_per_client.max(1) as u64;
            for i in 0..self.config.clients as u32 {
                if self.jitter(5_000_000 + i as u64, 1000) < self.config.leave_permille as u64 {
                    let at = self.jitter(6_000_000 + i as u64, horizon);
                    self.schedule_work(SimTime::from_micros(at), FleetEvent::Depart(i));
                }
            }
        }
        self.events.schedule(
            SimTime::from_micros(self.config.snapshot_every_us),
            FleetEvent::Snapshot,
        );

        while let Some((now, ev)) = self.events.pop() {
            self.events_processed += 1;
            match ev {
                FleetEvent::Send(i) => {
                    self.pending_work -= 1;
                    self.on_send(now, i);
                }
                FleetEvent::Arrival(i) => {
                    self.pending_work -= 1;
                    self.on_arrival(now, i);
                }
                FleetEvent::ServerWake => {
                    self.pending_work -= 1;
                    self.on_server_wake(now);
                }
                FleetEvent::Depart(i) => {
                    self.pending_work -= 1;
                    self.on_depart(i);
                }
                FleetEvent::Snapshot => self.on_snapshot(now),
            }
        }

        self.finish(test)
    }

    fn on_send(&mut self, now: SimTime, i: u32) {
        let m = self.members[i as usize];
        if !m.active || m.sends_done >= self.config.sends_per_client {
            return;
        }
        self.members[i as usize].sends_done += 1;
        self.sends_attempted += 1;
        let n = m.sends_done;
        let arrive_at = now + self.uplink_latency(i, n);
        self.schedule_work(arrive_at, FleetEvent::Arrival(i));
        if n < self.config.sends_per_client {
            let think = self.config.think_us
                + self.jitter(
                    7_000_000 + i as u64 * 1_013 + n as u64,
                    self.config.think_us / 2 + 1,
                );
            self.schedule_work(now + SimDuration::from_micros(think), FleetEvent::Send(i));
        }
    }

    fn on_arrival(&mut self, now: SimTime, i: u32) {
        let m = &mut self.members[i as usize];
        if !m.active {
            return;
        }
        if !m.bucket.try_take(now) {
            self.admission_rejected += 1;
            return;
        }
        let job = FleetJob {
            from: EndSystemId(i as usize),
            cohort: m.cohort,
        };
        // Bounded ingress: oldest pending jobs shed under overload; the
        // post-insert depth lands in telemetry keyed by cohort.
        self.queue
            .push_shed_observed(now, job, Some(&mut self.telemetry));
        if !self.server_busy {
            self.server_busy = true;
            let at = now + SimDuration::from_micros(self.config.serve_interval_us);
            self.schedule_work(at, FleetEvent::ServerWake);
        }
    }

    fn on_server_wake(&mut self, now: SimTime) {
        // Streamed batched ingress: drain up to one batch per wake
        // instead of waking per arrival.
        for _ in 0..self.config.ingress_batch {
            let (job, _) = self.queue.pop_observed(now, Some(&mut self.telemetry));
            let Some(job) = job else { break };
            self.served += 1;
            let c = job.msg.cohort as usize;
            self.step_credit[c] += 1;
            if self.step_credit[c] >= self.config.arrivals_per_step {
                self.step_credit[c] = 0;
                self.cohort_step(now, c);
            }
        }
        if self.queue.is_empty() {
            self.server_busy = false;
        } else {
            let at = now + SimDuration::from_micros(self.config.serve_interval_us);
            self.schedule_work(at, FleetEvent::ServerWake);
        }
    }

    /// One real training step on cohort `c`'s shared replica: forward
    /// to the cut, server forward/backward, gradient applied straight
    /// back. This is where the paper's learning actually happens; its
    /// cost is O(cohort_steps), not O(arrivals).
    fn cohort_step(&mut self, now: SimTime, c: usize) {
        let msg: ActivationMsg = match self.replicas[c].next_batch() {
            Some(m) => m,
            None => {
                self.epoch[c] += 1;
                self.replicas[c].begin_epoch(self.epoch[c]);
                match self.replicas[c].next_batch() {
                    Some(m) => m,
                    None => return, // empty shard: nothing to train
                }
            }
        };
        let step = self.server.process_observed(
            &msg,
            None,
            Some(&mut self.telemetry),
            self.config.step_service_us,
        );
        if let Ok(out) = step {
            if self.replicas[c].apply_gradient(&out.gradient).is_err() {
                self.replicas[c].abandon_outstanding();
            }
            self.cohort_steps += 1;
            self.trace
                .record(now, TraceKind::CohortStep, EndSystemId(c));
        } else {
            self.replicas[c].abandon_outstanding();
        }
    }

    fn on_depart(&mut self, i: u32) {
        let m = &mut self.members[i as usize];
        if m.active {
            m.active = false;
            self.departures += 1;
            self.live[m.cohort as usize] = self.live[m.cohort as usize].saturating_sub(1);
        }
    }

    fn on_snapshot(&mut self, now: SimTime) {
        // O(cohorts) per tick: one CohortSize sample per cohort, then
        // the registry snapshot (whose actors are all cohort-keyed).
        for (c, &n) in self.live.iter().enumerate() {
            self.telemetry.record(MetricId::CohortSize, c as u64, n);
        }
        self.telemetry.emit_snapshot(now.as_micros());
        self.snapshots_emitted += 1;
        // Tick liveness: only reschedule while real work is pending,
        // so a drained simulation actually terminates.
        if self.pending_work > 0 {
            self.events.schedule(
                now + SimDuration::from_micros(self.config.snapshot_every_us),
                FleetEvent::Snapshot,
            );
        }
    }

    fn finish(&mut self, test: &ImageDataset) -> FleetReport {
        let per_cohort_accuracy: Vec<f32> = (0..self.config.cohorts)
            .map(|c| {
                let replica = &mut self.replicas[c];
                self.server
                    .evaluate_with_encoder(test, self.config.batch_size, |imgs| {
                        replica.encode(imgs)
                    })
            })
            .collect();
        let final_accuracy = stsl_tensor::mean_f32(&per_cohort_accuracy);
        let sim_seconds = self.events.now().as_micros() as f64 / 1e6;
        let events_per_sim_sec = if sim_seconds > 0.0 {
            self.events_processed as f64 / sim_seconds
        } else {
            0.0
        };
        let model_bytes = self.model_bytes();
        FleetReport {
            clients: self.config.clients,
            cohorts: self.config.cohorts,
            sim_seconds,
            events_processed: self.events_processed,
            events_per_sim_sec,
            sends_attempted: self.sends_attempted,
            admission_rejected: self.admission_rejected,
            shed: self.queue.shed(),
            served: self.served,
            cohort_steps: self.cohort_steps,
            mean_queue_depth: self.queue.mean_depth(),
            max_queue_depth: self.queue.max_depth(),
            mean_staleness_ms: self.queue.mean_wait().as_micros() as f64 / 1e3,
            final_accuracy,
            per_cohort_accuracy,
            model_bytes,
            per_client_state_bytes: self.per_client_state_bytes(),
            departures: self.departures,
            snapshots_emitted: self.snapshots_emitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_data::SyntheticCifar;

    fn data(n: usize) -> ImageDataset {
        SyntheticCifar::new(3)
            .difficulty(0.05)
            .generate_sized(n, 16)
    }

    fn quick_config(clients: usize) -> FleetConfig {
        FleetConfig {
            cohorts: 4,
            sends_per_client: 2,
            arrivals_per_step: (clients as u64 / 4).max(1),
            ..FleetConfig::smoke(clients)
        }
    }

    #[test]
    fn fleet_runs_and_reports() {
        let train = data(64);
        let test = data(16);
        let mut fleet = FleetTrainer::new(quick_config(100), &train).unwrap();
        let report = fleet.run(&test);
        assert_eq!(report.clients, 100);
        assert_eq!(report.cohorts, 4);
        assert!(report.sends_attempted > 0);
        assert!(report.served > 0);
        assert!(report.cohort_steps > 0, "real training must happen");
        assert!(report.sim_seconds > 0.0);
        assert!(report.snapshots_emitted > 0);
        assert_eq!(report.per_cohort_accuracy.len(), 4);
        assert_eq!(
            fleet.trace().count(TraceKind::CohortStep) as u64,
            report.cohort_steps
        );
    }

    #[test]
    fn fleet_is_deterministic() {
        let train = data(64);
        let test = data(16);
        let run = || {
            let mut fleet = FleetTrainer::new(quick_config(200), &train).unwrap();
            let r = fleet.run(&test);
            format!("{r:?}")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn model_memory_is_o_cohorts_not_o_clients() {
        let train = data(64);
        let mut small = FleetTrainer::new(quick_config(100), &train).unwrap();
        let mut large = FleetTrainer::new(quick_config(1_000), &train).unwrap();
        // Same K => identical model bytes, regardless of a 10x client gap.
        assert_eq!(small.model_bytes(), large.model_bytes());
        // Per-client state is slim and linear.
        assert_eq!(
            large.per_client_state_bytes(),
            10 * small.per_client_state_bytes()
        );
        let per_client = large.per_client_state_bytes() / 1_000;
        assert!(
            per_client <= 128,
            "FleetMember grew to {per_client} bytes; keep it slim"
        );
    }

    #[test]
    fn telemetry_actors_are_cohort_keyed() {
        let train = data(64);
        let test = data(16);
        let mut fleet = FleetTrainer::new(quick_config(300), &train).unwrap();
        fleet.run(&test);
        let snap = fleet.telemetry().latest_snapshot().expect("snapshots");
        for metric in &snap.metrics {
            for series in &metric.series {
                assert!(
                    series.actor < 4,
                    "{:?} actor {} is not a cohort id",
                    metric.metric,
                    series.actor
                );
            }
        }
    }

    #[test]
    fn departures_shrink_cohorts() {
        let train = data(64);
        let test = data(16);
        let mut cfg = quick_config(400);
        cfg.leave_permille = 300;
        let mut fleet = FleetTrainer::new(cfg, &train).unwrap();
        let report = fleet.run(&test);
        assert!(report.departures > 0);
        let live_total: u64 = fleet.live.iter().sum();
        assert_eq!(live_total, 400 - report.departures);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(FleetConfig {
            cohorts: 0,
            ..FleetConfig::smoke(10)
        }
        .validate()
        .is_err());
        assert!(FleetConfig {
            cohorts: 11,
            ..FleetConfig::smoke(10)
        }
        .validate()
        .is_err());
        assert!(FleetConfig {
            leave_permille: 1001,
            ..FleetConfig::smoke(10)
        }
        .validate()
        .is_err());
        assert!(FleetConfig::smoke(10).validate().is_ok());
    }
}
