//! The data-plane integrity guard: ingress validation, per-end-system
//! anomaly scoring with quarantine, and a training-health watchdog.
//!
//! PR 1 hardened the *control plane* (retries, liveness, crash recovery);
//! this module hardens the *data plane*. With one server training a single
//! shared model on everyone's activations, a single NaN or norm-exploded
//! update poisons every end-system's model — so updates are validated
//! before they reach the optimizer, repeat offenders are quarantined with
//! a probationary rejoin (mirroring the
//! [`LivenessTracker`](crate::LivenessTracker)'s retire/rejoin life cycle),
//! and a watchdog on loss and gradient norms triggers rollback to the
//! [`CheckpointRing`](crate::CheckpointRing) when training diverges anyway.

use stsl_simnet::{SimDuration, SimTime};
use stsl_telemetry::{JournalKind, TelemetryHub};
use stsl_tensor::Tensor;

/// Tuning knobs for the integrity guard. All-default values are sized for
/// the workspace's tiny CNNs, where healthy activation and gradient RMS
/// values sit around 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Reject an incoming activation tensor whose RMS exceeds this.
    pub max_activation_rms: f32,
    /// Treat a cut-layer gradient whose RMS exceeds this as divergence.
    pub max_gradient_rms: f32,
    /// Declare divergence when the batch loss exceeds this multiple of the
    /// running loss average (after [`GuardConfig::warmup_steps`]).
    pub loss_blowup: f32,
    /// Watchdog observations before the loss-blowup check arms (the first
    /// batches of a fresh model legitimately have wild losses).
    pub warmup_steps: u64,
    /// Anomaly score at which an end-system is quarantined.
    pub quarantine_threshold: f32,
    /// Multiplier applied to an end-system's anomaly score on every clean
    /// update (scores decay instead of accumulating forever).
    pub anomaly_decay: f32,
    /// How long a quarantined end-system's updates are dropped before it
    /// is allowed a probationary rejoin.
    pub probation: SimDuration,
    /// Learning-rate multiplier applied on every watchdog rollback.
    pub lr_cooldown: f32,
    /// Capacity of the good-checkpoint ring the watchdog rolls back to.
    pub ring_capacity: usize,
    /// Robust-aggregation outlier threshold: a window member whose L2
    /// distance from the combined gradient exceeds this multiple of the
    /// window's median distance accrues anomaly score like any other
    /// guard violation. This is what makes the guard *attack*-aware —
    /// adversarially crafted updates are finite and RMS-plausible, so
    /// only their statistical deviation betrays them.
    pub outlier_factor: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            max_activation_rms: 1e3,
            max_gradient_rms: 1e3,
            loss_blowup: 8.0,
            warmup_steps: 16,
            quarantine_threshold: 3.0,
            anomaly_decay: 0.5,
            probation: SimDuration::from_millis(500),
            lr_cooldown: 0.5,
            ring_capacity: 4,
            outlier_factor: 3.0,
        }
    }
}

/// Why ingress validation rejected an update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Anomaly {
    /// The tensor contains NaN or ±∞.
    NonFinite,
    /// The tensor's RMS exceeds the configured limit.
    NormExplosion {
        /// Observed RMS.
        rms: f32,
        /// The configured limit it broke.
        limit: f32,
    },
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Anomaly::NonFinite => write!(f, "non-finite values in update"),
            Anomaly::NormExplosion { rms, limit } => {
                write!(f, "update RMS {rms:.3e} exceeds limit {limit:.3e}")
            }
        }
    }
}

impl std::error::Error for Anomaly {}

/// Root-mean-square of a tensor, accumulated in f64 so huge f32 values do
/// not overflow the sum before the comparison happens.
pub fn tensor_rms(t: &Tensor) -> f32 {
    let sumsq = stsl_tensor::sum_sq_f64(t.as_slice());
    (sumsq / t.len().max(1) as f64).sqrt() as f32
}

/// Ingress check: every element finite, RMS below `max_rms`.
pub fn validate_update(t: &Tensor, max_rms: f32) -> Result<(), Anomaly> {
    if t.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(Anomaly::NonFinite);
    }
    let rms = tensor_rms(t);
    if rms > max_rms {
        return Err(Anomaly::NormExplosion {
            rms,
            limit: max_rms,
        });
    }
    Ok(())
}

/// Admission verdict for an end-system's update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineStatus {
    /// Not quarantined; process normally.
    Clear,
    /// In quarantine; the update must be dropped.
    Dropped,
    /// Probation just expired — this update is the probationary rejoin.
    Released,
}

/// Per-end-system anomaly scores with quarantine and probationary rejoin.
///
/// Every anomaly adds one point to the sender's score; every clean update
/// decays the score by [`GuardConfig::anomaly_decay`]. Crossing
/// [`GuardConfig::quarantine_threshold`] puts the end-system in quarantine:
/// its updates are dropped until [`GuardConfig::probation`] elapses, after
/// which the next update is admitted on probation with a reset score (a
/// relapse re-quarantines it from scratch).
#[derive(Debug, Clone)]
pub struct QuarantineTracker {
    scores: Vec<f32>,
    until: Vec<Option<SimTime>>,
    threshold: f32,
    decay: f32,
    probation: SimDuration,
    quarantines: u64,
    drops: u64,
    releases: u64,
}

impl QuarantineTracker {
    /// Creates a tracker for `end_systems` clean end-systems.
    pub fn new(end_systems: usize, cfg: &GuardConfig) -> Self {
        QuarantineTracker {
            scores: vec![0.0; end_systems],
            until: vec![None; end_systems],
            threshold: cfg.quarantine_threshold,
            decay: cfg.anomaly_decay,
            probation: cfg.probation,
            quarantines: 0,
            drops: 0,
            releases: 0,
        }
    }

    /// Admission check at update-arrival time. Counts drops and handles
    /// the probationary release transition.
    ///
    /// An `id` the tracker has never heard of (possible when the guard-off
    /// `decode_unchecked` path lets a garbled sender field through) is
    /// never admitted: it counts as a drop rather than a panic.
    pub fn admit(&mut self, id: usize, at: SimTime) -> QuarantineStatus {
        let Some(until) = self.until.get_mut(id) else {
            self.drops += 1;
            return QuarantineStatus::Dropped;
        };
        match *until {
            Some(u) if at < u => {
                self.drops += 1;
                QuarantineStatus::Dropped
            }
            Some(_) => {
                *until = None;
                if let Some(score) = self.scores.get_mut(id) {
                    *score = 0.0;
                }
                self.releases += 1;
                QuarantineStatus::Released
            }
            None => QuarantineStatus::Clear,
        }
    }

    /// [`QuarantineTracker::admit`] that also journals the quarantine
    /// life-cycle transitions ([`JournalKind::QuarantineDrop`] /
    /// [`JournalKind::QuarantineRelease`]) into an attached telemetry hub.
    pub fn admit_observed(
        &mut self,
        id: usize,
        at: SimTime,
        telemetry: Option<&mut TelemetryHub>,
    ) -> QuarantineStatus {
        let status = self.admit(id, at);
        if let Some(hub) = telemetry {
            let kind = match status {
                QuarantineStatus::Dropped => Some(JournalKind::QuarantineDrop),
                QuarantineStatus::Released => Some(JournalKind::QuarantineRelease),
                QuarantineStatus::Clear => None,
            };
            if let Some(kind) = kind {
                hub.journal(at.as_micros(), kind, id as u64);
            }
        }
        status
    }

    /// Records an ingress anomaly from `id`. Returns `true` when this
    /// anomaly pushed the end-system over the threshold into quarantine.
    /// Unknown ids are ignored (they are already barred by [`Self::admit`]).
    pub fn record_anomaly(&mut self, id: usize, at: SimTime) -> bool {
        let (Some(score), Some(until)) = (self.scores.get_mut(id), self.until.get_mut(id)) else {
            return false;
        };
        *score += 1.0;
        if until.is_none() && *score >= self.threshold {
            *until = Some(at + self.probation);
            self.quarantines += 1;
            true
        } else {
            false
        }
    }

    /// [`QuarantineTracker::record_anomaly`] that also journals the
    /// quarantine entry ([`JournalKind::Quarantine`]) when the anomaly
    /// trips the threshold.
    pub fn record_anomaly_observed(
        &mut self,
        id: usize,
        at: SimTime,
        telemetry: Option<&mut TelemetryHub>,
    ) -> bool {
        let quarantined = self.record_anomaly(id, at);
        if quarantined {
            if let Some(hub) = telemetry {
                hub.journal(at.as_micros(), JournalKind::Quarantine, id as u64);
            }
        }
        quarantined
    }

    /// Records a clean, accepted update from `id` (decays its score).
    pub fn record_clean(&mut self, id: usize) {
        if let Some(score) = self.scores.get_mut(id) {
            *score *= self.decay;
        }
    }

    /// Current anomaly score of `id` (0 for unknown ids).
    pub fn score(&self, id: usize) -> f32 {
        self.scores.get(id).copied().unwrap_or(0.0)
    }

    /// Whether `id` is quarantined at `at`.
    pub fn in_quarantine(&self, id: usize, at: SimTime) -> bool {
        matches!(self.until.get(id), Some(Some(until)) if at < *until)
    }

    /// Total quarantine entries so far.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Total updates dropped while their sender was quarantined.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Total probationary rejoins.
    pub fn releases(&self) -> u64 {
        self.releases
    }
}

/// Divergence detector over the training-loss and gradient-norm streams.
///
/// Divergence is any of: non-finite loss, non-finite or norm-exploded cut
/// gradient, or — once [`GuardConfig::warmup_steps`] observations are in —
/// a batch loss more than [`GuardConfig::loss_blowup`] times the
/// exponential moving average. On divergence the caller rolls back to the
/// last good checkpoint and calls [`HealthWatchdog::reset`] so the EMA
/// restarts from the restored state.
#[derive(Debug, Clone)]
pub struct HealthWatchdog {
    loss_blowup: f32,
    max_gradient_rms: f32,
    warmup: u64,
    ema: f64,
    observed: u64,
    divergences: u64,
}

/// EMA smoothing factor for the loss average.
const EMA_ALPHA: f64 = 0.1;

impl HealthWatchdog {
    /// Creates a watchdog with the config's thresholds.
    pub fn new(cfg: &GuardConfig) -> Self {
        HealthWatchdog {
            loss_blowup: cfg.loss_blowup,
            max_gradient_rms: cfg.max_gradient_rms,
            warmup: cfg.warmup_steps,
            ema: 0.0,
            observed: 0,
            divergences: 0,
        }
    }

    /// Feeds one served batch. Returns `true` when training has diverged
    /// and the caller must roll back. Diverged observations do not
    /// contaminate the EMA.
    pub fn observe(&mut self, loss: f32, grad_rms: f32) -> bool {
        let blown_up = self.observed >= self.warmup
            && loss as f64 > self.loss_blowup as f64 * self.ema.max(1e-6);
        if !loss.is_finite()
            || !grad_rms.is_finite()
            || grad_rms > self.max_gradient_rms
            || blown_up
        {
            self.divergences += 1;
            return true;
        }
        if self.observed == 0 {
            self.ema = loss as f64;
        } else {
            self.ema = (1.0 - EMA_ALPHA) * self.ema + EMA_ALPHA * loss as f64;
        }
        self.observed += 1;
        false
    }

    /// Clears the loss history (call after restoring a checkpoint).
    pub fn reset(&mut self) {
        self.ema = 0.0;
        self.observed = 0;
    }

    /// Smoothed loss average, if any observations are in.
    pub fn loss_ema(&self) -> Option<f32> {
        (self.observed > 0).then_some(self.ema as f32)
    }

    /// Total divergences detected.
    pub fn divergences(&self) -> u64 {
        self.divergences
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn validate_catches_nan_inf_and_explosion() {
        let ok = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0], [4]);
        assert_eq!(validate_update(&ok, 1e3), Ok(()));
        let nan = Tensor::from_vec(vec![0.5, f32::NAN], [2]);
        assert_eq!(validate_update(&nan, 1e3), Err(Anomaly::NonFinite));
        let inf = Tensor::from_vec(vec![f32::INFINITY, 0.0], [2]);
        assert_eq!(validate_update(&inf, 1e3), Err(Anomaly::NonFinite));
        let huge = Tensor::from_vec(vec![1e5, 1e5], [2]);
        assert!(matches!(
            validate_update(&huge, 1e3),
            Err(Anomaly::NormExplosion { .. })
        ));
        assert!(validate_update(&huge, 1e6).is_ok());
    }

    #[test]
    fn rms_survives_values_that_overflow_f32() {
        let big = Tensor::from_vec(vec![1e30, 1e30], [2]);
        let rms = tensor_rms(&big);
        assert!(rms.is_finite() || rms == f32::INFINITY);
        // f64 accumulation keeps the comparison meaningful: 1e30 > 1e3.
        assert!(matches!(
            validate_update(&big, 1e3),
            Err(Anomaly::NormExplosion { .. })
        ));
    }

    #[test]
    fn quarantine_threshold_probation_and_release() {
        let cfg = GuardConfig {
            quarantine_threshold: 3.0,
            probation: SimDuration::from_millis(100),
            ..GuardConfig::default()
        };
        let mut q = QuarantineTracker::new(2, &cfg);
        assert_eq!(q.admit(0, t(0)), QuarantineStatus::Clear);
        assert!(!q.record_anomaly(0, t(1)));
        assert!(!q.record_anomaly(0, t(2)));
        // Third strike trips the threshold.
        assert!(q.record_anomaly(0, t(3)));
        assert_eq!(q.quarantines(), 1);
        assert!(q.in_quarantine(0, t(50)));
        assert_eq!(q.admit(0, t(50)), QuarantineStatus::Dropped);
        assert_eq!(q.drops(), 1);
        // The other end-system is unaffected.
        assert_eq!(q.admit(1, t(50)), QuarantineStatus::Clear);
        // Probation expires at from + 100ms.
        assert_eq!(q.admit(0, t(103)), QuarantineStatus::Released);
        assert_eq!(q.releases(), 1);
        assert_eq!(q.score(0), 0.0);
        assert_eq!(q.admit(0, t(104)), QuarantineStatus::Clear);
    }

    #[test]
    fn unknown_sender_id_is_dropped_not_a_panic() {
        // A garbled `from` field surviving decode_unchecked must never be
        // able to crash the server's quarantine bookkeeping.
        let mut q = QuarantineTracker::new(2, &GuardConfig::default());
        assert_eq!(q.admit(7, t(0)), QuarantineStatus::Dropped);
        assert_eq!(q.drops(), 1);
        assert!(!q.record_anomaly(usize::MAX, t(1)));
        q.record_clean(99);
        assert_eq!(q.score(99), 0.0);
        assert!(!q.in_quarantine(99, t(2)));
        assert_eq!(q.quarantines(), 0);
        // Known ids are unaffected.
        assert_eq!(q.admit(1, t(3)), QuarantineStatus::Clear);
    }

    #[test]
    fn observed_quarantine_transitions_are_journaled() {
        let cfg = GuardConfig {
            quarantine_threshold: 2.0,
            probation: SimDuration::from_millis(10),
            ..GuardConfig::default()
        };
        let mut q = QuarantineTracker::new(1, &cfg);
        let mut hub = TelemetryHub::new(16);
        q.record_anomaly_observed(0, t(0), Some(&mut hub));
        assert!(q.record_anomaly_observed(0, t(1), Some(&mut hub)));
        assert_eq!(hub.journal_log().count(JournalKind::Quarantine), 1);
        assert_eq!(
            q.admit_observed(0, t(5), Some(&mut hub)),
            QuarantineStatus::Dropped
        );
        assert_eq!(
            q.admit_observed(0, t(20), Some(&mut hub)),
            QuarantineStatus::Released
        );
        // Clear admissions stay out of the journal.
        assert_eq!(
            q.admit_observed(0, t(21), Some(&mut hub)),
            QuarantineStatus::Clear
        );
        assert_eq!(hub.journal_log().count(JournalKind::QuarantineDrop), 1);
        assert_eq!(hub.journal_log().count(JournalKind::QuarantineRelease), 1);
        assert_eq!(hub.journal_log().len(), 3);
    }

    #[test]
    fn clean_updates_decay_the_score() {
        let cfg = GuardConfig::default(); // threshold 3, decay 0.5
        let mut q = QuarantineTracker::new(1, &cfg);
        q.record_anomaly(0, t(0));
        q.record_anomaly(0, t(1));
        assert_eq!(q.score(0), 2.0);
        q.record_clean(0);
        q.record_clean(0);
        assert_eq!(q.score(0), 0.5);
        // Two fresh anomalies no longer reach the threshold.
        assert!(!q.record_anomaly(0, t(2)));
        assert!(!q.record_anomaly(0, t(3)));
        assert!(!q.in_quarantine(0, t(4)));
    }

    #[test]
    fn relapse_after_release_requarantines() {
        let cfg = GuardConfig {
            quarantine_threshold: 2.0,
            probation: SimDuration::from_millis(10),
            ..GuardConfig::default()
        };
        let mut q = QuarantineTracker::new(1, &cfg);
        q.record_anomaly(0, t(0));
        assert!(q.record_anomaly(0, t(1)));
        assert_eq!(q.admit(0, t(20)), QuarantineStatus::Released);
        // Score was reset on release; a full threshold's worth of new
        // anomalies is needed to re-quarantine.
        q.record_anomaly(0, t(21));
        assert!(q.record_anomaly(0, t(22)));
        assert_eq!(q.quarantines(), 2);
    }

    #[test]
    fn watchdog_flags_nonfinite_and_blowup() {
        let cfg = GuardConfig {
            warmup_steps: 4,
            loss_blowup: 4.0,
            max_gradient_rms: 100.0,
            ..GuardConfig::default()
        };
        let mut w = HealthWatchdog::new(&cfg);
        // Healthy warmup.
        for _ in 0..6 {
            assert!(!w.observe(1.0, 0.5));
        }
        assert!((w.loss_ema().unwrap() - 1.0).abs() < 1e-6);
        // NaN loss and exploding gradient are divergence regardless of EMA.
        assert!(w.observe(f32::NAN, 0.5));
        assert!(w.observe(1.0, 1e4));
        assert!(w.observe(1.0, f32::INFINITY));
        // A 4x loss blow-up trips after warmup.
        assert!(w.observe(4.5, 0.5));
        assert_eq!(w.divergences(), 4);
        // Diverged batches did not move the EMA.
        assert!((w.loss_ema().unwrap() - 1.0).abs() < 1e-6);
        // Healthy observation still passes.
        assert!(!w.observe(1.1, 0.5));
    }

    #[test]
    fn watchdog_warmup_tolerates_early_chaos() {
        let cfg = GuardConfig {
            warmup_steps: 8,
            loss_blowup: 2.0,
            ..GuardConfig::default()
        };
        let mut w = HealthWatchdog::new(&cfg);
        // Early losses bounce around far beyond 2x of each other — the
        // blow-up check is disarmed during warmup.
        for loss in [5.0, 1.0, 4.0, 0.5, 3.0] {
            assert!(!w.observe(loss, 0.1));
        }
    }

    #[test]
    fn watchdog_reset_rearms_warmup() {
        let cfg = GuardConfig {
            warmup_steps: 2,
            loss_blowup: 2.0,
            ..GuardConfig::default()
        };
        let mut w = HealthWatchdog::new(&cfg);
        for _ in 0..4 {
            assert!(!w.observe(1.0, 0.1));
        }
        assert!(w.observe(10.0, 0.1));
        w.reset();
        assert_eq!(w.loss_ema(), None);
        // Post-rollback losses restart the EMA instead of comparing
        // against the pre-rollback history.
        assert!(!w.observe(10.0, 0.1));
    }
}
