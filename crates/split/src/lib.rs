//! Spatio-temporal split learning (Kim, Park, Jung & Yoo — DSN 2021).
//!
//! Multiple end-systems (hospitals, in the paper's motivation) each keep
//! the first `k` blocks of a CNN **private** together with their local
//! data; one centralized server owns the remaining layers and the loss and
//! trains a single shared upper model on everyone's smashed activations.
//! The framework is *spatially* separated (geo-distributed end-systems)
//! and *temporally* separated (the split forward/backward pipeline), hence
//! the name.
//!
//! The crate provides:
//!
//! * [`CnnArch`] / [`CutPoint`] — the paper's Fig. 3 CNN and the
//!   client/server split;
//! * [`EndSystem`] / [`CentralServer`] — the two protocol roles;
//! * [`SpatioTemporalTrainer`] — synchronous in-process training
//!   (reproduces Table I);
//! * [`AsyncSplitTrainer`] — the same protocol over a simulated
//!   geo-distributed network with an [`ArrivalQueue`] and pluggable
//!   [`SchedulingPolicy`] (the queueing machinery §II calls for);
//! * baselines: [`baselines::CentralizedTrainer`],
//!   [`baselines::vanilla_split`] (Fig. 1), [`baselines::FedAvgTrainer`].
//!
//! # Examples
//!
//! ```
//! use stsl_split::{SplitConfig, SpatioTemporalTrainer, CutPoint};
//! use stsl_data::SyntheticCifar;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let train = SyntheticCifar::new(0).generate_sized(80, 16);
//! let test = SyntheticCifar::new(1).generate_sized(20, 16);
//! // Two hospitals keep L1 private; the server owns the rest.
//! let cfg = SplitConfig::tiny(CutPoint(1), 2).epochs(1);
//! let mut trainer = SpatioTemporalTrainer::new(cfg, &train)?;
//! let report = trainer.train(&test);
//! assert_eq!(report.per_client_accuracy.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod async_trainer;
pub mod baselines;
mod checkpoint;
mod client;
mod config;
mod fleet;
mod guard;
mod membership;
mod model;
pub mod protocol;
mod report;
mod resilience;
mod scheduler;
mod server;
mod trainer;
mod ushaped;
mod walltime;

pub use aggregate::{
    combine, outlier_flags, AggregateError, AggregationOutcome, AggregationPolicy,
    RobustAggregator, RobustApply,
};
pub use async_trainer::{AsyncSplitTrainer, ComputeModel};
pub use checkpoint::{Checkpoint, CheckpointRing, RingLoad};
pub use client::{EndSystem, ProtocolError};
pub use config::{DeadlineConfig, OptimizerKind, OverloadConfig, PartitionKind, SplitConfig};
pub use fleet::{FleetConfig, FleetJob, FleetTrainer};
pub use guard::{
    tensor_rms, validate_update, Anomaly, GuardConfig, HealthWatchdog, QuarantineStatus,
    QuarantineTracker,
};
pub use membership::{Membership, MembershipError, MembershipState, QuorumLost};
pub use model::{CnnArch, CutPoint, PoolKind, LAYERS_PER_BLOCK};
pub use report::{AsyncReport, CommReport, EpochStats, FleetReport, TrainReport};
pub use resilience::{
    BreakerConfig, BreakerDecision, CircuitBreaker, LivenessTracker, RetryPolicy,
};
pub use scheduler::{ArrivalJob, ArrivalQueue, QueuedJob, SchedulingPolicy, TokenBucket};
pub use server::{CentralServer, ServerStepOutput};
pub use trainer::{ConfigError, SpatioTemporalTrainer};
pub use ushaped::UShapedTrainer;
pub use walltime::WallTimer;
