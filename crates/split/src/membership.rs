//! Dynamic fleet membership: a per-client lifecycle state machine.
//!
//! The paper's end-systems are spatially scattered and come and go; the
//! trainer therefore tracks each declared end-system through an explicit
//! lifecycle — `Joining → Active → Suspect → Departed → Rejoining →
//! Active` — instead of freezing the fleet at construction. The registry
//! is pure bookkeeping (no clocks, no RNG): every transition is validated
//! against the legal edge set and the conservation law
//! `joined − departed = active + suspect` holds after every accepted
//! transition (the property suite checks both).
//!
//! Counter semantics: `joined` counts *admissions* — the initially active
//! fleet plus every `Joining → Active` and `Rejoining → Active` edge.
//! `departed` counts transitions into [`MembershipState::Departed`].
//! Suspicion (`Active ↔ Suspect`) moves a member between sub-states
//! without touching either counter, so the conservation law is invariant
//! under crash/recover noise.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lifecycle state of one declared end-system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipState {
    /// Declared in the config but dormant: it joins mid-training at its
    /// scheduled join event.
    Joining,
    /// A full member, producing batches.
    Active,
    /// A member that missed its liveness deadline (crashed or silent);
    /// still counted in the membership until it departs.
    Suspect,
    /// Left the fleet; produces nothing and is not a member.
    Departed,
    /// A departed end-system resyncing from its last acked batch before
    /// re-admission.
    Rejoining,
}

impl MembershipState {
    /// Stable snake_case label for logs and exports.
    pub fn as_str(self) -> &'static str {
        match self {
            MembershipState::Joining => "joining",
            MembershipState::Active => "active",
            MembershipState::Suspect => "suspect",
            MembershipState::Departed => "departed",
            MembershipState::Rejoining => "rejoining",
        }
    }
}

/// A rejected lifecycle transition: `from → to` is not a legal edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipError {
    /// The end-system whose transition was rejected.
    pub client: usize,
    /// Its current state.
    pub from: MembershipState,
    /// The requested (illegal) state.
    pub to: MembershipState,
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal membership transition for end-system {}: {} -> {}",
            self.client,
            self.from.as_str(),
            self.to.as_str()
        )
    }
}

impl std::error::Error for MembershipError {}

/// Typed terminal error: every member is dead or departed while training
/// work remains, so the run cannot make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumLost {
    /// Simulation time (microseconds) at which the quorum hit zero.
    pub at_us: u64,
    /// Total admissions up to that point.
    pub joined: u64,
    /// Total departures up to that point.
    pub departed: u64,
}

impl fmt::Display for QuorumLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quorum lost at t={}us: no active member remains ({} joined, {} departed)",
            self.at_us, self.joined, self.departed
        )
    }
}

impl std::error::Error for QuorumLost {}

/// Whether `from → to` is a legal lifecycle edge.
fn legal(from: MembershipState, to: MembershipState) -> bool {
    use MembershipState::*;
    matches!(
        (from, to),
        (Joining, Active)
            | (Active, Suspect)
            | (Suspect, Active)
            | (Active, Departed)
            | (Suspect, Departed)
            | (Departed, Rejoining)
            | (Rejoining, Active)
    )
}

/// The fleet registry: one lifecycle state per declared end-system plus
/// the conservation counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    states: Vec<MembershipState>,
    joined: u64,
    departed: u64,
    rejoins: u64,
}

impl Membership {
    /// A fleet of `total` end-systems, all immediately active. Each
    /// initial member counts as one admission.
    pub fn new(total: usize) -> Self {
        Membership {
            states: vec![MembershipState::Active; total],
            joined: total as u64,
            departed: 0,
            rejoins: 0,
        }
    }

    /// Marks `client` as dormant ([`MembershipState::Joining`]) before the
    /// run starts, un-counting its initial admission. Builder-style, used
    /// for end-systems declared in the config whose join event lies in the
    /// future.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn dormant(mut self, client: usize) -> Self {
        // stsl-audit: allow(panic-reachability, reason = "builder precondition on config-declared client ids, checked before the run starts; a bad id is a config bug, not runtime input")
        assert!(client < self.states.len(), "dormant client out of range");
        if let Some(s) = self.states.get_mut(client) {
            if *s == MembershipState::Active {
                *s = MembershipState::Joining;
                self.joined -= 1;
            }
        }
        self
    }

    /// Number of declared end-systems (every lifecycle state).
    pub fn total(&self) -> usize {
        self.states.len()
    }

    /// Current state of `client`, or `None` when out of range.
    pub fn state(&self, client: usize) -> Option<MembershipState> {
        self.states.get(client).copied()
    }

    /// Whether `client` is an active member (the only state that produces
    /// and is served batches).
    pub fn is_active(&self, client: usize) -> bool {
        self.state(client) == Some(MembershipState::Active)
    }

    /// Requests the lifecycle edge `client → to`, updating the
    /// conservation counters on success. Illegal edges (and out-of-range
    /// clients) are rejected with a typed error and change nothing.
    pub fn transition(
        &mut self,
        client: usize,
        to: MembershipState,
    ) -> Result<(), MembershipError> {
        let from = self.state(client).ok_or(MembershipError {
            client,
            // An unknown id is reported as a Departed → to rejection: it
            // is not a member and cannot become one.
            from: MembershipState::Departed,
            to,
        })?;
        if !legal(from, to) {
            return Err(MembershipError { client, from, to });
        }
        if let Some(s) = self.states.get_mut(client) {
            *s = to;
        }
        match (from, to) {
            (MembershipState::Joining, MembershipState::Active) => self.joined += 1,
            (MembershipState::Rejoining, MembershipState::Active) => {
                self.joined += 1;
                self.rejoins += 1;
            }
            (_, MembershipState::Departed) => self.departed += 1,
            _ => {}
        }
        Ok(())
    }

    /// Active member count.
    pub fn active_count(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == MembershipState::Active)
            .count()
    }

    /// Suspect member count.
    pub fn suspect_count(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == MembershipState::Suspect)
            .count()
    }

    /// Membership size: active + suspect (what the `MembershipSize`
    /// telemetry metric samples).
    pub fn member_count(&self) -> usize {
        self.active_count() + self.suspect_count()
    }

    /// Total admissions (initial fleet + joins + re-admissions).
    pub fn joined(&self) -> u64 {
        self.joined
    }

    /// Total departures.
    pub fn departed(&self) -> u64 {
        self.departed
    }

    /// Total re-admissions (`Rejoining → Active` edges).
    pub fn rejoins(&self) -> u64 {
        self.rejoins
    }

    /// The conservation law: `joined − departed = active + suspect`.
    /// Always true after any sequence of accepted transitions.
    pub fn conserves(&self) -> bool {
        self.joined - self.departed == self.member_count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_fleet_is_active_and_conserving() {
        let m = Membership::new(4);
        assert_eq!(m.total(), 4);
        assert_eq!(m.active_count(), 4);
        assert_eq!(m.joined(), 4);
        assert_eq!(m.departed(), 0);
        assert!(m.conserves());
    }

    #[test]
    fn dormant_members_are_not_admitted_until_join() {
        let mut m = Membership::new(3).dormant(2);
        assert_eq!(m.state(2), Some(MembershipState::Joining));
        assert_eq!(m.joined(), 2);
        assert!(m.conserves());
        m.transition(2, MembershipState::Active).unwrap();
        assert_eq!(m.joined(), 3);
        assert!(m.is_active(2));
        assert!(m.conserves());
    }

    #[test]
    fn full_lifecycle_round_trip() {
        let mut m = Membership::new(2);
        m.transition(0, MembershipState::Suspect).unwrap();
        assert_eq!(m.member_count(), 2, "suspects still count as members");
        m.transition(0, MembershipState::Active).unwrap();
        m.transition(0, MembershipState::Departed).unwrap();
        assert_eq!(m.member_count(), 1);
        assert_eq!(m.departed(), 1);
        m.transition(0, MembershipState::Rejoining).unwrap();
        assert_eq!(m.member_count(), 1, "rejoining is not yet a member");
        m.transition(0, MembershipState::Active).unwrap();
        assert_eq!(m.member_count(), 2);
        assert_eq!(m.rejoins(), 1);
        assert_eq!(m.joined(), 3, "re-admission is a new admission");
        assert!(m.conserves());
    }

    #[test]
    fn illegal_edges_are_rejected_and_change_nothing() {
        let mut m = Membership::new(2);
        let before = m.clone();
        for to in [
            MembershipState::Joining,
            MembershipState::Active,
            MembershipState::Rejoining,
        ] {
            let err = m.transition(0, to).unwrap_err();
            assert_eq!(err.client, 0);
            assert_eq!(err.from, MembershipState::Active);
            assert_eq!(err.to, to);
        }
        // Departed is terminal except via Rejoining.
        m.transition(1, MembershipState::Departed).unwrap();
        assert!(m.transition(1, MembershipState::Active).is_err());
        assert!(m.transition(1, MembershipState::Suspect).is_err());
        // Out-of-range ids are rejected, not a panic.
        assert!(m.transition(99, MembershipState::Active).is_err());
        assert_eq!(before.states[..1], m.states[..1]);
        assert!(m.conserves());
    }

    #[test]
    fn errors_render_readably() {
        let mut m = Membership::new(1);
        let err = m.transition(0, MembershipState::Joining).unwrap_err();
        assert_eq!(
            err.to_string(),
            "illegal membership transition for end-system 0: active -> joining"
        );
        let q = QuorumLost {
            at_us: 1_500,
            joined: 3,
            departed: 3,
        };
        assert!(q.to_string().contains("quorum lost at t=1500us"));
    }
}
