//! The paper's CNN (Fig. 3) and the cut-point abstraction.
//!
//! Fig. 3 specifies five blocks `L_1..L_5`, each a `Conv2D` (3×3, "same")
//! followed by `MaxPooling2D` (2×2), with 16/32/64/128/256 filters, then
//! two dense layers of 512 and 10 units. We insert the conventional ReLU
//! after every convolution and the hidden dense layer (the paper's Keras
//! reference model does the same via `activation="relu"`).

use serde::{Deserialize, Serialize};
use stsl_nn::layers::{AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, Relu};
use stsl_nn::Sequential;
use stsl_tensor::init::derive_seed;

/// Which pooling operator follows each convolution.
///
/// The paper uses max pooling and credits it with hiding the original
/// image (Fig. 4); [`PoolKind::Avg`] exists for the `pool_ablation`
/// experiment that tests exactly that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling (the paper's choice).
    #[default]
    Max,
    /// Average pooling.
    Avg,
}

impl std::fmt::Display for PoolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolKind::Max => write!(f, "max"),
            PoolKind::Avg => write!(f, "avg"),
        }
    }
}

/// Layers per convolutional block in the assembled [`Sequential`]:
/// `Conv2d`, `Relu`, `MaxPool2d`.
pub const LAYERS_PER_BLOCK: usize = 3;

/// How many leading blocks `L_1..L_k` live at the end-systems.
///
/// `CutPoint(0)` means everything is at the server (the paper's "Nothing"
/// row of Table I); `CutPoint(4)` is the deepest cut the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CutPoint(pub usize);

impl CutPoint {
    /// Index in the layer stack where the model is split.
    pub fn layer_index(self) -> usize {
        self.0 * LAYERS_PER_BLOCK
    }

    /// Number of blocks at the end-system.
    pub fn blocks(self) -> usize {
        self.0
    }

    /// The paper's Table I label for this cut.
    pub fn label(self) -> String {
        match self.0 {
            0 => "Nothing (all layers at server)".to_string(),
            k => {
                let names: Vec<String> = (1..=k).map(|i| format!("L{}", i)).collect();
                names.join(",")
            }
        }
    }
}

impl std::fmt::Display for CutPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cut={}", self.0)
    }
}

/// Architecture of the evaluation CNN, parameterized so tests can shrink
/// it while the experiment harness uses the paper's exact widths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnArch {
    /// Input channels (3 for CIFAR).
    pub in_channels: usize,
    /// Input spatial side (32 for CIFAR).
    pub image_side: usize,
    /// Filters per block, e.g. `[16, 32, 64, 128, 256]`.
    pub filters: Vec<usize>,
    /// Hidden dense width (512 in the paper).
    pub dense_units: usize,
    /// Output classes (10).
    pub classes: usize,
    /// Pooling operator after each convolution (defaults to max, the
    /// paper's choice).
    #[serde(default)]
    pub pool: PoolKind,
}

impl CnnArch {
    /// The paper's Fig. 3 architecture for CIFAR-10.
    pub fn paper() -> Self {
        CnnArch {
            in_channels: 3,
            image_side: 32,
            filters: vec![16, 32, 64, 128, 256],
            dense_units: 512,
            classes: 10,
            pool: PoolKind::Max,
        }
    }

    /// A shrunken architecture for fast tests: three blocks on 16×16
    /// inputs.
    pub fn tiny() -> Self {
        CnnArch {
            in_channels: 3,
            image_side: 16,
            filters: vec![8, 16, 32],
            dense_units: 32,
            classes: 10,
            pool: PoolKind::Max,
        }
    }

    /// Number of convolutional blocks.
    pub fn blocks(&self) -> usize {
        self.filters.len()
    }

    /// Maximum valid cut (all conv blocks at the end-system, as in the
    /// paper's `L_1..L_4` deepest configuration you can extend to `L_5`).
    pub fn max_cut(&self) -> CutPoint {
        CutPoint(self.blocks())
    }

    /// Flattened feature width after all conv blocks.
    pub fn flat_features(&self) -> usize {
        let mut side = self.image_side;
        for _ in &self.filters {
            side /= 2;
        }
        assert!(
            side >= 1,
            "image side {} too small for {} blocks",
            self.image_side,
            self.blocks()
        );
        self.filters.last().copied().unwrap_or(self.in_channels) * side * side
    }

    /// Builds the full network with parameters seeded from `seed`.
    ///
    /// Layer order: `blocks × [Conv2d, Relu, MaxPool2d]`, then `Flatten`,
    /// `Dense(dense_units)`, `Relu`, `Dense(classes)`.
    pub fn build(&self, seed: u64) -> Sequential {
        assert!(!self.filters.is_empty(), "need at least one block");
        let mut net = Sequential::new();
        let mut in_c = self.in_channels;
        for (i, &f) in self.filters.iter().enumerate() {
            net.push(Conv2d::new(in_c, f, 3, derive_seed(seed, i as u64)));
            net.push(Relu::new());
            match self.pool {
                PoolKind::Max => net.push(MaxPool2d::new(2)),
                PoolKind::Avg => net.push(AvgPool2d::new(2)),
            };
            in_c = f;
        }
        net.push(Flatten::new());
        net.push(Dense::new(
            self.flat_features(),
            self.dense_units,
            derive_seed(seed, 100),
        ));
        net.push(Relu::new());
        net.push(Dense::new(
            self.dense_units,
            self.classes,
            derive_seed(seed, 101),
        ));
        net
    }

    /// Builds and splits the network at `cut`: `(client part, server
    /// part)`. The client part of end-system `e` should be built with a
    /// seed unique to `e` — the paper's "individual first hidden layers".
    ///
    /// # Panics
    ///
    /// Panics if `cut` exceeds the number of blocks.
    pub fn build_split(&self, cut: CutPoint, seed: u64) -> (Sequential, Sequential) {
        assert!(
            cut.blocks() <= self.blocks(),
            "cut {} exceeds {} blocks",
            cut.blocks(),
            self.blocks()
        );
        self.build(seed).split_at(cut.layer_index())
    }

    /// Shape of the smashed activations at `cut` for batch size `n`.
    pub fn cut_dims(&self, cut: CutPoint, n: usize) -> Vec<usize> {
        let side = self.image_side >> cut.blocks();
        let channels = if cut.blocks() == 0 {
            self.in_channels
        } else {
            self.filters[cut.blocks() - 1]
        };
        vec![n, channels, side, side]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_nn::Mode;
    use stsl_tensor::init::rng_from_seed;
    use stsl_tensor::Tensor;

    #[test]
    fn paper_arch_matches_fig3() {
        let arch = CnnArch::paper();
        assert_eq!(arch.filters, vec![16, 32, 64, 128, 256]);
        assert_eq!(arch.dense_units, 512);
        assert_eq!(arch.classes, 10);
        // After 5 pools: 32 -> 1, so flatten yields 256 features.
        assert_eq!(arch.flat_features(), 256);
    }

    #[test]
    fn build_produces_expected_layer_sequence() {
        let net = CnnArch::tiny().build(0);
        let names = net.layer_names();
        assert_eq!(names.len(), 3 * LAYERS_PER_BLOCK + 4);
        assert_eq!(&names[..3], &["conv2d", "relu", "maxpool2d"]);
        assert_eq!(
            &names[names.len() - 4..],
            &["flatten", "dense", "relu", "dense"]
        );
    }

    #[test]
    fn forward_shapes_through_paper_cnn() {
        let arch = CnnArch::paper();
        let mut net = arch.build(1);
        let x = Tensor::randn([2, 3, 32, 32], &mut rng_from_seed(0));
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn cut_dims_match_actual_activations() {
        let arch = CnnArch::tiny();
        for k in 0..=arch.blocks() {
            let cut = CutPoint(k);
            let (mut client, _server) = arch.build_split(cut, 3);
            let x = Tensor::randn([4, 3, 16, 16], &mut rng_from_seed(1));
            let smashed = client.forward(&x, Mode::Eval);
            assert_eq!(
                smashed.dims(),
                arch.cut_dims(cut, 4).as_slice(),
                "cut {}",
                k
            );
        }
    }

    #[test]
    fn split_composition_equals_full_model() {
        let arch = CnnArch::tiny();
        let mut full = arch.build(9);
        let (mut client, mut server) = arch.build_split(CutPoint(2), 9);
        let x = Tensor::randn([2, 3, 16, 16], &mut rng_from_seed(2));
        let direct = full.forward(&x, Mode::Eval);
        let smashed = client.forward(&x, Mode::Eval);
        let composed = server.forward(&smashed, Mode::Eval);
        assert_eq!(direct, composed);
    }

    #[test]
    fn cut_zero_puts_everything_at_server() {
        let (client, server) = CnnArch::tiny().build_split(CutPoint(0), 0);
        assert!(client.is_empty());
        assert_eq!(server.len(), 3 * LAYERS_PER_BLOCK + 4);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn cut_beyond_blocks_rejected() {
        CnnArch::tiny().build_split(CutPoint(4), 0);
    }

    #[test]
    fn table_one_labels() {
        assert_eq!(CutPoint(0).label(), "Nothing (all layers at server)");
        assert_eq!(CutPoint(3).label(), "L1,L2,L3");
    }

    #[test]
    fn param_count_is_plausible_for_paper_arch() {
        let mut net = CnnArch::paper().build(0);
        let params = net.param_count();
        // conv: 3*16*9+16 + 16*32*9+32 + 32*64*9+64 + 64*128*9+128 + 128*256*9+256
        // dense: 256*512+512 + 512*10+10
        let expected = (3 * 16 * 9 + 16)
            + (16 * 32 * 9 + 32)
            + (32 * 64 * 9 + 64)
            + (64 * 128 * 9 + 128)
            + (128 * 256 * 9 + 256)
            + (256 * 512 + 512)
            + (512 * 10 + 10);
        assert_eq!(params, expected);
    }
}
