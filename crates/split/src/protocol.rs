//! Wire messages exchanged between end-systems and the centralized server,
//! with byte-accurate encoding for communication-cost accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use stsl_simnet::EndSystemId;
use stsl_tensor::{Shape, Tensor};

/// Identifies one mini-batch computation within a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BatchId {
    /// 0-based epoch.
    pub epoch: u32,
    /// 0-based batch index within the client's epoch.
    pub batch: u32,
}

impl std::fmt::Display for BatchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}b{}", self.epoch, self.batch)
    }
}

/// Uplink message: smashed activations plus labels.
///
/// In the paper's configuration the server owns the output layer and the
/// loss, so labels travel with the activations (standard split learning
/// *with* label sharing; the raw images never leave the end-system).
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationMsg {
    /// Originating end-system.
    pub from: EndSystemId,
    /// Which batch this is.
    pub batch_id: BatchId,
    /// Cut-layer activations, `[n, c, h, w]` (or `[n, f]` for dense cuts).
    pub activations: Tensor,
    /// Class labels, one per sample.
    pub targets: Vec<usize>,
}

/// Downlink message: gradient of the loss w.r.t. the cut activations.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientMsg {
    /// Destination end-system (the one that sent the activations).
    pub to: EndSystemId,
    /// Which batch the gradient answers.
    pub batch_id: BatchId,
    /// Gradient tensor, same shape as the activations.
    pub grad: Tensor,
}

/// Fixed per-message header: sender id (u32), epoch (u32), batch (u32),
/// rank (u8) + dims (u32 each) come on top per tensor.
const HEADER_BYTES: usize = 12;

fn tensor_encoded_len(t: &Tensor) -> usize {
    1 + 4 * t.rank() + 4 * t.len()
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u8(t.rank() as u8);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
}

fn get_tensor(buf: &mut Bytes) -> Tensor {
    let rank = buf.get_u8() as usize;
    let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
    let shape = Shape::from(dims);
    let data: Vec<f32> = (0..shape.len()).map(|_| buf.get_f32_le()).collect();
    Tensor::from_vec(data, shape)
}

impl ActivationMsg {
    /// Exact size of the encoded message in bytes (drives the simulated
    /// serialization delay and the communication-cost experiment).
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + tensor_encoded_len(&self.activations) + 4 + 2 * self.targets.len()
    }

    /// Serializes to a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32_le(self.from.0 as u32);
        buf.put_u32_le(self.batch_id.epoch);
        buf.put_u32_le(self.batch_id.batch);
        put_tensor(&mut buf, &self.activations);
        buf.put_u32_le(self.targets.len() as u32);
        for &t in &self.targets {
            buf.put_u16_le(t as u16);
        }
        buf.freeze()
    }

    /// Deserializes a buffer produced by [`ActivationMsg::encode`].
    ///
    /// # Panics
    ///
    /// Panics on truncated input (messages travel on the in-process
    /// simulator, not an untrusted network).
    pub fn decode(mut bytes: Bytes) -> Self {
        let from = EndSystemId(bytes.get_u32_le() as usize);
        let epoch = bytes.get_u32_le();
        let batch = bytes.get_u32_le();
        let activations = get_tensor(&mut bytes);
        let n = bytes.get_u32_le() as usize;
        let targets = (0..n).map(|_| bytes.get_u16_le() as usize).collect();
        ActivationMsg {
            from,
            batch_id: BatchId { epoch, batch },
            activations,
            targets,
        }
    }
}

impl GradientMsg {
    /// Exact size of the encoded message in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + tensor_encoded_len(&self.grad)
    }

    /// Serializes to a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32_le(self.to.0 as u32);
        buf.put_u32_le(self.batch_id.epoch);
        buf.put_u32_le(self.batch_id.batch);
        put_tensor(&mut buf, &self.grad);
        buf.freeze()
    }

    /// Deserializes a buffer produced by [`GradientMsg::encode`].
    ///
    /// # Panics
    ///
    /// Panics on truncated input.
    pub fn decode(mut bytes: Bytes) -> Self {
        let to = EndSystemId(bytes.get_u32_le() as usize);
        let epoch = bytes.get_u32_le();
        let batch = bytes.get_u32_le();
        let grad = get_tensor(&mut bytes);
        GradientMsg {
            to,
            batch_id: BatchId { epoch, batch },
            grad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    #[test]
    fn activation_roundtrip() {
        let msg = ActivationMsg {
            from: EndSystemId(3),
            batch_id: BatchId {
                epoch: 2,
                batch: 17,
            },
            activations: Tensor::randn([2, 4, 8, 8], &mut rng_from_seed(0)),
            targets: vec![1, 9],
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        let back = ActivationMsg::decode(encoded);
        assert_eq!(back, msg);
    }

    #[test]
    fn gradient_roundtrip() {
        let msg = GradientMsg {
            to: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            grad: Tensor::randn([3, 2], &mut rng_from_seed(1)),
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        assert_eq!(GradientMsg::decode(encoded), msg);
    }

    #[test]
    fn encoded_len_scales_with_activation_volume() {
        let small = ActivationMsg {
            from: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            activations: Tensor::zeros([1, 16, 16, 16]),
            targets: vec![0],
        };
        let large = ActivationMsg {
            from: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            activations: Tensor::zeros([1, 16, 32, 32]),
            targets: vec![0],
        };
        assert!(large.encoded_len() > 3 * small.encoded_len());
    }

    #[test]
    fn batch_id_orders_lexicographically() {
        let a = BatchId { epoch: 0, batch: 9 };
        let b = BatchId { epoch: 1, batch: 0 };
        assert!(a < b);
        assert_eq!(a.to_string(), "e0b9");
    }
}
