//! Wire messages exchanged between end-systems and the centralized server,
//! with byte-accurate encoding for communication-cost accounting.
//!
//! # Wire format (version 1)
//!
//! Every message is framed with a 14-byte integrity header followed by a
//! message-kind-specific payload:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic            b"STSL"
//!      4     1  version          0x01
//!      5     1  kind             0xA5 activation / 0x5A gradient
//!      6     4  payload length   u32 LE, bytes after the header
//!     10     4  CRC32 (IEEE)     u32 LE, over the payload bytes
//!     14     …  payload
//! ```
//!
//! The payload layout is unchanged from the pre-versioned format:
//! `from/to (u32) | epoch (u32) | batch (u32) | tensor | [targets]` where a
//! tensor is `rank (u8) | dims (u32 LE each) | data (f32 LE each)` and
//! targets are `count (u32) | label (u16 LE each)`.
//!
//! [`ActivationMsg::decode`]/[`GradientMsg::decode`] verify the full frame
//! including the checksum and never panic on hostile input; they return a
//! typed [`DecodeError`] instead. [`ActivationMsg::decode_lenient`] parses
//! CRC-mismatched-but-parseable frames too and *reports* the checksum
//! verdict instead of enforcing it — the "guard off" path used to measure
//! what silent corruption does to training. The older
//! [`ActivationMsg::decode_unchecked`] (which discarded the verdict
//! entirely) is deprecated; see its docs.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use stsl_simnet::EndSystemId;
use stsl_tensor::{Shape, Tensor};

/// Leading magic bytes of every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"STSL";
/// Current wire-format version.
pub const WIRE_VERSION: u8 = 1;
/// Frame-kind byte for [`ActivationMsg`].
pub const KIND_ACTIVATION: u8 = 0xA5;
/// Frame-kind byte for [`GradientMsg`].
pub const KIND_GRADIENT: u8 = 0x5A;
/// Size of the integrity header: magic + version + kind + length + CRC32.
pub const WIRE_HEADER_BYTES: usize = 4 + 1 + 1 + 4 + 4;

/// Highest tensor rank accepted on the wire (matches `[n, c, h, w]` plus
/// slack; anything larger is corruption, not a real tensor).
const MAX_WIRE_RANK: usize = 8;

/// Fixed per-payload header: sender id (u32), epoch (u32), batch (u32).
const PAYLOAD_HEADER_BYTES: usize = 12;

/// Computes the IEEE CRC32 (reflected, polynomial `0xEDB88320`) of `data`.
///
/// Hand-rolled bitwise implementation: the workspace is offline and brings
/// no checksum crate, and frames are small enough that table-free CRC is
/// nowhere near the simulation's critical path.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a frame failed to decode. Carried inside
/// [`ProtocolError::Decode`](crate::client::ProtocolError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the field being read.
    Truncated {
        /// Bytes the current field needed.
        needed: usize,
        /// Bytes actually left in the buffer.
        have: usize,
    },
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The version byte is one this decoder does not understand.
    UnsupportedVersion {
        /// The version byte found.
        got: u8,
    },
    /// The kind byte does not match the message type being decoded.
    WrongKind {
        /// Kind byte the caller expected.
        expected: u8,
        /// Kind byte found in the frame.
        got: u8,
    },
    /// The declared payload length disagrees with the bytes present.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The CRC32 over the payload does not match the header checksum.
    ChecksumMismatch {
        /// Checksum declared in the header.
        declared: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// The payload is structurally impossible (bad rank, dims that do not
    /// match the byte count, trailing garbage, …).
    Malformed {
        /// Which structural invariant failed.
        what: &'static str,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: field needs {needed} bytes, {have} left"
                )
            }
            DecodeError::BadMagic { got } => write!(f, "bad magic {got:02x?}"),
            DecodeError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got}")
            }
            DecodeError::WrongKind { expected, got } => {
                write!(
                    f,
                    "wrong frame kind: expected {expected:#04x}, got {got:#04x}"
                )
            }
            DecodeError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "payload length mismatch: header says {declared}, have {actual}"
                )
            }
            DecodeError::ChecksumMismatch { declared, computed } => {
                write!(
                    f,
                    "checksum mismatch: header {declared:#010x}, computed {computed:#010x}"
                )
            }
            DecodeError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Identifies one mini-batch computation within a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BatchId {
    /// 0-based epoch.
    pub epoch: u32,
    /// 0-based batch index within the client's epoch.
    pub batch: u32,
}

impl std::fmt::Display for BatchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}b{}", self.epoch, self.batch)
    }
}

/// Uplink message: smashed activations plus labels.
///
/// In the paper's configuration the server owns the output layer and the
/// loss, so labels travel with the activations (standard split learning
/// *with* label sharing; the raw images never leave the end-system).
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationMsg {
    /// Originating end-system.
    pub from: EndSystemId,
    /// Which batch this is.
    pub batch_id: BatchId,
    /// Cut-layer activations, `[n, c, h, w]` (or `[n, f]` for dense cuts).
    pub activations: Tensor,
    /// Class labels, one per sample.
    pub targets: Vec<usize>,
}

/// Downlink message: gradient of the loss w.r.t. the cut activations.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientMsg {
    /// Destination end-system (the one that sent the activations).
    pub to: EndSystemId,
    /// Which batch the gradient answers.
    pub batch_id: BatchId,
    /// Gradient tensor, same shape as the activations.
    pub grad: Tensor,
}

fn tensor_encoded_len(t: &Tensor) -> usize {
    1 + 4 * t.rank() + 4 * t.len()
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u8(t.rank() as u8);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
}

/// Checked read helpers: every primitive read verifies `remaining()` first
/// so hostile/truncated buffers surface as [`DecodeError::Truncated`] rather
/// than a panic inside the `bytes` accessors.
fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
    let have = buf.remaining();
    if have < n {
        return Err(DecodeError::Truncated { needed: n, have });
    }
    Ok(())
}

fn read_u8(buf: &mut Bytes) -> Result<u8, DecodeError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn read_u16(buf: &mut Bytes) -> Result<u16, DecodeError> {
    need(buf, 2)?;
    Ok(buf.get_u16_le())
}

fn read_u32(buf: &mut Bytes) -> Result<u32, DecodeError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn read_f32(buf: &mut Bytes) -> Result<f32, DecodeError> {
    need(buf, 4)?;
    Ok(buf.get_f32_le())
}

fn get_tensor(buf: &mut Bytes) -> Result<Tensor, DecodeError> {
    let rank = read_u8(buf)? as usize;
    if rank == 0 || rank > MAX_WIRE_RANK {
        return Err(DecodeError::Malformed {
            what: "tensor rank out of range",
        });
    }
    let mut dims = Vec::with_capacity(rank);
    let mut len = 1usize;
    for _ in 0..rank {
        let d = read_u32(buf)? as usize;
        len = len.checked_mul(d).ok_or(DecodeError::Malformed {
            what: "tensor volume overflows",
        })?;
        dims.push(d);
    }
    // One up-front bound check keeps a lying dim field from turning into a
    // multi-gigabyte allocation before the truncation is noticed.
    need(buf, 4 * len)?;
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(read_f32(buf)?);
    }
    Ok(Tensor::from_vec(data, Shape::from(dims)))
}

/// Validates the 14-byte frame header and returns the payload as a fresh
/// read cursor plus the CRC verdict. `verify_crc` distinguishes `decode`
/// (mismatch is an error) from `decode_lenient` (mismatch is reported).
fn open_frame(mut bytes: Bytes, kind: u8, verify_crc: bool) -> Result<(Bytes, bool), DecodeError> {
    need(&bytes, WIRE_HEADER_BYTES)?;
    let magic_vec = bytes.copy_bytes(4);
    let Ok(magic) = <[u8; 4]>::try_from(magic_vec.as_slice()) else {
        // Unreachable after the header-size check, but a decoder for
        // hostile bytes refuses rather than trusts.
        return Err(DecodeError::Truncated {
            needed: 4,
            have: magic_vec.len(),
        });
    };
    if magic != WIRE_MAGIC {
        return Err(DecodeError::BadMagic { got: magic });
    }
    let version = bytes.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion { got: version });
    }
    let got_kind = bytes.get_u8();
    if got_kind != kind {
        return Err(DecodeError::WrongKind {
            expected: kind,
            got: got_kind,
        });
    }
    let declared = bytes.get_u32_le() as usize;
    let crc_header = bytes.get_u32_le();
    let payload = bytes.as_unread();
    if declared != payload.len() {
        return Err(DecodeError::LengthMismatch {
            declared,
            actual: payload.len(),
        });
    }
    let computed = crc32(payload);
    let crc_ok = computed == crc_header;
    if verify_crc && !crc_ok {
        return Err(DecodeError::ChecksumMismatch {
            declared: crc_header,
            computed,
        });
    }
    Ok((Bytes::copy_from_slice(payload), crc_ok))
}

/// Writes the frame header for a payload of the given bytes.
fn seal_frame(kind: u8, payload: &BytesMut) -> Bytes {
    let mut framed = BytesMut::with_capacity(WIRE_HEADER_BYTES + payload.len());
    framed.put_slice(&WIRE_MAGIC);
    framed.put_u8(WIRE_VERSION);
    framed.put_u8(kind);
    framed.put_u32_le(payload.len() as u32);
    framed.put_u32_le(crc32(payload.as_ref()));
    framed.put_slice(payload.as_ref());
    framed.freeze()
}

impl ActivationMsg {
    /// Exact size of the encoded message in bytes (drives the simulated
    /// serialization delay and the communication-cost experiment).
    pub fn encoded_len(&self) -> usize {
        WIRE_HEADER_BYTES
            + PAYLOAD_HEADER_BYTES
            + tensor_encoded_len(&self.activations)
            + 4
            + 2 * self.targets.len()
    }

    /// Serializes to a framed, checksummed byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len() - WIRE_HEADER_BYTES);
        buf.put_u32_le(self.from.0 as u32);
        buf.put_u32_le(self.batch_id.epoch);
        buf.put_u32_le(self.batch_id.batch);
        put_tensor(&mut buf, &self.activations);
        buf.put_u32_le(self.targets.len() as u32);
        for &t in &self.targets {
            buf.put_u16_le(t as u16);
        }
        seal_frame(KIND_ACTIVATION, &buf)
    }

    /// Deserializes and fully validates a frame produced by
    /// [`ActivationMsg::encode`], including the CRC32 payload checksum.
    ///
    /// Never panics: truncated, garbled or mis-typed input returns a
    /// [`DecodeError`].
    pub fn decode(bytes: Bytes) -> Result<Self, DecodeError> {
        let (payload, _) = open_frame(bytes, KIND_ACTIVATION, true)?;
        Self::parse_payload(payload)
    }

    /// Deserializes without *enforcing* the checksum — the "guard off"
    /// path — but still computes and reports it: the second element is
    /// `true` iff the CRC32 matched.
    ///
    /// Structural validation always applies (magic, version, kind, declared
    /// length, tensor shape), so this never panics; it lets
    /// bit-flipped-but-parseable payloads through as silently corrupt data
    /// while telling the caller the frame was dirty.
    pub fn decode_lenient(bytes: Bytes) -> Result<(Self, bool), DecodeError> {
        let (payload, crc_ok) = open_frame(bytes, KIND_ACTIVATION, false)?;
        Ok((Self::parse_payload(payload)?, crc_ok))
    }

    /// Deserializes *without* verifying the checksum.
    ///
    /// **Deprecated**: this API discards the checksum verdict entirely, so
    /// callers cannot even count how much corruption they let through. Use
    /// [`ActivationMsg::decode`] when integrity matters, or
    /// [`ActivationMsg::decode_lenient`] for the measured guard-off path.
    /// No non-test call sites remain in the workspace.
    #[deprecated(
        since = "0.1.0",
        note = "use decode (enforced CRC) or decode_lenient (reported CRC) instead"
    )]
    pub fn decode_unchecked(bytes: Bytes) -> Result<Self, DecodeError> {
        Self::decode_lenient(bytes).map(|(msg, _)| msg)
    }

    fn parse_payload(mut buf: Bytes) -> Result<Self, DecodeError> {
        let from = EndSystemId(read_u32(&mut buf)? as usize);
        let epoch = read_u32(&mut buf)?;
        let batch = read_u32(&mut buf)?;
        let activations = get_tensor(&mut buf)?;
        let n = read_u32(&mut buf)? as usize;
        if buf.remaining() != 2 * n {
            return Err(DecodeError::Malformed {
                what: "target count disagrees with payload",
            });
        }
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            targets.push(read_u16(&mut buf)? as usize);
        }
        Ok(ActivationMsg {
            from,
            batch_id: BatchId { epoch, batch },
            activations,
            targets,
        })
    }
}

impl GradientMsg {
    /// Exact size of the encoded message in bytes.
    pub fn encoded_len(&self) -> usize {
        WIRE_HEADER_BYTES + PAYLOAD_HEADER_BYTES + tensor_encoded_len(&self.grad)
    }

    /// Serializes to a framed, checksummed byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len() - WIRE_HEADER_BYTES);
        buf.put_u32_le(self.to.0 as u32);
        buf.put_u32_le(self.batch_id.epoch);
        buf.put_u32_le(self.batch_id.batch);
        put_tensor(&mut buf, &self.grad);
        seal_frame(KIND_GRADIENT, &buf)
    }

    /// Deserializes and fully validates a frame produced by
    /// [`GradientMsg::encode`], including the CRC32 payload checksum.
    ///
    /// Never panics: truncated, garbled or mis-typed input returns a
    /// [`DecodeError`].
    pub fn decode(bytes: Bytes) -> Result<Self, DecodeError> {
        let (payload, _) = open_frame(bytes, KIND_GRADIENT, true)?;
        Self::parse_payload(payload)
    }

    /// Deserializes without *enforcing* the checksum, reporting the CRC
    /// verdict as the second element. See [`ActivationMsg::decode_lenient`].
    pub fn decode_lenient(bytes: Bytes) -> Result<(Self, bool), DecodeError> {
        let (payload, crc_ok) = open_frame(bytes, KIND_GRADIENT, false)?;
        Ok((Self::parse_payload(payload)?, crc_ok))
    }

    /// Deserializes *without* verifying the checksum.
    ///
    /// **Deprecated**: see [`ActivationMsg::decode_unchecked`].
    #[deprecated(
        since = "0.1.0",
        note = "use decode (enforced CRC) or decode_lenient (reported CRC) instead"
    )]
    pub fn decode_unchecked(bytes: Bytes) -> Result<Self, DecodeError> {
        Self::decode_lenient(bytes).map(|(msg, _)| msg)
    }

    fn parse_payload(mut buf: Bytes) -> Result<Self, DecodeError> {
        let to = EndSystemId(read_u32(&mut buf)? as usize);
        let epoch = read_u32(&mut buf)?;
        let batch = read_u32(&mut buf)?;
        let grad = get_tensor(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DecodeError::Malformed {
                what: "trailing bytes after gradient",
            });
        }
        Ok(GradientMsg {
            to,
            batch_id: BatchId { epoch, batch },
            grad,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsl_tensor::init::rng_from_seed;

    fn sample_activation() -> ActivationMsg {
        ActivationMsg {
            from: EndSystemId(3),
            batch_id: BatchId {
                epoch: 2,
                batch: 17,
            },
            activations: Tensor::randn([2, 4, 8, 8], &mut rng_from_seed(0)),
            targets: vec![1, 9],
        }
    }

    #[test]
    fn activation_roundtrip() {
        let msg = sample_activation();
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        let back = ActivationMsg::decode(encoded).expect("clean frame decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn gradient_roundtrip() {
        let msg = GradientMsg {
            to: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            grad: Tensor::randn([3, 2], &mut rng_from_seed(1)),
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        assert_eq!(
            GradientMsg::decode(encoded).expect("clean frame decodes"),
            msg
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_header_layout() {
        let encoded = sample_activation().encode();
        let raw = encoded.as_ref();
        assert_eq!(&raw[0..4], b"STSL");
        assert_eq!(raw[4], WIRE_VERSION);
        assert_eq!(raw[5], KIND_ACTIVATION);
        let declared = u32::from_le_bytes([raw[6], raw[7], raw[8], raw[9]]) as usize;
        assert_eq!(declared, raw.len() - WIRE_HEADER_BYTES);
        let crc = u32::from_le_bytes([raw[10], raw[11], raw[12], raw[13]]);
        assert_eq!(crc, crc32(&raw[WIRE_HEADER_BYTES..]));
    }

    #[test]
    fn bit_flip_is_caught_by_checksum() {
        let msg = sample_activation();
        for byte_idx in [
            WIRE_HEADER_BYTES,
            WIRE_HEADER_BYTES + 30,
            WIRE_HEADER_BYTES + 100,
        ] {
            let mut raw = msg.encode().as_ref().to_vec();
            raw[byte_idx] ^= 0x10;
            let err = ActivationMsg::decode(Bytes::from_vec(raw)).unwrap_err();
            assert!(
                matches!(err, DecodeError::ChecksumMismatch { .. }),
                "flip at {byte_idx} gave {err:?}"
            );
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let raw = sample_activation().encode().as_ref().to_vec();
        for keep in [
            0,
            3,
            WIRE_HEADER_BYTES - 1,
            WIRE_HEADER_BYTES + 5,
            raw.len() - 1,
        ] {
            let cut = raw[..keep].to_vec();
            assert!(
                ActivationMsg::decode(Bytes::from_vec(cut)).is_err(),
                "keep={keep}"
            );
        }
    }

    #[test]
    fn wrong_kind_and_bad_magic_rejected() {
        let msg = sample_activation();
        let encoded = msg.encode();
        // An activation frame fed to the gradient decoder:
        assert!(matches!(
            GradientMsg::decode(encoded.clone()),
            Err(DecodeError::WrongKind {
                expected: KIND_GRADIENT,
                got: KIND_ACTIVATION
            })
        ));
        let mut raw = encoded.as_ref().to_vec();
        raw[0] = b'X';
        assert!(matches!(
            ActivationMsg::decode(Bytes::from_vec(raw.clone())),
            Err(DecodeError::BadMagic { .. })
        ));
        raw[0] = b'S';
        raw[4] = 9;
        assert!(matches!(
            ActivationMsg::decode(Bytes::from_vec(raw)),
            Err(DecodeError::UnsupportedVersion { got: 9 })
        ));
    }

    #[test]
    fn decode_lenient_reports_crc_but_not_structure() {
        let msg = sample_activation();
        // Flip a data byte deep in the tensor payload: CRC decode rejects,
        // lenient decode lets the (numerically garbled) message through but
        // reports the dirty checksum.
        let mut raw = msg.encode().as_ref().to_vec();
        let idx = raw.len() - 20;
        raw[idx] ^= 0x40;
        assert!(ActivationMsg::decode(Bytes::from_vec(raw.clone())).is_err());
        let (garbled, crc_ok) =
            ActivationMsg::decode_lenient(Bytes::from_vec(raw)).expect("parseable");
        assert!(!crc_ok);
        assert_eq!(garbled.from, msg.from);
        assert_ne!(garbled, msg);
        // A clean frame reports a clean checksum.
        let (clean, crc_ok) = ActivationMsg::decode_lenient(msg.encode()).expect("clean");
        assert!(crc_ok);
        assert_eq!(clean, msg);
        // Truncation stays an error on both paths.
        let cut = msg.encode().as_ref()[..40].to_vec();
        assert!(ActivationMsg::decode_lenient(Bytes::from_vec(cut)).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_decode_unchecked_still_matches_lenient() {
        let msg = sample_activation();
        let mut raw = msg.encode().as_ref().to_vec();
        let idx = raw.len() - 24;
        raw[idx] ^= 0x08;
        let via_wrapper =
            ActivationMsg::decode_unchecked(Bytes::from_vec(raw.clone())).expect("parseable");
        let (via_lenient, crc_ok) =
            ActivationMsg::decode_lenient(Bytes::from_vec(raw)).expect("parseable");
        assert!(!crc_ok);
        assert_eq!(via_wrapper, via_lenient);
    }

    #[test]
    fn encoded_len_scales_with_activation_volume() {
        let small = ActivationMsg {
            from: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            activations: Tensor::zeros([1, 16, 16, 16]),
            targets: vec![0],
        };
        let large = ActivationMsg {
            from: EndSystemId(0),
            batch_id: BatchId { epoch: 0, batch: 0 },
            activations: Tensor::zeros([1, 16, 32, 32]),
            targets: vec![0],
        };
        assert!(large.encoded_len() > 3 * small.encoded_len());
    }

    #[test]
    fn batch_id_orders_lexicographically() {
        let a = BatchId { epoch: 0, batch: 9 };
        let b = BatchId { epoch: 1, batch: 0 };
        assert!(a < b);
        assert_eq!(a.to_string(), "e0b9");
    }
}
