//! Structured results emitted by trainers (serialized by the experiment
//! harness into `results/*.json`).

use serde::{Deserialize, Serialize};

/// Communication totals over a whole training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommReport {
    /// Activation bytes, end-systems → server.
    pub uplink_bytes: u64,
    /// Gradient bytes, server → end-systems.
    pub downlink_bytes: u64,
    /// Activation messages sent.
    pub uplink_messages: u64,
    /// Gradient messages sent.
    pub downlink_messages: u64,
}

impl CommReport {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }
}

/// Metrics for one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// 0-based epoch number.
    pub epoch: usize,
    /// Mean training loss across all server steps this epoch.
    pub train_loss: f32,
    /// Mean training-batch accuracy this epoch.
    pub train_accuracy: f32,
    /// Test accuracy after the epoch (mean over end-system encoders).
    pub test_accuracy: f32,
    /// Updates the ingress guard rejected this epoch (non-finite or
    /// norm-exploding activations).
    #[serde(default)]
    pub anomalies_rejected: u64,
    /// Watchdog rollbacks triggered this epoch.
    #[serde(default)]
    pub rollbacks: u64,
}

/// Result of a synchronous spatio-temporal training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Label of the run (e.g. the Table I row).
    pub label: String,
    /// Number of end-systems.
    pub end_systems: usize,
    /// Cut depth in blocks.
    pub cut_blocks: usize,
    /// Per-epoch metrics.
    pub epochs: Vec<EpochStats>,
    /// Final test accuracy (mean over end-system encoders).
    pub final_accuracy: f32,
    /// Final test accuracy per end-system encoder.
    pub per_client_accuracy: Vec<f32>,
    /// Communication totals.
    pub comm: CommReport,
    /// Wall-clock seconds the run took (host time, informational).
    pub wall_seconds: f64,
    /// Total updates the ingress guard rejected across the run.
    #[serde(default)]
    pub anomalies_rejected: u64,
    /// Total watchdog rollbacks across the run.
    #[serde(default)]
    pub rollbacks: u64,
}

impl TrainReport {
    /// Best test accuracy over all epochs (the number Table I reports).
    pub fn best_accuracy(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.test_accuracy)
            .fold(self.final_accuracy, f32::max)
    }
}

/// Result of an asynchronous (network-simulated) training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsyncReport {
    /// Scheduling policy label.
    pub policy: String,
    /// Number of end-systems.
    pub end_systems: usize,
    /// Cut depth in blocks.
    pub cut_blocks: usize,
    /// Simulated seconds until the pipeline drained.
    pub sim_seconds: f64,
    /// Final test accuracy (mean over end-system encoders).
    pub final_accuracy: f32,
    /// Batches the server processed, per end-system.
    pub served_per_client: Vec<u64>,
    /// Coefficient of variation of per-client service (0 = fair).
    pub service_imbalance: f64,
    /// Mean arrival-queue depth.
    pub mean_queue_depth: f64,
    /// Maximum arrival-queue depth.
    pub max_queue_depth: usize,
    /// Mean queueing delay of served batches, in milliseconds.
    pub mean_queue_wait_ms: f64,
    /// Batches discarded by the scheduler (staleness policy).
    pub scheduler_drops: u64,
    /// Messages lost by the network.
    pub network_drops: u64,
    /// Lost messages that were retransmitted after a backoff.
    #[serde(default)]
    pub retransmits: u64,
    /// Messages whose retry budget ran out.
    #[serde(default)]
    pub retry_exhausted: u64,
    /// Batches lost for good (retry exhaustion, scheduler discards and
    /// crashes), totalled over all end-systems.
    #[serde(default)]
    pub batches_lost: u64,
    /// Batches lost for good, per end-system.
    #[serde(default)]
    pub batches_lost_per_client: Vec<u64>,
    /// Simulated milliseconds each end-system spent crashed.
    #[serde(default)]
    pub downtime_ms_per_client: Vec<f64>,
    /// End-system crash events.
    #[serde(default)]
    pub crash_events: u64,
    /// End-system recovery events.
    #[serde(default)]
    pub recovery_events: u64,
    /// Auto-checkpoints taken during the run.
    #[serde(default)]
    pub checkpoint_saves: u64,
    /// End-systems restored from a checkpoint after a crash.
    #[serde(default)]
    pub checkpoint_restores: u64,
    /// Times the server's liveness tracker declared an end-system dead.
    #[serde(default)]
    pub dead_clients_detected: u64,
    /// Messages whose payloads were garbled in flight by a corruption
    /// fault.
    #[serde(default)]
    pub corrupted_payloads: u64,
    /// Corrupted messages that were detected and discarded (all of them
    /// with the integrity guard on; only the structurally unusable subset
    /// with the guard off — the difference is silent poison).
    #[serde(default)]
    pub corrupted_rejected: u64,
    /// Updates the ingress guard rejected (non-finite or norm-exploding).
    #[serde(default)]
    pub anomalies_rejected: u64,
    /// Times an end-system was quarantined for repeated anomalies.
    #[serde(default)]
    pub quarantines: u64,
    /// Updates dropped because their sender was quarantined.
    #[serde(default)]
    pub quarantine_drops: u64,
    /// Probationary rejoins after quarantine.
    #[serde(default)]
    pub quarantine_releases: u64,
    /// Watchdog rollbacks to an earlier checkpoint.
    #[serde(default)]
    pub rollbacks: u64,
    /// Telemetry snapshots emitted during the run.
    #[serde(default)]
    pub snapshots_emitted: u64,
    /// Telemetry journal events evicted because the ring was full.
    #[serde(default)]
    pub journal_dropped: u64,
    /// End-systems admitted mid-training (scheduled joins).
    #[serde(default)]
    pub clients_joined: u64,
    /// End-systems that departed the fleet (scheduled leaves).
    #[serde(default)]
    pub clients_departed: u64,
    /// Departed end-systems re-admitted after resyncing from their last
    /// acked batch.
    #[serde(default)]
    pub rejoins: u64,
    /// Batches shed by the bounded ingress queue under overload.
    #[serde(default)]
    pub batches_shed: u64,
    /// Per-link circuit-breaker trips.
    #[serde(default)]
    pub breaker_trips: u64,
    /// Round deadlines that applied a partial quorum and abandoned the
    /// stragglers' outstanding batches.
    #[serde(default)]
    pub deadline_partial_applies: u64,
    /// Updates poisoned at the sender by an adversarial persona.
    #[serde(default)]
    pub attacks_injected: u64,
    /// Robust-aggregation windows combined and applied.
    #[serde(default)]
    pub robust_applies: u64,
    /// Window members flagged as statistical outliers by the robust
    /// aggregator.
    #[serde(default)]
    pub robust_outliers: u64,
    /// Update-slots excluded from robust combines (trimmed, clipped or
    /// unselected), totalled over all applied windows.
    #[serde(default)]
    pub updates_trimmed: u64,
    /// Final test accuracy averaged over the encoders of end-systems
    /// *not* in quarantine when the run ended — the fleet the server
    /// still serves. Equals [`Self::final_accuracy`] when nothing was
    /// exiled. Under a Byzantine attack this is the defense's headline:
    /// an exiled attacker's own encoder is attacker-owned and no
    /// server-side policy can train it honestly, so averaging it into
    /// [`Self::final_accuracy`] measures the attacker's self-harm, not
    /// the defense.
    #[serde(default)]
    pub active_accuracy: f32,
    /// Communication totals.
    pub comm: CommReport,
}

/// Result of a fleet-scale cohort-sharded simulation run (E16).
///
/// Every number here derives from simulated time and deterministic
/// state, so the serialized report is byte-identical across
/// `STSL_THREADS` values; wall-clock throughput is printed by the bench
/// but never serialized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Simulated end-systems.
    pub clients: usize,
    /// Cohort model replicas shared across those end-systems.
    pub cohorts: usize,
    /// Simulated seconds until the run drained.
    pub sim_seconds: f64,
    /// Discrete events processed by the simulation loop.
    pub events_processed: u64,
    /// Events per *simulated* second (deterministic throughput measure).
    pub events_per_sim_sec: f64,
    /// Uplink sends attempted by end-systems.
    pub sends_attempted: u64,
    /// Arrivals refused by per-end-system admission token buckets.
    pub admission_rejected: u64,
    /// Arrivals shed by the bounded ingress queue under overload.
    pub shed: u64,
    /// Arrivals the server actually consumed.
    pub served: u64,
    /// Real cohort-replica training steps driven by admitted arrivals.
    pub cohort_steps: u64,
    /// Mean arrival-queue depth over all arrivals.
    pub mean_queue_depth: f64,
    /// Maximum arrival-queue depth.
    pub max_queue_depth: usize,
    /// Mean queueing delay between arrival and service, milliseconds.
    pub mean_staleness_ms: f64,
    /// Final test accuracy, mean over cohort encoders.
    pub final_accuracy: f32,
    /// Final test accuracy per cohort encoder.
    pub per_cohort_accuracy: Vec<f32>,
    /// Bytes of model parameters held across all cohort replicas —
    /// O(cohorts), independent of `clients`.
    pub model_bytes: u64,
    /// Bytes of per-end-system bookkeeping state (identity, admission
    /// bucket, counters) — the O(N·small) term.
    pub per_client_state_bytes: u64,
    /// End-systems that departed mid-run.
    pub departures: u64,
    /// Telemetry snapshots emitted.
    pub snapshots_emitted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_report_totals() {
        let c = CommReport {
            uplink_bytes: 100,
            downlink_bytes: 50,
            uplink_messages: 2,
            downlink_messages: 2,
        };
        assert_eq!(c.total_bytes(), 150);
    }

    #[test]
    fn best_accuracy_considers_all_epochs() {
        let r = TrainReport {
            label: "x".into(),
            end_systems: 1,
            cut_blocks: 0,
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 1.0,
                    train_accuracy: 0.3,
                    test_accuracy: 0.5,
                    anomalies_rejected: 0,
                    rollbacks: 0,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.8,
                    train_accuracy: 0.5,
                    test_accuracy: 0.7,
                    anomalies_rejected: 0,
                    rollbacks: 0,
                },
            ],
            final_accuracy: 0.65,
            per_client_accuracy: vec![0.65],
            comm: CommReport::default(),
            wall_seconds: 0.0,
            anomalies_rejected: 0,
            rollbacks: 0,
        };
        assert_eq!(r.best_accuracy(), 0.7);
    }

    #[test]
    fn reports_serialize_to_json() {
        let r = AsyncReport {
            policy: "fifo".into(),
            end_systems: 2,
            cut_blocks: 1,
            sim_seconds: 1.5,
            final_accuracy: 0.4,
            active_accuracy: 0.4,
            served_per_client: vec![3, 4],
            service_imbalance: 0.1,
            mean_queue_depth: 0.5,
            max_queue_depth: 2,
            mean_queue_wait_ms: 3.0,
            scheduler_drops: 0,
            network_drops: 1,
            retransmits: 1,
            retry_exhausted: 0,
            batches_lost: 1,
            batches_lost_per_client: vec![1, 0],
            downtime_ms_per_client: vec![0.0, 12.5],
            crash_events: 1,
            recovery_events: 1,
            checkpoint_saves: 2,
            checkpoint_restores: 1,
            dead_clients_detected: 1,
            corrupted_payloads: 0,
            corrupted_rejected: 0,
            anomalies_rejected: 0,
            quarantines: 0,
            quarantine_drops: 0,
            quarantine_releases: 0,
            rollbacks: 0,
            snapshots_emitted: 0,
            journal_dropped: 0,
            clients_joined: 1,
            clients_departed: 1,
            rejoins: 1,
            batches_shed: 2,
            breaker_trips: 0,
            deadline_partial_applies: 0,
            attacks_injected: 3,
            robust_applies: 2,
            robust_outliers: 1,
            updates_trimmed: 4,
            comm: CommReport::default(),
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("fifo"));
        assert!(json.contains("retransmits"));
        let back: AsyncReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.served_per_client, vec![3, 4]);
        assert_eq!(back.retransmits, 1);
        assert_eq!(back.downtime_ms_per_client, vec![0.0, 12.5]);
        assert_eq!(back.clients_joined, 1);
        assert_eq!(back.batches_shed, 2);
        assert_eq!(back.attacks_injected, 3);
        assert_eq!(back.robust_applies, 2);
        assert_eq!(back.robust_outliers, 1);
        assert_eq!(back.updates_trimmed, 4);
    }

    #[test]
    fn async_report_robustness_fields_default_when_absent() {
        // Results files written before the fault-tolerance fields existed
        // still load: the robustness metrics default to zero/empty.
        let json = r#"{
            "policy": "fifo", "end_systems": 1, "cut_blocks": 1,
            "sim_seconds": 1.0, "final_accuracy": 0.5,
            "served_per_client": [2], "service_imbalance": 0.0,
            "mean_queue_depth": 0.0, "max_queue_depth": 1,
            "mean_queue_wait_ms": 0.0, "scheduler_drops": 0,
            "network_drops": 0,
            "comm": {"uplink_bytes": 0, "downlink_bytes": 0,
                     "uplink_messages": 0, "downlink_messages": 0}
        }"#;
        let r: AsyncReport = serde_json::from_str(json).unwrap();
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.batches_lost_per_client, Vec::<u64>::new());
        assert_eq!(r.crash_events, 0);
        assert_eq!(r.corrupted_payloads, 0);
        assert_eq!(r.quarantines, 0);
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.snapshots_emitted, 0);
        assert_eq!(r.journal_dropped, 0);
        assert_eq!(r.clients_joined, 0);
        assert_eq!(r.clients_departed, 0);
        assert_eq!(r.rejoins, 0);
        assert_eq!(r.batches_shed, 0);
        assert_eq!(r.breaker_trips, 0);
        assert_eq!(r.deadline_partial_applies, 0);
        assert_eq!(r.attacks_injected, 0);
        assert_eq!(r.robust_applies, 0);
        assert_eq!(r.robust_outliers, 0);
        assert_eq!(r.updates_trimmed, 0);
    }
}
